"""Setup shim: enables legacy editable installs on toolchains without wheel."""

from setuptools import setup

setup()
