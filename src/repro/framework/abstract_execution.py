"""Abstract executions ``A = (H, vis, ar, par)`` (Section 3.2).

``vis`` and ``ar`` are :class:`~repro.framework.relations.Relation` objects
over event ids; ``par`` maps each event id to the total order (again a
Relation) that the event *perceived*. Contexts and fluctuating contexts
(Section 3.4 / 4.2) are derived here.

Read-only events are dropped when a context is linearised for the
specification ``F``: by the Section 3.4 closure requirement their presence
cannot change any return value, and dropping them sidesteps the corner cases
where the paper's constructed ``ar`` fails to order them totally against
TOB-delivered events (see ``docs`` note in builder.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.framework.history import History, HistoryEvent
from repro.framework.relations import Relation


@dataclass
class AbstractExecution:
    """A history extended with visibility, arbitration and perceived orders."""

    history: History
    vis: Relation
    ar: Relation
    par: Dict[Any, Relation]

    @property
    def datatype(self):
        return self.history.datatype

    def perceived_order(self, eid: Any) -> Relation:
        """``par(e)``; defaults to ``ar`` when no fluctuation was recorded."""
        return self.par.get(eid, self.ar)

    # ------------------------------------------------------------------
    # Contexts (Section 3.4 and 4.2)
    # ------------------------------------------------------------------
    def visible_events(self, eid: Any) -> List[Any]:
        """``vis⁻¹(e)`` as a list (unordered)."""
        return list(self.vis.predecessors(eid))

    def context_operations(self, eid: Any, *, fluctuating: bool) -> List[HistoryEvent]:
        """The operations of e's context, linearised for the spec ``F``.

        ``fluctuating=False`` linearises ``vis⁻¹(e)`` by ``ar`` (the classic
        ``context``); ``fluctuating=True`` uses ``par(e)`` (``fcontext``).

        Read-only events are removed *before* linearising: the Section 3.4
        closure property makes them irrelevant to the result, and the
        paper's constructed orders place never-broadcast reads by request
        timestamp, which can contradict trace/TOB positions and produce a
        cycle through the read — restricted to updating events the
        constructed orders are guaranteed acyclic.
        """
        visible = [
            x for x in self.visible_events(eid)
            if not self.history.event(x).readonly
        ]
        order = self.perceived_order(eid) if fluctuating else self.ar
        linearised = order.topological_sort(visible)
        return [self.history.event(x) for x in linearised]

    def expected_return(self, eid: Any, *, fluctuating: bool) -> Any:
        """``F(op(e), context)`` — the specification's verdict for e."""
        event = self.history.event(eid)
        preceding = [
            context_event.op
            for context_event in self.context_operations(eid, fluctuating=fluctuating)
        ]
        return self.datatype.spec_return(event.op, preceding)
