"""Human-readable rendering of histories and abstract executions.

Debugging aid for experiment authors: dump what the framework derived
(visibility sets, arbitration positions, perceived orders) next to the
observable history, in the spirit of the paper's figure annotations.
"""

from __future__ import annotations

from typing import Any, List

from repro.analysis.report import format_table
from repro.framework.abstract_execution import AbstractExecution
from repro.framework.history import History


def render_history(history: History) -> str:
    """The observable history as a table (one row per event)."""
    rows = []
    for event in history.events:
        rows.append(
            [
                repr(event.eid),
                event.session,
                repr(event.op),
                event.level,
                f"{event.invoke_time:.2f}",
                "∇" if event.pending else repr(event.rval),
                "-" if event.tob_no is None else event.tob_no,
            ]
        )
    return format_table(
        ["event", "session", "operation", "lvl", "invoked", "rval", "tobNo"],
        rows,
        title="History",
    )


def render_execution(execution: AbstractExecution) -> str:
    """History plus derived vis/ar/par, one block per event."""
    history = execution.history
    ar_positions = _ar_positions(execution)
    rows = []
    for event in history.events:
        visible = sorted(
            execution.vis.predecessors(event.eid), key=repr
        )
        perceived = execution.perceived_order(event.eid)
        perceived_before = sorted(
            (x for x in visible if perceived.holds(x, event.eid)), key=repr
        )
        rows.append(
            [
                repr(event.eid),
                "∇" if event.pending else repr(event.rval),
                ar_positions.get(event.eid, "-"),
                "{" + ", ".join(repr(x) for x in visible) + "}",
                len(perceived_before),
            ]
        )
    table = format_table(
        ["event", "rval", "ar-pos", "vis⁻¹(e)", "|par-before|"],
        rows,
        title="Abstract execution",
    )
    notes = []
    if not execution.ar.is_acyclic():
        notes.append("note: constructed ar contains a cycle (corner case)")
    if not execution.vis.is_acyclic():
        notes.append("note: vis is cyclic — circular causality present")
    return "\n".join([table] + notes)


def _ar_positions(execution: AbstractExecution) -> dict:
    """Best-effort arbitration positions (predecessor counts)."""
    positions = {}
    eids = execution.history.eids
    for eid in eids:
        positions[eid] = sum(
            1 for other in eids if execution.ar.holds(other, eid)
        )
    return positions
