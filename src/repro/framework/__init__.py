"""The formal framework of Sections 3–4, mechanised.

- :mod:`~repro.framework.relations` — finite binary relations with the
  operators the paper uses (composition, transitive closure, restriction,
  acyclicity, totality).
- :mod:`~repro.framework.history` — histories ``H = (E, op, rval, rb, ß,
  lvl)`` recorded from runs or built by hand.
- :mod:`~repro.framework.abstract_execution` — abstract executions
  ``A = (H, vis, ar, par)``.
- :mod:`~repro.framework.builder` — derives ``vis``, ``ar`` and ``par`` from
  an instrumented Bayou run exactly as the proof of Theorem 2 does
  (Appendix A.2.3).
- :mod:`~repro.framework.predicates` — EV, NCC, RVal, FRVal, CPar, SinOrd,
  SessArb as executable checks with violation reporting.
- :mod:`~repro.framework.guarantees` — BEC, FEC and Seq composites.
- :mod:`~repro.framework.search` — exhaustive satisfiability search for
  abstract executions over small histories.
- :mod:`~repro.framework.impossibility` — the mechanised Theorem 1.
"""

from repro.framework.abstract_execution import AbstractExecution
from repro.framework.builder import build_abstract_execution
from repro.framework.guarantees import check_bec, check_fec, check_seq
from repro.framework.history import History, HistoryEvent, PENDING
from repro.framework.relations import Relation
from repro.framework.render import render_execution, render_history
from repro.framework.session_guarantees import check_all_session_guarantees

__all__ = [
    "AbstractExecution",
    "History",
    "HistoryEvent",
    "PENDING",
    "Relation",
    "build_abstract_execution",
    "check_bec",
    "check_fec",
    "check_all_session_guarantees",
    "check_seq",
    "render_execution",
    "render_history",
]
