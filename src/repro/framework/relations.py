"""Finite binary relations with the paper's operator toolkit (Section 3.1).

A :class:`Relation` is a set of ordered pairs over a finite universe. The
paper's notation maps as follows:

===========================  =======================================
paper                        here
===========================  =======================================
``a --rel--> b``             ``rel.holds(a, b)``
``rel⁻¹``                    ``rel.inverse()``
``rel ; rel'``               ``rel.compose(other)``
``rel⁺``                     ``rel.transitive_closure()``
``rel*``                     ``rel.reflexive_transitive_closure()``
``rel | E'``                 ``rel.restrict(subset)``
``acyclic(rel)``             ``rel.is_acyclic()``
total order                  ``rel.is_total_order()``
``rank(S, rel, a)``          ``rank(S, rel, a)`` (module function)
===========================  =======================================
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

Element = Hashable
Pair = Tuple[Element, Element]


class Relation:
    """An immutable finite binary relation over an explicit universe."""

    def __init__(
        self,
        pairs: Iterable[Pair] = (),
        universe: Optional[Iterable[Element]] = None,
    ) -> None:
        self._pairs: FrozenSet[Pair] = frozenset(pairs)
        implied: Set[Element] = set()
        for a, b in self._pairs:
            implied.add(a)
            implied.add(b)
        if universe is None:
            self._universe: FrozenSet[Element] = frozenset(implied)
        else:
            self._universe = frozenset(universe) | frozenset(implied)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_total_order(cls, ordering: Sequence[Element]) -> "Relation":
        """The strict total order induced by a sequence."""
        pairs = [
            (ordering[i], ordering[j])
            for i in range(len(ordering))
            for j in range(i + 1, len(ordering))
        ]
        return cls(pairs, universe=ordering)

    # ------------------------------------------------------------------
    # Core queries
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> FrozenSet[Pair]:
        return self._pairs

    @property
    def universe(self) -> FrozenSet[Element]:
        return self._universe

    def holds(self, a: Element, b: Element) -> bool:
        """True iff ``a --rel--> b``."""
        return (a, b) in self._pairs

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._pairs

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    def successors(self, a: Element) -> Set[Element]:
        """``rel(a)`` — the set of b with a --rel--> b."""
        return {y for (x, y) in self._pairs if x == a}

    def predecessors(self, b: Element) -> Set[Element]:
        """``rel⁻¹(b)`` — the set of a with a --rel--> b."""
        return {x for (x, y) in self._pairs if y == b}

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def inverse(self) -> "Relation":
        """``rel⁻¹``."""
        return Relation(((b, a) for a, b in self._pairs), universe=self._universe)

    def union(self, other: "Relation") -> "Relation":
        """Set union of the pair sets."""
        return Relation(
            self._pairs | other._pairs, universe=self._universe | other._universe
        )

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection of the pair sets."""
        return Relation(
            self._pairs & other._pairs, universe=self._universe | other._universe
        )

    def difference(self, other: "Relation") -> "Relation":
        """Pairs of self not in other."""
        return Relation(self._pairs - other._pairs, universe=self._universe)

    def compose(self, other: "Relation") -> "Relation":
        """``self ; other`` = {(a, c) | ∃b: a→b in self and b→c in other}."""
        by_source: Dict[Element, Set[Element]] = {}
        for b, c in other._pairs:
            by_source.setdefault(b, set()).add(c)
        pairs = {
            (a, c)
            for a, b in self._pairs
            for c in by_source.get(b, ())
        }
        return Relation(pairs, universe=self._universe | other._universe)

    def restrict(self, subset: Iterable[Element]) -> "Relation":
        """``rel | E'`` — both endpoints within ``subset``."""
        allowed = frozenset(subset)
        return Relation(
            ((a, b) for a, b in self._pairs if a in allowed and b in allowed),
            universe=allowed,
        )

    def restrict_targets(self, subset: Iterable[Element]) -> "Relation":
        """``rel ∩ (E × L)`` — targets within ``subset`` (used for vis_L etc.)."""
        allowed = frozenset(subset)
        return Relation(
            ((a, b) for a, b in self._pairs if b in allowed),
            universe=self._universe,
        )

    def transitive_closure(self) -> "Relation":
        """``rel⁺`` via iterated squaring on adjacency sets."""
        adjacency: Dict[Element, Set[Element]] = {}
        for a, b in self._pairs:
            adjacency.setdefault(a, set()).add(b)
        closure: Dict[Element, Set[Element]] = {
            a: set(bs) for a, bs in adjacency.items()
        }
        changed = True
        while changed:
            changed = False
            for a in list(closure):
                reachable = closure[a]
                expansion = set()
                for b in reachable:
                    expansion |= closure.get(b, set())
                new = expansion - reachable
                if new:
                    reachable |= new
                    changed = True
        pairs = {(a, b) for a, bs in closure.items() for b in bs}
        return Relation(pairs, universe=self._universe)

    def reflexive_transitive_closure(self) -> "Relation":
        """``rel*`` (over the explicit universe)."""
        closure = self.transitive_closure()
        pairs = set(closure.pairs) | {(e, e) for e in self._universe}
        return Relation(pairs, universe=self._universe)

    # ------------------------------------------------------------------
    # Structural properties
    # ------------------------------------------------------------------
    def is_acyclic(self) -> bool:
        """True iff no element reaches itself through the relation."""
        closure = self.transitive_closure()
        return all(not closure.holds(e, e) for e in self._universe)

    def is_irreflexive(self) -> bool:
        return all(not self.holds(e, e) for e in self._universe)

    def is_transitive(self) -> bool:
        for a, b in self._pairs:
            for c in self.successors(b):
                if not self.holds(a, c):
                    return False
        return True

    def is_total_order(self) -> bool:
        """The paper's definition: irreflexive, transitive, total."""
        if not self.is_irreflexive() or not self.is_transitive():
            return False
        elements = list(self._universe)
        for i, a in enumerate(elements):
            for b in elements[i + 1:]:
                if not (self.holds(a, b) or self.holds(b, a)):
                    return False
        return True

    def is_subset_of(self, other: "Relation") -> bool:
        return self._pairs <= other._pairs

    def find_cycle(self) -> Optional[List[Element]]:
        """Return one cycle (as a list of elements) if any, else None."""
        color: Dict[Element, int] = {}
        stack: List[Element] = []

        def dfs(node: Element) -> Optional[List[Element]]:
            color[node] = 1
            stack.append(node)
            for succ in self.successors(node):
                if color.get(succ, 0) == 1:
                    return stack[stack.index(succ):] + [succ]
                if color.get(succ, 0) == 0:
                    found = dfs(succ)
                    if found is not None:
                        return found
            stack.pop()
            color[node] = 2
            return None

        for element in self._universe:
            if color.get(element, 0) == 0:
                found = dfs(element)
                if found is not None:
                    return found
        return None

    def topological_sort(self, subset: Optional[Iterable[Element]] = None) -> List[Element]:
        """Linearise ``subset`` (default: the universe) consistently with us.

        Raises ValueError if the restriction is cyclic. Ties (incomparable
        elements) are broken deterministically by ``repr`` so results are
        stable across runs.
        """
        elements = list(subset) if subset is not None else list(self._universe)
        element_set = set(elements)
        in_degree: Dict[Element, int] = {e: 0 for e in elements}
        for a, b in self._pairs:
            if a in element_set and b in element_set:
                in_degree[b] += 1
        result: List[Element] = []
        remaining = set(elements)
        while remaining:
            ready = sorted(
                (e for e in remaining if in_degree[e] == 0), key=repr
            )
            if not ready:
                raise ValueError("relation restriction is cyclic; cannot linearise")
            head = ready[0]
            remaining.discard(head)
            result.append(head)
            for succ in self.successors(head):
                if succ in remaining:
                    in_degree[succ] -= 1
        return result


def rank(subset: Iterable[Element], rel: Relation, element: Element) -> int:
    """``rank(S, rel, a)`` = |{x ∈ S | x --rel--> a}| (Section 4.2)."""
    return sum(1 for x in subset if rel.holds(x, element))
