"""Exhaustive satisfiability search for abstract executions.

The paper's ``H |= P`` is existential: a history is correct when *some*
extension ``(vis, ar, par)`` satisfies P. For small histories we can close
the existential by brute force, which is how Theorem 1 is mechanised: the
proof's four-event history admits *no* extension satisfying
``BEC(weak) ∧ Seq(strong)``.

Search space and pruning
------------------------
- ``ar`` ranges over all permutations of the events (every total order).
- ``vis`` is assembled per event from candidate predecessor sets; a set is a
  candidate only if replaying it in ``ar`` order reproduces the event's
  observed return value (the RVal constraint), which prunes most of the
  ``2^(n(n-1))`` raw space. Completed strong events additionally have their
  predecessor set forced by SinOrd (vis into them must equal ar).
- ``par`` is fixed to ``ar`` (no fluctuation): this is exactly what makes
  the search check *BEC* rather than FEC. For FEC witnesses we exhibit an
  execution directly (see :mod:`repro.framework.impossibility`).

EV is a liveness property and is not constrained here; omitting a predicate
only enlarges the set of acceptable extensions, so an exhaustive "no
extension found" verdict remains valid for the conjunction that includes EV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain, combinations, permutations, product
from typing import Any, Iterable, List, Optional, Sequence, Set, Tuple

from repro.framework.abstract_execution import AbstractExecution
from repro.framework.guarantees import GuaranteeReport
from repro.framework.history import STRONG, WEAK, History, HistoryEvent
from repro.framework.predicates import (
    check_ncc,
    check_rval,
    check_sessarb,
    check_sinord,
)
from repro.framework.relations import Relation

#: Refuse to search histories larger than this (space grows as n!·2^(n²)).
MAX_SEARCH_EVENTS = 6


@dataclass
class SearchOutcome:
    """Result of an exhaustive search."""

    satisfiable: bool
    witness: Optional[AbstractExecution]
    arbitrations_tried: int
    candidates_examined: int
    description: str = ""

    def __bool__(self) -> bool:
        return self.satisfiable


def _powerset(items: Sequence[Any]) -> Iterable[Tuple[Any, ...]]:
    return chain.from_iterable(
        combinations(items, size) for size in range(len(items) + 1)
    )


def _spec_value_for(
    history: History,
    event: HistoryEvent,
    predecessors: Sequence[Any],
    ar_position: dict,
) -> Any:
    """Replay ``predecessors`` in ar order and execute the event's op."""
    ordered = sorted(predecessors, key=lambda eid: ar_position[eid])
    ops = [
        history.event(eid).op
        for eid in ordered
        if not history.event(eid).readonly
    ]
    return history.datatype.spec_return(event.op, ops)


def find_bec_seq_execution(
    history: History,
    *,
    weak_level: str = WEAK,
    strong_level: str = STRONG,
) -> SearchOutcome:
    """Search for an extension satisfying BEC(weak) ∧ Seq(strong).

    Concretely: RVal(weak) ∧ RVal(strong) ∧ NCC ∧ SinOrd(strong) ∧
    SessArb(strong), with par = ar (no temporary reordering — the defining
    restriction of BEC). Returns a witness if one exists; otherwise the
    history provably admits none.
    """
    events = list(history.events)
    if len(events) > MAX_SEARCH_EVENTS:
        raise ValueError(
            f"history has {len(events)} events; exhaustive search is capped "
            f"at {MAX_SEARCH_EVENTS}"
        )
    eids = [event.eid for event in events]
    arbitrations = 0
    candidates_examined = 0

    for ordering in permutations(eids):
        arbitrations += 1
        ar = Relation.from_total_order(ordering)
        ar_position = {eid: index for index, eid in enumerate(ordering)}

        per_event_options: List[List[Tuple[Any, ...]]] = []
        feasible = True
        for event in events:
            others = [eid for eid in eids if eid != event.eid]
            if event.level == strong_level and not event.pending:
                # SinOrd forces visibility into completed strong events.
                forced = tuple(
                    eid for eid in others if ar.holds(eid, event.eid)
                )
                options = [forced]
            else:
                options = list(_powerset(others))
            valid_options = []
            for option in options:
                candidates_examined += 1
                if event.pending:
                    valid_options.append(option)
                    continue
                expected = _spec_value_for(history, event, option, ar_position)
                if expected == event.rval:
                    valid_options.append(option)
            if not valid_options:
                feasible = False
                break
            per_event_options.append(valid_options)
        if not feasible:
            continue

        for combo in product(*per_event_options):
            pairs = []
            for event, predecessors in zip(events, combo):
                for eid in predecessors:
                    pairs.append((eid, event.eid))
            vis = Relation(pairs, universe=eids)
            execution = AbstractExecution(history=history, vis=vis, ar=ar, par={})
            checks = [
                check_ncc(execution),
                check_rval(execution, weak_level),
                check_rval(execution, strong_level),
                check_sinord(execution, strong_level),
                check_sessarb(execution, strong_level),
            ]
            if all(checks):
                return SearchOutcome(
                    satisfiable=True,
                    witness=execution,
                    arbitrations_tried=arbitrations,
                    candidates_examined=candidates_examined,
                    description="found BEC(weak) ∧ Seq(strong) extension",
                )
    return SearchOutcome(
        satisfiable=False,
        witness=None,
        arbitrations_tried=arbitrations,
        candidates_examined=candidates_examined,
        description=(
            "no abstract execution satisfies BEC(weak) ∧ Seq(strong) "
            f"for this history ({arbitrations} arbitrations examined)"
        ),
    )


def find_guarantee_execution(
    history: History,
    checker,
    level: str,
) -> SearchOutcome:
    """Generic search: does any (vis, ar, par=ar) extension satisfy checker?

    ``checker(execution, level)`` must return a
    :class:`~repro.framework.guarantees.GuaranteeReport`-like object that is
    truthy when satisfied. Used by tests to cross-validate the specialised
    search above.
    """
    events = list(history.events)
    if len(events) > MAX_SEARCH_EVENTS:
        raise ValueError("history too large for exhaustive search")
    eids = [event.eid for event in events]
    arbitrations = 0
    candidates_examined = 0
    for ordering in permutations(eids):
        arbitrations += 1
        ar = Relation.from_total_order(ordering)
        all_subsets = [list(_powerset([e for e in eids if e != eid]))
                       for eid in eids]
        for combo in product(*all_subsets):
            candidates_examined += 1
            pairs = []
            for eid, predecessors in zip(eids, combo):
                for pred in predecessors:
                    pairs.append((pred, eid))
            vis = Relation(pairs, universe=eids)
            execution = AbstractExecution(history=history, vis=vis, ar=ar, par={})
            report = checker(execution, level)
            if report:
                return SearchOutcome(
                    True, execution, arbitrations, candidates_examined,
                    description="witness found",
                )
    return SearchOutcome(
        False, None, arbitrations, candidates_examined,
        description="no extension satisfies the guarantee",
    )
