"""Histories — the observable behaviour of a run (Section 3.2).

A history is an event graph ``H = (E, op, rval, rb, ß, lvl)``. We represent
each event as a :class:`HistoryEvent` carrying the paper's attributes plus
the instrumentation needed by the Theorem-2-style builders:

- ``timestamp`` — the request's Bayou timestamp (``req`` order);
- ``tob_cast`` / ``tob_no`` — whether the event's request was TOB-cast, and
  its position in the final TOB delivery order (``tobNo``), if delivered;
- ``perceived_trace`` — ``exec(e)``: the state trace at the instant the
  returned response was computed (Appendix A.2.3).

Pending events (a strong operation stuck in an asynchronous run) have
``rval is PENDING`` (the paper's ∇) and no return time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datatypes.base import DataType, Operation
from repro.framework.relations import Relation


class _Pending:
    """Singleton sentinel ∇ for operations that never returned."""

    _instance: Optional["_Pending"] = None

    def __new__(cls) -> "_Pending":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "∇"


#: The paper's ∇: the "return value" of a pending operation.
PENDING = _Pending()

WEAK = "weak"
STRONG = "strong"


@dataclass(frozen=True)
class HistoryEvent:
    """One invocation event with its observable and instrumented attributes."""

    eid: Any
    session: int
    op: Operation
    level: str
    invoke_time: float
    return_time: Optional[float] = None
    rval: Any = PENDING
    timestamp: float = 0.0
    readonly: bool = False
    tob_cast: bool = True
    tob_no: Optional[int] = None
    perceived_trace: Optional[Tuple[Any, ...]] = None
    stable: bool = False
    #: Global invocation sequence number; breaks same-instant ties so that
    #: session order is preserved even for zero-latency responses.
    seq: int = 0

    @property
    def pending(self) -> bool:
        """True iff the operation never returned (rval = ∇)."""
        return self.rval is PENDING

    @property
    def req_key(self) -> Tuple[float, Any]:
        """The ``(timestamp, dot)`` request order key."""
        return (self.timestamp, self.eid)

    def with_result(
        self, rval: Any, return_time: float, **updates: Any
    ) -> "HistoryEvent":
        """A copy with the response filled in."""
        return replace(self, rval=rval, return_time=return_time, **updates)


class MalformedHistoryError(ValueError):
    """Raised when a history violates well-formedness (Section 3.2)."""


class History:
    """A recorded history plus derived relations.

    ``horizon`` is the stabilisation time used by the finite-run liveness
    checks (EV, CPar): events invoked after the horizon are the "infinitely
    many later events" of the paper's definitions.
    """

    def __init__(
        self,
        events: Iterable[HistoryEvent],
        datatype: DataType,
        *,
        horizon: Optional[float] = None,
        well_formed: bool = True,
    ) -> None:
        self.events: List[HistoryEvent] = sorted(
            events, key=lambda e: (e.invoke_time, e.seq, repr(e.eid))
        )
        self.datatype = datatype
        self.horizon = horizon
        self._by_eid: Dict[Any, HistoryEvent] = {}
        for event in self.events:
            if event.eid in self._by_eid:
                raise MalformedHistoryError(f"duplicate event id {event.eid!r}")
            self._by_eid[event.eid] = event
        if well_formed:
            self.assert_well_formed()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def event(self, eid: Any) -> HistoryEvent:
        """Look up an event by id."""
        return self._by_eid[eid]

    @property
    def eids(self) -> List[Any]:
        return [event.eid for event in self.events]

    def with_level(self, level: str) -> List[HistoryEvent]:
        """Events whose lvl attribute equals ``level`` (the paper's L)."""
        return [event for event in self.events if event.level == level]

    def sessions(self) -> Dict[int, List[HistoryEvent]]:
        """Events grouped by session, in invocation order."""
        grouped: Dict[int, List[HistoryEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.session, []).append(event)
        return grouped

    # ------------------------------------------------------------------
    # Well-formedness (Section 3.2)
    # ------------------------------------------------------------------
    def assert_well_formed(self) -> None:
        """Sessions are sequential and no operation follows a pending one."""
        for session, events in self.sessions().items():
            previous: Optional[HistoryEvent] = None
            for event in events:
                if previous is not None:
                    if previous.pending:
                        raise MalformedHistoryError(
                            f"session {session}: {event.eid!r} follows pending "
                            f"{previous.eid!r}"
                        )
                    if previous.return_time is None or (
                        previous.return_time > event.invoke_time
                    ):
                        raise MalformedHistoryError(
                            f"session {session}: {event.eid!r} invoked before "
                            f"{previous.eid!r} returned"
                        )
                previous = event

    # ------------------------------------------------------------------
    # Derived relations
    # ------------------------------------------------------------------
    def returns_before(self) -> Relation:
        """``rb``: e returned (in real time) before e' was invoked."""
        pairs = []
        for a in self.events:
            if a.return_time is None:
                continue
            for b in self.events:
                if a is not b and a.return_time < b.invoke_time:
                    pairs.append((a.eid, b.eid))
        return Relation(pairs, universe=self.eids)

    def same_session(self) -> Relation:
        """``ß``: symmetric same-session relation."""
        pairs = []
        for session_events in self.sessions().values():
            for a in session_events:
                for b in session_events:
                    if a is not b:
                        pairs.append((a.eid, b.eid))
        return Relation(pairs, universe=self.eids)

    def session_order(self) -> Relation:
        """``so = rb ∩ ß`` — program order within each session."""
        pairs = []
        for session_events in self.sessions().values():
            for i, a in enumerate(session_events):
                if a.return_time is None:
                    continue
                for b in session_events[i + 1:]:
                    if a.return_time < b.invoke_time:
                        pairs.append((a.eid, b.eid))
        return Relation(pairs, universe=self.eids)

    def events_after_horizon(self) -> List[HistoryEvent]:
        """Events invoked after the stabilisation horizon (for EV/CPar)."""
        if self.horizon is None:
            return []
        return [event for event in self.events if event.invoke_time > self.horizon]
