"""Composite consistency guarantees: BEC, FEC and Seq (Section 4).

    BEC(l, F) = EV ∧ NCC ∧ RVal(l, F)
    FEC(l, F) = EV ∧ NCC ∧ FRVal(l, F) ∧ CPar(l)
    Seq(l, F) = SinOrd(l) ∧ SessArb(l) ∧ RVal(l, F)

Each ``check_*`` function evaluates the conjunction against one abstract
execution and returns a :class:`GuaranteeReport` with every constituent's
:class:`~repro.framework.predicates.CheckResult`, so a failed guarantee
pinpoints the offending predicate and events.

Remember the quantifier structure of the paper: ``H |= P`` means *some*
extension of H satisfies P. Checking the single builder-derived extension
can therefore only prove satisfaction, not violation — except where the
paper's proofs show the builder's extension is canonical, and except for
:mod:`repro.framework.search`, which does close the existential for small
histories by exhaustive enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.framework.abstract_execution import AbstractExecution
from repro.framework.predicates import (
    CheckResult,
    check_cpar,
    check_ev,
    check_frval,
    check_ncc,
    check_rval,
    check_sessarb,
    check_sinord,
)


@dataclass
class GuaranteeReport:
    """The outcome of a composite guarantee check."""

    guarantee: str
    results: List[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def __bool__(self) -> bool:
        return self.ok

    def failed(self) -> List[CheckResult]:
        """The constituent checks that failed."""
        return [result for result in self.results if not result.ok]

    def summary(self) -> str:
        """A one-line human-readable verdict."""
        status = "SATISFIED" if self.ok else "VIOLATED"
        parts = ", ".join(
            f"{result.name}={'ok' if result.ok else 'FAIL'}"
            for result in self.results
        )
        return f"{self.guarantee}: {status} [{parts}]"

    def __repr__(self) -> str:
        return self.summary()


def check_bec(execution: AbstractExecution, level: str) -> GuaranteeReport:
    """Basic Eventual Consistency for operations of the given level."""
    return GuaranteeReport(
        guarantee=f"BEC({level})",
        results=[
            check_ev(execution),
            check_ncc(execution),
            check_rval(execution, level),
        ],
    )


def check_fec(execution: AbstractExecution, level: str) -> GuaranteeReport:
    """Fluctuating Eventual Consistency (the paper's new criterion)."""
    return GuaranteeReport(
        guarantee=f"FEC({level})",
        results=[
            check_ev(execution),
            check_ncc(execution),
            check_frval(execution, level),
            check_cpar(execution, level),
        ],
    )


def check_seq(execution: AbstractExecution, level: str) -> GuaranteeReport:
    """Sequential consistency for operations of the given level."""
    return GuaranteeReport(
        guarantee=f"Seq({level})",
        results=[
            check_sinord(execution, level),
            check_sessarb(execution, level),
            check_rval(execution, level),
        ],
    )


#: Registry used by the guarantee-matrix experiment (E7).
GUARANTEE_CHECKS: dict = {
    "BEC": check_bec,
    "FEC": check_fec,
    "Seq": check_seq,
}
