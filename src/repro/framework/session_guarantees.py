"""Session guarantees (Terry et al., PDIS'94) as executable checks.

Appendix A.1.2 of the paper notes that making weak operations bounded
wait-free (Algorithm 2) "comes at the cost of losing some session
guarantees, such as read-your-writes". This module makes that observation
checkable: the four classic session guarantees, evaluated against a history
plus a visibility relation.

Definitions (per session, with ``vis`` the visibility relation and ``ar``
the arbitration order):

- **RYW** (read-your-writes): every operation observes all earlier
  *updating* operations of its own session.
- **MR** (monotonic reads): visibility never shrinks along a session —
  anything visible to an earlier operation is visible to every later one.
- **WFR** (writes-follow-reads): if a session read observed some update w,
  then any *later update* u of that session is arbitrated after w.
- **MW** (monotonic writes): a session's own updates are arbitrated in
  session order.

The experiment in ``analysis.experiments.sessions`` shows the original
protocol providing RYW/MR for weak operations while the modified protocol
trades them away — the paper's stated cost, measured.
"""

from __future__ import annotations

from typing import List

from repro.framework.abstract_execution import AbstractExecution
from repro.framework.predicates import CheckResult, _result


def _session_chains(execution: AbstractExecution):
    """Yield each session's events in session order."""
    for session, events in execution.history.sessions().items():
        yield session, events


def check_read_your_writes(execution: AbstractExecution) -> CheckResult:
    """Every event sees the earlier updating events of its own session."""
    violations: List[str] = []
    for session, events in _session_chains(execution):
        for index, event in enumerate(events):
            for earlier in events[:index]:
                if earlier.readonly or earlier.pending:
                    continue
                if not execution.vis.holds(earlier.eid, event.eid):
                    violations.append(
                        f"session {session}: {event.eid!r} does not see own "
                        f"earlier write {earlier.eid!r}"
                    )
    return _result("RYW", violations)


def check_monotonic_reads(execution: AbstractExecution) -> CheckResult:
    """Visibility grows monotonically along each session."""
    violations: List[str] = []
    for session, events in _session_chains(execution):
        seen: set = set()
        for event in events:
            visible = set(execution.vis.predecessors(event.eid))
            lost = {
                eid
                for eid in seen - visible
                if not execution.history.event(eid).readonly
            }
            for eid in sorted(lost, key=repr):
                violations.append(
                    f"session {session}: {event.eid!r} lost sight of "
                    f"{eid!r} seen by an earlier operation"
                )
            seen |= visible
    return _result("MR", violations)


def check_writes_follow_reads(execution: AbstractExecution) -> CheckResult:
    """Updates are arbitrated after the writes their session already read."""
    violations: List[str] = []
    for session, events in _session_chains(execution):
        observed: set = set()
        for event in events:
            if not event.readonly and not event.pending:
                for w_eid in sorted(observed, key=repr):
                    if w_eid == event.eid:
                        continue
                    if not execution.ar.holds(w_eid, event.eid):
                        violations.append(
                            f"session {session}: update {event.eid!r} not "
                            f"arbitrated after previously-read {w_eid!r}"
                        )
            observed |= {
                eid
                for eid in execution.vis.predecessors(event.eid)
                if not execution.history.event(eid).readonly
            }
    return _result("WFR", violations)


def check_monotonic_writes(execution: AbstractExecution) -> CheckResult:
    """A session's own updates appear in session order in ``ar``."""
    violations: List[str] = []
    for session, events in _session_chains(execution):
        updates = [e for e in events if not e.readonly and not e.pending]
        for earlier, later in zip(updates, updates[1:]):
            if not execution.ar.holds(earlier.eid, later.eid):
                violations.append(
                    f"session {session}: writes {earlier.eid!r}, "
                    f"{later.eid!r} arbitrated against session order"
                )
    return _result("MW", violations)


SESSION_GUARANTEES = {
    "RYW": check_read_your_writes,
    "MR": check_monotonic_reads,
    "WFR": check_writes_follow_reads,
    "MW": check_monotonic_writes,
}


def check_all_session_guarantees(execution: AbstractExecution):
    """All four checks, as a name → CheckResult mapping."""
    return {
        name: check(execution) for name, check in SESSION_GUARANTEES.items()
    }
