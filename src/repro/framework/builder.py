"""Deriving ``(vis, ar, par)`` from an instrumented run (Appendix A.2.3).

The proof of Theorem 2 constructs the abstract execution for a Bayou run as
follows, and we mechanise it verbatim:

**Arbitration** ``ar``: for events a ≠ b, ``a → b`` iff

1. both TOB-delivered and ``tobNo(a) < tobNo(b)``; or
2. a delivered, b TOB-cast but never delivered; or
3. both TOB-cast, neither delivered, and ``req(a) < req(b)``; or
4. at least one not TOB-cast, and ``req(a) < req(b)``

where ``req`` order is the lexicographic ``(timestamp, dot)`` order.

**Perceived order** ``par(e)``: based on ``exec'(e) = exec(e) · req(e)``
(the state trace when e's returned response was computed, plus e itself);
events on the list are ordered by position, TOB-cast events off the list go
after all on-list events, and non-TOB-cast events off the list are placed
relative to everything by ``ar``.

**Visibility**: ``a vis b`` iff ``a --par(b)--> b``; concretely, iff
``req(a) ∈ exec(b)``, or a was never TOB-cast and ``req(a) < req(b)``.

A note on totality: as observed in ``abstract_execution.py``, rule 4 can in
corner cases contradict rule 1 transitively (a never-broadcast read-only
event whose timestamp falls between two updating events that TOB ordered
against their timestamps). The constructed ``ar`` is then still a faithful
*relation*; the predicate checkers operate on relations directly, and
read-only events are dropped from spec contexts, so no check depends on the
corner case. ``ar.is_total_order()`` is exposed for diagnostics.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.framework.abstract_execution import AbstractExecution
from repro.framework.history import History, HistoryEvent
from repro.framework.relations import Relation


def _tob_delivered(event: HistoryEvent) -> bool:
    return event.tob_no is not None


def _req_less(a: HistoryEvent, b: HistoryEvent) -> bool:
    return a.req_key < b.req_key


def build_ar(history: History) -> Relation:
    """The final arbitration order of Appendix A.2.3."""
    events = history.events
    pairs = []
    for a in events:
        for b in events:
            if a is b:
                continue
            if _ar_before(a, b):
                pairs.append((a.eid, b.eid))
    return Relation(pairs, universe=history.eids)


def _ar_before(a: HistoryEvent, b: HistoryEvent) -> bool:
    a_delivered, b_delivered = _tob_delivered(a), _tob_delivered(b)
    if a_delivered and b_delivered:
        return a.tob_no < b.tob_no
    if a_delivered and b.tob_cast and not b_delivered:
        return True
    if b_delivered and a.tob_cast and not a_delivered:
        return False
    # Remaining cases compare by request order (rules 3 and 4).
    return _req_less(a, b)


def build_vis(history: History) -> Relation:
    """Visibility: trace membership, or request order for invisible reads.

    The request-order fallback exists for events that are never broadcast
    and therefore can never appear in any trace — in Bayou these are
    exactly the weak *read-only* operations of the modified protocol
    ("invisible reads"). Non-broadcast *updating* events (as in the LWW
    baseline, which has no TOB at all) are visible only through traces.
    """
    events = history.events
    pairs = []
    for b in events:
        trace = set(b.perceived_trace or ())
        for a in events:
            if a is b:
                continue
            if a.eid in trace:
                pairs.append((a.eid, b.eid))
            elif not a.tob_cast and a.readonly and _req_less(a, b):
                pairs.append((a.eid, b.eid))
    return Relation(pairs, universe=history.eids)


def build_par(history: History, ar: Relation) -> Dict[Any, Relation]:
    """``par(e)`` for every event with a recorded perceived trace."""
    par: Dict[Any, Relation] = {}
    for event in history.events:
        if event.perceived_trace is None:
            # Pending (or uninstrumented) event: par defaults to ar.
            continue
        par[event.eid] = _perceived_relation(history, event, ar)
    return par


def _perceived_relation(
    history: History, event: HistoryEvent, ar: Relation
) -> Relation:
    exec_prime: List[Any] = list(event.perceived_trace or ())
    if event.eid not in exec_prime:
        exec_prime.append(event.eid)
    position: Dict[Any, int] = {eid: i for i, eid in enumerate(exec_prime)}
    # Traces may mention requests the history doesn't model (none in our
    # harnesses, but hand-built histories could); restrict to known events.
    known = set(history.eids)
    pairs = []
    for a in history.events:
        for b in history.events:
            if a is b:
                continue
            pos_a = position.get(a.eid)
            pos_b = position.get(b.eid)
            if pos_a is not None and pos_b is not None:
                if pos_a < pos_b:
                    pairs.append((a.eid, b.eid))
            elif pos_a is not None and pos_b is None and b.tob_cast:
                pairs.append((a.eid, b.eid))
            elif pos_b is None and not b.tob_cast:
                if ar.holds(a.eid, b.eid):
                    pairs.append((a.eid, b.eid))
            elif pos_a is None and not a.tob_cast:
                if ar.holds(a.eid, b.eid):
                    pairs.append((a.eid, b.eid))
            elif pos_a is None and pos_b is None:
                if ar.holds(a.eid, b.eid):
                    pairs.append((a.eid, b.eid))
    return Relation(
        (pair for pair in pairs if pair[0] in known and pair[1] in known),
        universe=history.eids,
    )


def build_abstract_execution(history: History) -> AbstractExecution:
    """Assemble the full abstract execution for an instrumented history."""
    ar = build_ar(history)
    vis = build_vis(history)
    par = build_par(history, ar)
    return AbstractExecution(history=history, vis=vis, ar=ar, par=par)
