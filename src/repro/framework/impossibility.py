"""Theorem 1, mechanised.

The proof of Theorem 1 constructs an execution with four operations:

- ``a``: a weak updating operation on replica *i* (``append("a")``),
- ``b``: a weak updating operation on replica *j* (``append("b")``),
  where a and b do not commute,
- ``r``: a weak read-only operation on replica *k*, after k RB-delivered
  both messages — by Lemma 2 it must observe both, so it returns ``"ab"``
  (fixing ``a --ar--> b``),
- ``c``: a strong operation on replica *j* (``append("c")``), invoked after
  b returned, while the message about a has still not reached j. The
  non-blocking property forces j to answer from what it has: ``"bc"``.

The contradiction: RVal(r) forces a→b, SessArb+SinOrd force b→c, and
SinOrd with a invisible to c forces c→a — a cycle in ``ar``.

This module provides three artefacts:

1. :func:`build_theorem1_history` — the four-event history above;
2. :func:`prove_impossibility` — exhaustive search (via
   :mod:`repro.framework.search`) showing *no* extension satisfies
   ``BEC(weak) ∧ Seq(strong)``;
3. :func:`build_fec_witness` — an explicit extension showing the very same
   history *does* satisfy ``FEC(weak) ∧ Seq(strong)``, i.e. temporary
   operation reordering is exactly what must be admitted.

The live-systems counterpart (driving a real Bayou cluster through this
schedule) lives in :mod:`repro.analysis.experiments.theorem1`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.datatypes.rlist import RList
from repro.framework.abstract_execution import AbstractExecution
from repro.framework.builder import build_abstract_execution
from repro.framework.guarantees import GuaranteeReport, check_fec, check_seq
from repro.framework.history import STRONG, WEAK, History, HistoryEvent
from repro.framework.relations import Relation
from repro.framework.search import SearchOutcome, find_bec_seq_execution

#: Session ids used in the constructed history.
REPLICA_I, REPLICA_J, REPLICA_K = 0, 1, 2


def build_theorem1_history() -> History:
    """The four-event history from the proof of Theorem 1.

    Timestamps order a before b before r before c (consistent with the
    real-time schedule of the proof); the perceived traces record what each
    replica's state reflected when the response was computed, enabling the
    FEC witness to be assembled by the standard builder.
    """
    datatype = RList()
    a = HistoryEvent(
        eid="a",
        session=REPLICA_I,
        op=RList.append("a"),
        level=WEAK,
        invoke_time=1.0,
        return_time=1.5,
        rval="a",
        timestamp=1.0,
        tob_cast=True,
        tob_no=2,  # final order: b, c, a
        perceived_trace=(),
    )
    b = HistoryEvent(
        eid="b",
        session=REPLICA_J,
        op=RList.append("b"),
        level=WEAK,
        invoke_time=2.0,
        return_time=2.5,
        rval="b",
        timestamp=2.0,
        tob_cast=True,
        tob_no=0,
        perceived_trace=(),
    )
    r = HistoryEvent(
        eid="r",
        session=REPLICA_K,
        op=RList.read(),
        level=WEAK,
        invoke_time=4.0,
        return_time=4.1,
        rval="ab",
        timestamp=4.0,
        readonly=True,
        tob_cast=True,  # in unmodified Bayou even reads are broadcast
        tob_no=3,
        perceived_trace=("a", "b"),
    )
    c = HistoryEvent(
        eid="c",
        session=REPLICA_J,
        op=RList.append("c"),
        level=STRONG,
        invoke_time=5.0,
        return_time=6.0,
        rval="bc",
        timestamp=5.0,
        tob_cast=True,
        tob_no=1,
        perceived_trace=("b",),
    )
    return History([a, b, r, c], datatype)


def prove_impossibility(history: Optional[History] = None) -> SearchOutcome:
    """Exhaustively verify that no extension satisfies BEC(weak) ∧ Seq(strong).

    Returns the (unsatisfiable) :class:`SearchOutcome`; ``outcome.satisfiable``
    is False, mechanically confirming Theorem 1 on the proof's history.
    """
    return find_bec_seq_execution(history or build_theorem1_history())


@dataclass
class FecWitness:
    """The satisfiable side: an extension meeting FEC(weak) ∧ Seq(strong)."""

    execution: AbstractExecution
    fec_weak: GuaranteeReport
    seq_strong: GuaranteeReport

    @property
    def ok(self) -> bool:
        return self.fec_weak.ok and self.seq_strong.ok


def build_fec_witness(history: Optional[History] = None) -> FecWitness:
    """Build (via the standard Theorem-2 builder) the FEC ∧ Seq extension.

    The builder derives ``ar`` from the TOB order (b, c, a), ``vis`` from
    the perceived traces and ``par`` from ``exec'(e)`` — exactly the
    construction of Appendix A.2.3. The read ``r`` perceives a before b
    while the final arbitration has b before a: temporary operation
    reordering, admitted by FEC and fatal to BEC.
    """
    history = history or build_theorem1_history()
    execution = build_abstract_execution(history)
    return FecWitness(
        execution=execution,
        fec_weak=check_fec(execution, WEAK),
        seq_strong=check_seq(execution, STRONG),
    )
