"""Executable correctness predicates (Section 4).

Each predicate takes an :class:`AbstractExecution` and returns a
:class:`CheckResult` listing violations instead of just a boolean, so test
failures and experiment reports can explain *what* went wrong.

Finite-run semantics for the liveness-flavoured predicates:

- **EV** — the paper requires that only finitely many rb-successors of any
  event fail to observe it. Over a finite quiesced run we check: every event
  invoked *after the stabilisation horizon* observes every event that
  returns-before it. Harnesses issue post-quiescence probe events so the
  check has witnesses.
- **CPar** — ``par(e')`` must agree with ``ar`` (on ranks within
  ``vis⁻¹(e')``) for every event e' returning after the horizon.

If the history has no horizon these two checks pass vacuously and say so in
their notes; safety predicates (NCC, RVal, FRVal, SinOrd, SessArb) are
always checked exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.framework.abstract_execution import AbstractExecution
from repro.framework.history import STRONG, WEAK, HistoryEvent
from repro.framework.relations import Relation, rank

#: Cap on violations retained per check (full counts are still reported).
MAX_VIOLATIONS = 25


@dataclass
class CheckResult:
    """Outcome of one predicate check."""

    name: str
    ok: bool
    violations: List[str] = field(default_factory=list)
    violation_count: int = 0
    note: str = ""

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "OK" if self.ok else f"FAIL ({self.violation_count} violations)"
        suffix = f" — {self.note}" if self.note else ""
        return f"[{self.name}: {status}{suffix}]"


def _result(name: str, violations: List[str], note: str = "") -> CheckResult:
    return CheckResult(
        name=name,
        ok=not violations,
        violations=violations[:MAX_VIOLATIONS],
        violation_count=len(violations),
        note=note,
    )


# ----------------------------------------------------------------------
# EV — eventual visibility (Section 4)
# ----------------------------------------------------------------------
def check_ev(execution: AbstractExecution) -> CheckResult:
    """Every post-horizon event observes everything that returned before it."""
    history = execution.history
    if history.horizon is None:
        return CheckResult(
            "EV", True, note="vacuous: history has no stabilisation horizon"
        )
    probes = history.events_after_horizon()
    if not probes:
        return CheckResult("EV", True, note="vacuous: no post-horizon events")
    violations = []
    for target in probes:
        for event in history.events:
            if event.eid == target.eid:
                continue
            if event.return_time is None or event.return_time >= target.invoke_time:
                continue  # not rb-before the probe
            if not execution.vis.holds(event.eid, target.eid):
                violations.append(
                    f"{event.eid!r} returned before probe {target.eid!r} "
                    "but is not visible to it"
                )
    return _result("EV", violations, note=f"{len(probes)} post-horizon probes")


# ----------------------------------------------------------------------
# NCC — no circular causality (Section 4)
# ----------------------------------------------------------------------
def check_ncc(execution: AbstractExecution) -> CheckResult:
    """``hb = (so ∪ vis)⁺`` must be acyclic."""
    so = execution.history.session_order()
    hb = so.union(execution.vis).transitive_closure()
    cycle = hb.find_cycle()
    if cycle is None:
        return CheckResult("NCC", True)
    return _result(
        "NCC",
        [f"circular causality: {' -> '.join(repr(x) for x in cycle)}"],
    )


# ----------------------------------------------------------------------
# RVal / FRVal — return value correctness (Sections 4.1 and 4.2)
# ----------------------------------------------------------------------
def _check_rval(
    execution: AbstractExecution, level: Optional[str], *, fluctuating: bool
) -> CheckResult:
    name = ("FRVal" if fluctuating else "RVal") + (f"({level})" if level else "")
    violations = []
    events = (
        execution.history.with_level(level)
        if level is not None
        else list(execution.history.events)
    )
    for event in events:
        if event.pending:
            violations.append(f"{event.eid!r} is pending (rval = ∇)")
            continue
        try:
            expected = execution.expected_return(event.eid, fluctuating=fluctuating)
        except ValueError as error:
            violations.append(f"{event.eid!r}: context not linearisable: {error}")
            continue
        if expected != event.rval:
            violations.append(
                f"{event.eid!r} op={event.op!r}: returned {event.rval!r}, "
                f"specification expects {expected!r}"
            )
    return _result(name, violations, note=f"{len(events)} events checked")


def check_rval(
    execution: AbstractExecution, level: Optional[str] = None
) -> CheckResult:
    """``RVal(l, F)``: return values explained by contexts under final ``ar``."""
    return _check_rval(execution, level, fluctuating=False)


def check_frval(
    execution: AbstractExecution, level: Optional[str] = None
) -> CheckResult:
    """``FRVal(l, F)``: return values explained under perceived ``par(e)``."""
    return _check_rval(execution, level, fluctuating=True)


# ----------------------------------------------------------------------
# CPar — perceived order converges to ar (Section 4.2)
# ----------------------------------------------------------------------
def check_cpar(execution: AbstractExecution, level: str) -> CheckResult:
    """Post-horizon events of the level perceive past events at ar ranks."""
    history = execution.history
    if history.horizon is None:
        return CheckResult(
            f"CPar({level})", True, note="vacuous: no stabilisation horizon"
        )
    violations = []
    fluctuation_count = 0
    for observer in history.with_level(level):
        if observer.return_time is None:
            continue
        visible = execution.visible_events(observer.eid)
        par = execution.perceived_order(observer.eid)
        for eid in visible:
            perceived_rank = rank(visible, par, eid)
            final_rank = rank(visible, execution.ar, eid)
            if perceived_rank != final_rank:
                fluctuation_count += 1
                if observer.return_time > history.horizon:
                    violations.append(
                        f"post-horizon {observer.eid!r} perceives {eid!r} at rank "
                        f"{perceived_rank}, final ar rank is {final_rank}"
                    )
    return _result(
        f"CPar({level})",
        violations,
        note=f"{fluctuation_count} perceived-rank fluctuations in total",
    )


# ----------------------------------------------------------------------
# SinOrd / SessArb — the Seq ingredients (Section 4.3)
# ----------------------------------------------------------------------
def check_sinord(execution: AbstractExecution, level: str) -> CheckResult:
    """``∃E' ⊆ pending: vis_L = ar_L \\ (E' × E)``."""
    history = execution.history
    level_eids = {event.eid for event in history.with_level(level)}
    vis_l = execution.vis.restrict_targets(level_eids)
    ar_l = execution.ar.restrict_targets(level_eids)
    violations = []
    for a, b in vis_l:
        if not execution.ar.holds(a, b):
            violations.append(f"vis pair ({a!r}, {b!r}) not in ar")
    missing = ar_l.pairs - vis_l.pairs
    excluded_sources = set()
    for a, b in missing:
        source = history.event(a)
        if not source.pending:
            violations.append(
                f"completed {a!r} arbitrated before {b!r} but not visible to it"
            )
        else:
            excluded_sources.add(a)
    # An excluded pending source must be excluded wholesale (E' × E).
    for a in excluded_sources:
        for a2, b in vis_l:
            if a2 == a:
                violations.append(
                    f"pending {a!r} is visible to {b!r} but its other "
                    "ar-edges were excluded"
                )
    return _result(f"SinOrd({level})", violations)


def check_sessarb(execution: AbstractExecution, level: str) -> CheckResult:
    """``so_L ⊆ ar``: session order into level-l events respects arbitration."""
    history = execution.history
    level_eids = {event.eid for event in history.with_level(level)}
    violations = []
    for a, b in history.session_order():
        if b in level_eids and not execution.ar.holds(a, b):
            violations.append(f"session order {a!r} -> {b!r} not in ar")
    return _result(f"SessArb({level})", violations)
