"""Fault injection: crash schedules and message filters.

The paper's model is crash-stop ("replicas may crash silently and cease all
communication"). :class:`CrashSchedule` arms crashes at given times.
:class:`MessageFilter` supports targeted message drops/delays used by tests
to force specific adversarial schedules (e.g. the Theorem 1 execution, where
one replica must never learn about a particular operation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sim.kernel import Simulator
from repro.sim.process import Process

#: A filter rule: (src, dst, payload, time) -> extra delay (None = no-op).
FilterRule = Callable[[int, int, Any, float], Optional[float]]


def mentions_dot(value: Any, dot: Any) -> bool:
    """Recursively search a payload structure for a request dot."""
    if value == dot:
        return True
    if isinstance(value, (tuple, list)):
        return any(mentions_dot(item, dot) for item in value)
    if hasattr(value, "dot"):
        return value.dot == dot
    if isinstance(value, dict):  # pragma: no cover - payloads are tuples today
        return any(mentions_dot(item, dot) for item in value.values())
    return False


def tob_delay_rule(extra: float, *, tag: str = "seqtob") -> FilterRule:
    """A rule adding ``extra`` latency to every TOB-engine message.

    The paper's Figure 1/2 schedules rely on the final order being
    established well after the speculative executions; consensus being
    slower than gossip is also the realistic regime.
    """

    def rule(_src: int, _dst: int, payload: Any, _time: float) -> Optional[float]:
        if isinstance(payload, tuple) and payload and payload[0] == tag:
            return extra
        return None

    return rule


def delay_tob_for_dot_rule(
    dot: Any, *, receiver: int, extra: float, tag: str = "seqtob"
) -> FilterRule:
    """A rule delaying only TOB-engine messages about ``dot`` into ``receiver``.

    Used to steer the final order: e.g. hold a request's proposal back from
    the sequencer so later requests commit first.
    """

    def rule(_src: int, dst: int, payload: Any, _time: float) -> Optional[float]:
        if (
            dst == receiver
            and isinstance(payload, tuple)
            and payload
            and payload[0] == tag
            and mentions_dot(payload, dot)
        ):
            return extra
        return None

    return rule


def quarantine_dot_rule(dot: Any, *, receiver: int, extra: float) -> FilterRule:
    """A rule delaying every message carrying ``dot`` into ``receiver``.

    Models the Theorem-1 adversary: a replica must not learn about an event
    (by any route — RB, relay, or TOB delivery) until late.
    """

    def rule(_src: int, dst: int, payload: Any, _time: float) -> Optional[float]:
        if dst == receiver and mentions_dot(payload, dot):
            return extra
        return None

    return rule


@dataclass
class CrashPlan:
    """One planned crash (and optional recovery).

    ``mode`` is the :meth:`Process.crash` mode: ``"stop"`` for the paper's
    permanent silent crash, ``"recover"`` for a crash–recovery fault. It
    defaults to ``"recover"`` exactly when a ``recover_at`` is given.
    """

    pid: int
    crash_at: float
    recover_at: Optional[float] = None
    mode: Optional[str] = None

    @property
    def effective_mode(self) -> str:
        if self.mode is not None:
            return self.mode
        return "recover" if self.recover_at is not None else "stop"


class CrashSchedule:
    """Arms crash/recovery timers against a set of processes."""

    def __init__(self, plans: Sequence[CrashPlan] = ()) -> None:
        self.plans: List[CrashPlan] = list(plans)

    def add(
        self,
        pid: int,
        crash_at: float,
        recover_at: Optional[float] = None,
        *,
        mode: Optional[str] = None,
    ) -> None:
        """Plan a crash of ``pid`` at ``crash_at`` (and recovery, if given)."""
        if mode not in (None, "stop", "recover"):
            raise ValueError(f"unknown crash mode {mode!r}")
        if recover_at is not None and recover_at <= crash_at:
            raise ValueError("recovery must come after the crash")
        if mode == "stop" and recover_at is not None:
            raise ValueError("a crash-stop plan cannot have a recovery time")
        self.plans.append(CrashPlan(pid, crash_at, recover_at, mode))

    def arm(self, sim: Simulator, processes: Dict[int, Process]) -> None:
        """Schedule the crash/recovery callbacks on the simulator."""
        for plan in self.plans:
            process = processes[plan.pid]
            sim.schedule_at(
                plan.crash_at,
                lambda p=process, m=plan.effective_mode: p.crash(m),
                label=f"crash p{plan.pid}",
            )
            if plan.recover_at is not None:
                sim.schedule_at(
                    plan.recover_at, process.recover, label=f"recover p{plan.pid}"
                )


#: A filter takes (sender, receiver, payload, time) and returns either
#: ``None`` to let the network's normal behaviour apply, ``"drop"`` to drop
#: the message permanently, or a float extra delay in time units.
FilterFn = Callable[[int, int, Any, float], Optional[Any]]


class MessageFilter:
    """A composable stack of message filters.

    All filters are consulted for every message: a ``DROP`` from any rule
    drops the message; otherwise numeric delays from all matching rules
    *accumulate*. This is how tests realise the precise adversarial message
    schedules that the paper's proofs construct (e.g. "TOB is globally slow
    *and* this particular request's proposal is additionally held back").
    """

    DROP = "drop"

    def __init__(self) -> None:
        self._filters: List[FilterFn] = []

    def add(self, filter_fn: FilterFn) -> None:
        """Register a filter."""
        self._filters.append(filter_fn)

    def drop_between(self, sender: int, receiver: int) -> None:
        """Permanently drop every message from ``sender`` to ``receiver``."""

        def rule(src: int, dst: int, _payload: Any, _t: float) -> Optional[Any]:
            if src == sender and dst == receiver:
                return MessageFilter.DROP
            return None

        self.add(rule)

    def delay_between(self, sender: int, receiver: int, extra: float) -> None:
        """Add ``extra`` latency to every message from ``sender`` to ``receiver``."""

        def rule(src: int, dst: int, _payload: Any, _t: float) -> Optional[Any]:
            if src == sender and dst == receiver:
                return extra
            return None

        self.add(rule)

    def verdict(self, sender: int, receiver: int, payload: Any, time: float) -> Optional[Any]:
        """DROP if any rule drops; otherwise the summed extra delay (or None)."""
        total_delay: Optional[float] = None
        for filter_fn in self._filters:
            result = filter_fn(sender, receiver, payload, time)
            if result is None:
                continue
            if result == MessageFilter.DROP:
                return MessageFilter.DROP
            total_delay = (total_delay or 0.0) + float(result)
        return total_delay
