"""Message-passing network substrate.

Implements the communication model from Appendix A.2.1 of the paper:
point-to-point FIFO links with configurable latency, *temporary* network
partitions (messages crossing a partition are buffered and flushed when the
partition heals, preserving reliable delivery), and crash faults.

The network deliberately distinguishes the paper's two run kinds:

- **stable runs**: no partitions after some point; consensus (TOB) makes
  progress;
- **asynchronous runs**: partitions may hold for arbitrarily long stretches;
  TOB may never deliver, but reliable broadcast still delivers within each
  partition component.
"""

from repro.net.message import Envelope
from repro.net.network import LatencyModel, Network, UniformLatency, FixedLatency
from repro.net.partition import PartitionSchedule
from repro.net.faults import CrashSchedule, MessageFilter

__all__ = [
    "CrashSchedule",
    "Envelope",
    "FixedLatency",
    "LatencyModel",
    "MessageFilter",
    "Network",
    "PartitionSchedule",
    "UniformLatency",
]
