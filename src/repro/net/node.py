"""Routing nodes: processes hosting multiple protocol components.

A replica in this repository is one :class:`RoutingNode` hosting several
components (reliable broadcast, total order broadcast, failure detector, the
Bayou state machine). Messages on the wire are ``(component_tag, payload)``
pairs; the node dispatches them to the registered component handler.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.process import Process

ComponentHandler = Callable[[int, Any], None]


class RoutingNode(Process):
    """A process that routes tagged messages to registered components."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: int,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, pid, name)
        self.network = network
        self._components: Dict[str, ComponentHandler] = {}
        network.register(self)

    def register_component(self, tag: str, handler: ComponentHandler) -> None:
        """Register ``handler`` for messages tagged ``tag``."""
        if tag in self._components:
            raise ValueError(f"component tag {tag!r} already registered")
        self._components[tag] = handler

    def on_message(self, sender: int, message: Any) -> None:
        tag, payload = message
        handler = self._components.get(tag)
        if handler is None:
            raise KeyError(f"{self.name}: no component for tag {tag!r}")
        handler(sender, payload)

    def send_component(self, receiver: int, tag: str, payload: Any) -> None:
        """Send a tagged message to one process (possibly ourselves)."""
        self.network.send(self.pid, receiver, (tag, payload))

    def broadcast_component(
        self, tag: str, payload: Any, *, include_self: bool = False
    ) -> None:
        """Send a tagged message to every process."""
        self.network.broadcast(self.pid, (tag, payload), include_self=include_self)
