"""Routing nodes: processes hosting multiple protocol components.

A replica in this repository is one :class:`RoutingNode` hosting several
components (reliable broadcast, total order broadcast, failure detector, the
Bayou state machine). Messages on the wire are ``(component_tag, payload)``
pairs; the node dispatches them to the registered component handler.

The node talks to the world only through its injected
:class:`~repro.runtime.base.Runtime` — on the deterministic backend that is
a :class:`~repro.runtime.sim.SimRuntime` whose delivery engine is the
simulated :class:`~repro.net.network.Network`; on the real-socket backend
it is an :class:`~repro.runtime.asyncio_net.AsyncioRuntime` speaking
length-prefixed frames over TCP. Components built on the node (everything
under :mod:`repro.broadcast`, the replica itself) are therefore
backend-agnostic: they see ``send_component`` / ``broadcast_component`` /
``set_timer`` / ``now`` and nothing else.

The historical constructor ``RoutingNode(sim, network, pid)`` still works —
it wraps the pair in a :class:`SimRuntime` — so existing deterministic
tests and harnesses are untouched.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from repro.runtime.base import Runtime
from repro.runtime.sim import SimRuntime
from repro.sim.kernel import Simulator
from repro.sim.process import Process

ComponentHandler = Callable[[int, Any], None]


class RoutingNode(Process):
    """A process that routes tagged messages to registered components."""

    def __init__(
        self,
        runtime: Union[Runtime, Simulator],
        network: Any = None,
        pid: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(runtime, Runtime):
            # Runtime-first signature: RoutingNode(runtime, pid, name=...).
            if pid is None:
                pid, network = network, None
            if network is not None:
                raise TypeError(
                    "pass either a Runtime or a (Simulator, Network) pair, "
                    "not both"
                )
        else:
            # Legacy signature: RoutingNode(sim, network, pid, name=...).
            runtime = SimRuntime(runtime, network)
        if pid is None:
            raise TypeError("RoutingNode needs a pid")
        super().__init__(runtime, pid, name)
        self._components: Dict[str, ComponentHandler] = {}
        self.runtime.register(self)

    @property
    def network(self):
        """The sim backend's delivery engine (sim-only harness code)."""
        return self.runtime.network  # type: ignore[attr-defined]

    @property
    def n_processes(self) -> int:
        """Number of processes in the deployment, on any backend."""
        return self.runtime.n_processes

    def register_component(self, tag: str, handler: ComponentHandler) -> None:
        """Register ``handler`` for messages tagged ``tag``."""
        if tag in self._components:
            raise ValueError(f"component tag {tag!r} already registered")
        self._components[tag] = handler

    def on_message(self, sender: int, message: Any) -> None:
        tag, payload = message
        handler = self._components.get(tag)
        if handler is None:
            raise KeyError(f"{self.name}: no component for tag {tag!r}")
        handler(sender, payload)

    def send_component(self, receiver: int, tag: str, payload: Any) -> None:
        """Send a tagged message to one process (possibly ourselves)."""
        self.runtime.send(self.pid, receiver, (tag, payload))

    def broadcast_component(
        self, tag: str, payload: Any, *, include_self: bool = False
    ) -> None:
        """Send a tagged message to every process."""
        self.runtime.broadcast(self.pid, (tag, payload), include_self=include_self)
