"""The simulated network — the sim backend's delivery engine.

Point-to-point, FIFO-per-link message passing with pluggable latency models,
partition awareness and fault filters. Protocol code never talks to this
class directly any more: it sees only the
:class:`~repro.runtime.base.Runtime` seam, and
:class:`~repro.runtime.sim.SimRuntime` routes ``send``/``broadcast`` here.
Harness code (clusters, scenario builders, fault schedules) still owns the
network object for its counters, partitions and filters.

Partition semantics follow the paper's model of *temporary* partitions: a
message whose link is cut at delivery time is buffered and re-attempted when
the partition schedule next changes, so no message between correct processes
is ever lost — it is only (possibly unboundedly) delayed. In a run whose
partition never heals (the paper's *asynchronous runs*) buffered messages
simply stay buffered, and the simulation can still quiesce.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.net.faults import MessageFilter
from repro.net.message import Envelope
from repro.net.partition import PartitionSchedule
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.rng import SeededRngRegistry
from repro.sim.trace import TraceLog


class LatencyModel:
    """Base class for per-message latency models."""

    def sample(self, sender: int, receiver: int) -> float:
        """Return the one-way latency for a message on this link."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay

    def sample(self, sender: int, receiver: int) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]`` per message."""

    def __init__(
        self,
        low: float,
        high: float,
        rngs: Optional[SeededRngRegistry] = None,
        *,
        stream: str = "net.latency",
    ) -> None:
        if low < 0 or high < low:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high
        self._rng = (rngs or SeededRngRegistry(0)).stream(stream)

    def sample(self, sender: int, receiver: int) -> float:
        return self._rng.uniform(self.low, self.high)


class Network:
    """A partitionable FIFO network connecting :class:`Process` instances.

    FIFO per link is enforced by making scheduled delivery times strictly
    increasing on each (sender, receiver) pair, which the paper's TOB
    requirements (FIFO order per sender) rely on.
    """

    #: Minimal spacing between two deliveries on the same link.
    FIFO_EPSILON = 1e-9

    def __init__(
        self,
        sim: Simulator,
        n_processes: int,
        *,
        latency: Optional[LatencyModel] = None,
        partitions: Optional[PartitionSchedule] = None,
        filters: Optional[MessageFilter] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.n_processes = n_processes
        self.latency = latency or FixedLatency(1.0)
        self.partitions = partitions or PartitionSchedule(n_processes)
        self.filters = filters or MessageFilter()
        self.trace = trace
        self._processes: Dict[int, Process] = {}
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        #: Messages whose partition never (yet) heals, awaiting reschedule.
        self._held: List[Envelope] = []
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        #: Messages that reached a crashed receiver and were silently lost.
        #: Kept out of ``delivered_count`` so dissemination benchmarks count
        #: only messages a process actually consumed.
        self.suppressed_count = 0

    def register(self, process: Process) -> None:
        """Attach a process; its ``pid`` must be in ``range(n_processes)``."""
        if not (0 <= process.pid < self.n_processes):
            raise ValueError(f"pid {process.pid} out of range")
        self._processes[process.pid] = process

    def process(self, pid: int) -> Process:
        """Return the registered process with the given pid."""
        return self._processes[pid]

    def send(self, sender: int, receiver: int, payload: Any) -> Optional[Envelope]:
        """Send ``payload``; returns the envelope, or None if dropped by a filter.

        Self-messages (loopback) go through the same latency, filter and
        FIFO machinery as any other link: protocol components (e.g. the TOB
        sequencer ordering its own proposal) should not get a free
        zero-latency path that no real deployment has.
        """
        verdict = self.filters.verdict(sender, receiver, payload, self.sim.now)
        extra_delay = 0.0
        if verdict == MessageFilter.DROP:
            self.dropped_count += 1
            if self.trace is not None:
                self.trace.record(
                    self.sim.now, sender, "net.drop", receiver=receiver, payload=payload
                )
            return None
        if verdict is not None:
            extra_delay = float(verdict)

        envelope = Envelope(sender, receiver, payload, self.sim.now)
        self.sent_count += 1
        delay = self.latency.sample(sender, receiver) + extra_delay
        key = (sender, receiver)
        target = self.sim.now + delay
        floor = self._last_delivery.get(key, float("-inf")) + self.FIFO_EPSILON
        target = max(target, floor)
        self._last_delivery[key] = target
        self.sim.schedule_at(
            target,
            lambda: self._attempt_delivery(envelope),
            label=f"net {sender}->{receiver}",
        )
        return envelope

    def broadcast(self, sender: int, payload: Any, *, include_self: bool = False) -> None:
        """Send ``payload`` to every process (optionally including the sender)."""
        for pid in range(self.n_processes):
            if pid == sender and not include_self:
                continue
            self.send(sender, pid, payload)

    def _attempt_delivery(self, envelope: Envelope) -> None:
        """Deliver ``envelope`` if connectivity allows; otherwise buffer it."""
        now = self.sim.now
        if not self.partitions.connected(envelope.sender, envelope.receiver, now):
            retry_at = self.partitions.next_change_after(now)
            if retry_at == float("inf"):
                self._held.append(envelope)
                if self.trace is not None:
                    self.trace.record(
                        now, envelope.sender, "net.held", receiver=envelope.receiver
                    )
            else:
                self.sim.schedule_at(
                    retry_at,
                    lambda: self._attempt_delivery(envelope),
                    label=f"net retry {envelope.sender}->{envelope.receiver}",
                )
            return
        process = self._processes.get(envelope.receiver)
        if process is None:
            return
        if process.crashed:
            # A crashed receiver silently drops the message (the paper's
            # "cease all communication"); it was never delivered, so it
            # must not count as one nor appear as a ``net.deliver`` trace.
            self.suppressed_count += 1
            if self.trace is not None:
                self.trace.record(
                    now,
                    envelope.receiver,
                    "net.suppress",
                    sender=envelope.sender,
                    payload=envelope.payload,
                )
            return
        self.delivered_count += 1
        if self.trace is not None:
            self.trace.record(
                now,
                envelope.receiver,
                "net.deliver",
                sender=envelope.sender,
                payload=envelope.payload,
            )
        process.deliver(envelope.sender, envelope.payload)

    def reschedule_held(self) -> None:
        """Re-attempt delivery of messages held during a never-ending partition.

        Experiments that mutate the partition schedule mid-run (e.g. healing a
        partition that was previously permanent) must call this afterwards.
        """
        held, self._held = self._held, []
        for envelope in held:
            self.sim.schedule(
                0.0,
                lambda env=envelope: self._attempt_delivery(env),
                label="net reattempt",
            )

    @property
    def held_count(self) -> int:
        """Number of messages currently buffered behind a permanent partition."""
        return len(self._held)
