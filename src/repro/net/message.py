"""Message envelopes carried by the network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_ENVELOPE_IDS = itertools.count()


@dataclass(frozen=True)
class Envelope:
    """A message in flight: payload plus addressing and bookkeeping metadata.

    ``uid`` gives every envelope a globally unique identity so traces,
    retransmission suppression and the reliable-broadcast dedup logic can
    refer to a specific transmission unambiguously.
    """

    sender: int
    receiver: int
    payload: Any
    sent_at: float
    uid: int = field(default_factory=lambda: next(_ENVELOPE_IDS))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope(#{self.uid} {self.sender}->{self.receiver} "
            f"t={self.sent_at:.3f} {self.payload!r})"
        )
