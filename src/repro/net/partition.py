"""Network partition schedules.

A :class:`PartitionSchedule` maps simulated time to a partitioning of the
replica set into connected components. The paper's model admits only
*temporary* partitions (Section 2.3): messages sent across a partition are
buffered by the network and delivered once the partition heals, which keeps
reliable broadcast reliable.

An *asynchronous run* in the paper's sense is simply a run evaluated while a
partition is still in force (or with ``partition_forever``); a *stable run*
is one whose schedule heals all partitions.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import FrozenSet, Iterable, List, Sequence, Tuple

Component = FrozenSet[int]


class PartitionSchedule:
    """A time-indexed sequence of partitionings.

    The schedule starts fully connected. ``split(at, components)`` installs a
    partitioning at time ``at``; ``heal(at)`` restores full connectivity.
    Components must be disjoint; any process not mentioned forms a singleton
    component (i.e. it is isolated from everyone mentioned elsewhere).
    """

    def __init__(self, n_processes: int) -> None:
        if n_processes <= 0:
            raise ValueError("n_processes must be positive")
        self.n_processes = n_processes
        everyone = frozenset(range(n_processes))
        # Sorted list of (time, partitioning); partitioning = tuple of frozensets.
        self._changes: List[Tuple[float, Tuple[Component, ...]]] = [
            (float("-inf"), (everyone,))
        ]

    def _validate(self, components: Sequence[Iterable[int]]) -> Tuple[Component, ...]:
        frozen = [frozenset(c) for c in components]
        seen: set = set()
        for comp in frozen:
            for pid in comp:
                if not (0 <= pid < self.n_processes):
                    raise ValueError(f"unknown process id {pid}")
                if pid in seen:
                    raise ValueError(f"process {pid} appears in two components")
                seen.add(pid)
        # Unmentioned processes become singletons.
        for pid in range(self.n_processes):
            if pid not in seen:
                frozen.append(frozenset([pid]))
        return tuple(frozen)

    def split(self, at: float, components: Sequence[Iterable[int]]) -> None:
        """Install a partitioning at time ``at`` (replacing later changes)."""
        partitioning = self._validate(components)
        self._changes = [c for c in self._changes if c[0] < at]
        self._changes.append((at, partitioning))
        self._changes.sort(key=lambda c: c[0])

    def heal(self, at: float) -> None:
        """Restore full connectivity at time ``at``."""
        self.split(at, [range(self.n_processes)])

    def partitioning_at(self, time: float) -> Tuple[Component, ...]:
        """Return the partitioning in force at ``time``."""
        times = [c[0] for c in self._changes]
        index = bisect_right(times, time) - 1
        return self._changes[index][1]

    def connected(self, a: int, b: int, time: float) -> bool:
        """True if processes ``a`` and ``b`` can exchange messages at ``time``."""
        if a == b:
            return True
        for component in self.partitioning_at(time):
            if a in component:
                return b in component
        return False

    def component_of(self, pid: int, time: float) -> Component:
        """Return the component containing ``pid`` at ``time``."""
        for component in self.partitioning_at(time):
            if pid in component:
                return component
        return frozenset([pid])

    def next_change_after(self, time: float) -> float:
        """Return the time of the next scheduled change strictly after ``time``.

        Returns ``inf`` if the schedule never changes again; the network uses
        this to decide when to retry delivery of buffered cross-partition
        messages.
        """
        for change_time, _ in self._changes:
            if change_time > time:
                return change_time
        return float("inf")
