"""Causal trace contexts: the identity an operation carries through its life.

A :class:`TraceContext` is the (trace id, span id) pair stamped on an
operation when it enters the system and propagated alongside it — through
the router, the TOB engine, migration defer/retry, cross-shard plan legs,
and (on the asyncio runtime) across TCP frames. Every telemetry span
recorded for the op cites the trace id, so the per-op story can be
reassembled from any mix of processes and runtimes.

The key design decision: **op trace ids are derived from dots**. An
operation's dot ``(pid, n)`` is already the globally unique, totally
portable identity the protocol itself uses, so the trace id is simply
``"d{pid}.{n}"`` (:func:`op_trace_id`). Any component that knows the dot
— the TOB engine delivering a request, a replica committing it, a router
that just learned the dot from ``submit`` — can reconstruct the context
locally, without threading context objects through protocol signatures
and without any id-allocation that could perturb determinism.

Contexts still travel explicitly where no dot exists yet or where the
receiver should not have to know the convention: the asyncio transport
stamps the current context into an optional ``"trace"`` frame field
(encoded via the durability codec registry, tag ``"~trace"``), and
restores it around delivery on the far side. Old frames without the
field decode exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.core.durability import register_codec


@dataclass(frozen=True)
class TraceContext:
    """An immutable (trace id, span id, parent span id) triple."""

    trace_id: str
    span_id: str = "root"
    parent_id: Optional[str] = None

    def child(self, span_id: str) -> "TraceContext":
        """A context for a child span of this one, same trace."""
        return replace(self, span_id=span_id, parent_id=self.span_id)

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id}/{self.span_id})"


def op_trace_id(dot: Tuple[int, int]) -> str:
    """The canonical trace id for the operation identified by ``dot``."""
    return f"d{dot[0]}.{dot[1]}"


def op_context(dot: Tuple[int, int]) -> TraceContext:
    """The root context of the operation identified by ``dot``."""
    return TraceContext(trace_id=op_trace_id(dot))


# Contexts cross process boundaries inside wire frames and may appear in
# durable records; register them with the shared codec so both the
# JSON-lines store and the TCP frame codec round-trip them.
register_codec(
    "~trace",
    TraceContext,
    lambda ctx: [ctx.trace_id, ctx.span_id, ctx.parent_id],
    lambda payload: TraceContext(
        trace_id=payload[0], span_id=payload[1], parent_id=payload[2]
    ),
)
