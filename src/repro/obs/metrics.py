"""The online metrics registry: counters, gauges, streaming histograms.

One :class:`MetricsRegistry` per telemetry plane. Instruments are created
lazily and identified by ``(name, labels)`` — the same convention
Prometheus uses — so ``registry.counter("bayou.ops_executed", pid=0)`` and
``pid=1`` are distinct time series under one metric name. Lookups are one
dict access; increments are one attribute add. Nothing here allocates per
sample beyond the t-digest's amortised buffer, which is what lets the
instruments live on protocol hot paths.

Three instrument kinds:

- :class:`Counter` — monotonically increasing float (``inc``);
- :class:`Gauge` — a settable level (``set`` / ``inc`` / ``dec``), for
  queue depths and backlog sizes;
- :class:`Histogram` — streaming distribution: count / sum / min / max
  exactly, percentiles approximately via :class:`~repro.obs.tdigest.TDigest`
  (the fold the ROADMAP's constant-memory streaming item names).

``render()`` emits the Prometheus text exposition format; ``snapshot()``
returns a plain JSON-able dict for artifacts and RPC.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.tdigest import TDigest

#: A frozen label set: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _labels_text(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}{_labels_text(self.labels)}={self.value:g})"


class Gauge:
    """A level that can move both ways (queue depth, backlog size)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}{_labels_text(self.labels)}={self.value:g})"


class Histogram:
    """Streaming distribution: exact count/sum/min/max, t-digest tails."""

    __slots__ = ("name", "labels", "count", "sum", "min", "max", "digest")

    def __init__(
        self, name: str, labels: LabelKey, *, compression: int = 100
    ) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.digest = TDigest(compression)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.digest.add(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        return self.digest.quantile(fraction)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}{_labels_text(self.labels)}: "
            f"n={self.count}, mean={self.mean:.4g}, "
            f"p95={self.quantile(0.95):.4g})"
        )


class MetricsRegistry:
    """Lazily created instruments, keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access (creation is lazy and idempotent)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _labels_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _labels_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self, name: str, *, compression: int = 100, **labels: Any
    ) -> Histogram:
        key = (name, _labels_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                name, key[1], compression=compression
            )
        return instrument

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------
    def counters(self, name: Optional[str] = None) -> Iterator[Counter]:
        for (metric, _), instrument in sorted(self._counters.items()):
            if name is None or metric == name:
                yield instrument

    def gauges(self, name: Optional[str] = None) -> Iterator[Gauge]:
        for (metric, _), instrument in sorted(self._gauges.items()):
            if name is None or metric == name:
                yield instrument

    def histograms(self, name: Optional[str] = None) -> Iterator[Histogram]:
        for (metric, _), instrument in sorted(self._histograms.items()):
            if name is None or metric == name:
                yield instrument

    def counter_total(self, name: str) -> float:
        """Sum of one counter metric across all label sets."""
        return sum(instrument.value for instrument in self.counters(name))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition format (stable ordering)."""
        lines: List[str] = []
        for instrument in self.counters():
            lines.append(f"# TYPE {instrument.name} counter")
            lines.append(
                f"{instrument.name}{_labels_text(instrument.labels)} "
                f"{instrument.value:g}"
            )
        for instrument in self.gauges():
            lines.append(f"# TYPE {instrument.name} gauge")
            lines.append(
                f"{instrument.name}{_labels_text(instrument.labels)} "
                f"{instrument.value:g}"
            )
        for instrument in self.histograms():
            lines.append(f"# TYPE {instrument.name} summary")
            labels = instrument.labels
            base = instrument.name
            for fraction in (0.5, 0.95, 0.99):
                quantile_key = labels + (("quantile", f"{fraction:g}"),)
                lines.append(
                    f"{base}{_labels_text(quantile_key)} "
                    f"{instrument.quantile(fraction):g}"
                )
            lines.append(
                f"{base}_sum{_labels_text(labels)} {instrument.sum:g}"
            )
            lines.append(
                f"{base}_count{_labels_text(labels)} {instrument.count:g}"
            )
        # Deduplicate consecutive TYPE lines for multi-series metrics.
        deduped: List[str] = []
        for line in lines:
            if line.startswith("# TYPE") and deduped and deduped[-1] == line:
                continue
            if (
                line.startswith("# TYPE")
                and any(previous == line for previous in deduped)
            ):
                continue
            deduped.append(line)
        return "\n".join(deduped) + ("\n" if deduped else "")

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able dump (experiment artifacts, RPC responses)."""
        return {
            "counters": {
                f"{c.name}{_labels_text(c.labels)}": c.value
                for c in self.counters()
            },
            "gauges": {
                f"{g.name}{_labels_text(g.labels)}": g.value
                for g in self.gauges()
            },
            "histograms": {
                f"{h.name}{_labels_text(h.labels)}": {
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                    "p50": h.quantile(0.5),
                    "p95": h.quantile(0.95),
                    "p99": h.quantile(0.99),
                }
                for h in self.histograms()
            },
        }
