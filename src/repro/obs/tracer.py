"""The span sink: a bounded ring of structured span events.

A :class:`SpanEvent` is one recorded step of an operation's lifecycle
(``submit``, ``tob.cast``, ``commit``, …) tied to a trace by
``(trace_id, span_id, parent_id)``. The :class:`Tracer` collects them in
arrival order; with a ``capacity`` it becomes a ring that drops the
oldest events and counts the drops — long runs stop accreting unbounded
telemetry, the same discipline the bounded ``TraceLog`` applies.

Spans here are *events*, not open/close pairs: each carries the single
timestamp at which the step happened (sim time on the kernel, wall clock
on asyncio). Durations fall out of the tree — a child's time minus its
parent's — which keeps recording to one append on the hot path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class SpanEvent:
    """One recorded lifecycle step, tied to a trace."""

    time: float
    process: int
    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanEvent(t={self.time:.3f}, p={self.process}, {self.name}, "
            f"{self.trace_id}/{self.span_id})"
        )


class Tracer:
    """An append-only span sink, optionally bounded to a ring."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self._events: Deque[SpanEvent] = deque(maxlen=capacity)
        #: Events evicted by the ring (0 while unbounded or under capacity).
        self.dropped = 0

    def record(
        self,
        time: float,
        process: int,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> SpanEvent:
        """Append one span event and return it."""
        event = SpanEvent(
            time=time,
            process=process,
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            attrs=dict(attrs),
        )
        if self.capacity is not None and len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SpanEvent]:
        return iter(self._events)

    def events(
        self,
        *,
        trace_id: Optional[str] = None,
        name: Optional[str] = None,
        process: Optional[int] = None,
        predicate: Optional[Callable[[SpanEvent], bool]] = None,
    ) -> List[SpanEvent]:
        """Events filtered by trace, name, process and/or a predicate."""
        result = []
        for event in self._events:
            if trace_id is not None and event.trace_id != trace_id:
                continue
            if name is not None and event.name != name:
                continue
            if process is not None and event.process != process:
                continue
            if predicate is not None and not predicate(event):
                continue
            result.append(event)
        return result

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self._events:
            if event.trace_id not in seen:
                seen[event.trace_id] = None
        return list(seen)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
