"""The unified telemetry plane: causal op tracing + online metrics.

One :class:`Telemetry` object is the whole observability surface of a
deployment — sim or asyncio, single cluster or a sharded one (shards
share a single plane). It bundles:

- a :class:`~repro.obs.tracer.Tracer` collecting per-op
  :class:`~repro.obs.tracer.SpanEvent` records (optionally a bounded
  ring),
- a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  t-digest histograms,
- the *current* :class:`~repro.obs.context.TraceContext`, restored
  around message delivery so spans recorded deep in the protocol attach
  to the right trace,
- exporters (:func:`~repro.obs.export.write_jsonl`, Prometheus-style
  ``render_metrics``, text ``describe``).

Instrumented components hold ``self.telemetry`` (``None`` or a
:class:`Telemetry`) and guard every instrumentation site with
``if self.telemetry:`` — :class:`Telemetry` defines ``__bool__`` as its
``enabled`` flag, so a disabled plane short-circuits exactly like an
absent one. That single-branch fast path is what the ≤5% disabled
overhead benchmark gate measures.

Instrumentation is strictly *append-only*: nothing the plane records
ever feeds back into a protocol decision, and op trace ids derive from
dots (:func:`~repro.obs.context.op_context`), so a seeded sim run is
bit-identical with telemetry on or off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, IO, Iterator, Optional, Tuple, Union

from repro.obs.context import TraceContext, op_context, op_trace_id
from repro.obs.export import (
    TraceTree,
    build_trace_trees,
    orphan_spans,
    read_jsonl,
    render_metrics_summary,
    render_timeline,
    write_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tdigest import TDigest
from repro.obs.tracer import SpanEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanEvent",
    "TDigest",
    "Telemetry",
    "TelemetryScope",
    "TraceContext",
    "TraceTree",
    "Tracer",
    "build_trace_trees",
    "op_context",
    "op_trace_id",
    "orphan_spans",
    "read_jsonl",
    "render_metrics_summary",
    "render_timeline",
    "write_jsonl",
]


class Telemetry:
    """One deployment's telemetry plane (tracing + metrics + exporters)."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        trace_capacity: Optional[int] = None,
    ) -> None:
        self.enabled = enabled
        self.tracer = Tracer(capacity=trace_capacity)
        self.registry = MetricsRegistry()
        #: The context active during the current delivery, if any.
        self.current: Optional[TraceContext] = None
        #: Client-side trace counter (cross-shard plans have no dot).
        self._trace_counter = 0

    def __bool__(self) -> bool:
        # ``if self.telemetry:`` must behave identically for an absent
        # plane (None) and an attached-but-disabled one.
        return self.enabled

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def span(
        self,
        time: float,
        process: int,
        name: str,
        context: TraceContext,
        **attrs: Any,
    ) -> SpanEvent:
        """Record one span event under ``context``."""
        return self.tracer.record(
            time,
            process,
            name,
            context.trace_id,
            context.span_id,
            context.parent_id,
            **attrs,
        )

    def op_span(
        self,
        time: float,
        process: int,
        name: str,
        dot: Tuple[int, int],
        span_id: str,
        parent_id: Optional[str],
        **attrs: Any,
    ) -> SpanEvent:
        """Record a span on the dot-derived trace of one operation."""
        return self.tracer.record(
            time, process, name, op_trace_id(dot), span_id, parent_id, **attrs
        )

    def next_trace(self, prefix: str) -> str:
        """Mint a fresh client-side trace id (``prefix`` + counter)."""
        self._trace_counter += 1
        return f"{prefix}{self._trace_counter}"

    def trace_id(self, dot: Tuple[int, int]) -> str:
        """The op trace id for ``dot`` (unscoped; see :class:`TelemetryScope`)."""
        return op_trace_id(dot)

    def named_trace(self, name: str) -> str:
        """A non-op trace id (maintenance, migration...); unscoped here."""
        return name

    @contextmanager
    def using(self, context: Optional[TraceContext]) -> Iterator[None]:
        """Make ``context`` current for the duration of a delivery."""
        previous = self.current
        self.current = context
        try:
            yield
        finally:
            self.current = previous

    def scoped(self, name: str) -> "TelemetryScope":
        """A view of this plane for one named deployment (shard).

        Sharded deployments run several clusters whose replicas share dot
        values (every shard has a replica 0 minting ``(0, 1)``); the scope
        prefixes op trace ids with the cluster name (``"S1:d0.3"``) and
        stamps a ``shard`` label on instruments so one shared plane keeps
        every shard's story separate.
        """
        return TelemetryScope(self, f"{name}:" if name else "", name)

    # ------------------------------------------------------------------
    # Metrics shorthand
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self.registry.histogram(name, **labels)

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able dump: metric snapshot plus tracer accounting."""
        return {
            "metrics": self.registry.snapshot(),
            "spans": len(self.tracer),
            "spans_dropped": self.tracer.dropped,
            "traces": len(self.tracer.trace_ids()),
        }

    def spans_jsonable(self) -> list:
        """All span events as JSON-able dicts (RPC / artifact payloads)."""
        from repro.obs.export import span_to_jsonable

        return [span_to_jsonable(event) for event in self.tracer]

    def render_metrics(self) -> str:
        """Prometheus text exposition of every instrument."""
        return self.registry.render()

    def write_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Dump spans + final metrics snapshot as telemetry JSONL."""
        return write_jsonl(target, self.tracer, self.registry.snapshot())

    def trees(self) -> Dict[str, TraceTree]:
        """Per-trace span trees assembled from the recorded events."""
        return build_trace_trees(self.tracer)

    def describe(self) -> str:
        """A one-paragraph text summary of the plane's contents."""
        trace_ids = self.tracer.trace_ids()
        lines = [
            f"telemetry: {'enabled' if self.enabled else 'disabled'}, "
            f"{len(self.tracer)} spans across {len(trace_ids)} traces"
            + (
                f" ({self.tracer.dropped} dropped)"
                if self.tracer.dropped
                else ""
            )
            + f", {len(self.registry)} instruments"
        ]
        summary = render_metrics_summary(self.registry.snapshot())
        if summary:
            lines.append(summary)
        return "\n".join(lines)


class TelemetryScope:
    """One deployment's view of a shared :class:`Telemetry` plane.

    Same tracer, same registry; op trace ids gain the scope prefix and
    instruments a ``shard`` label. Components hold either a
    :class:`Telemetry` or a :class:`TelemetryScope` behind the same
    ``self.telemetry`` attribute — both truth-test as the plane's
    ``enabled`` flag and expose the same recording surface.
    """

    __slots__ = ("plane", "prefix", "shard")

    def __init__(self, plane: Telemetry, prefix: str, shard: str) -> None:
        self.plane = plane
        self.prefix = prefix
        self.shard = shard

    def __bool__(self) -> bool:
        return self.plane.enabled

    @property
    def tracer(self) -> Tracer:
        return self.plane.tracer

    @property
    def registry(self) -> MetricsRegistry:
        return self.plane.registry

    def trace_id(self, dot: Tuple[int, int]) -> str:
        return self.prefix + op_trace_id(dot)

    def named_trace(self, name: str) -> str:
        return self.prefix + name

    def op_span(
        self,
        time: float,
        process: int,
        name: str,
        dot: Tuple[int, int],
        span_id: str,
        parent_id: Optional[str],
        **attrs: Any,
    ) -> SpanEvent:
        return self.plane.tracer.record(
            time, process, name, self.trace_id(dot), span_id, parent_id, **attrs
        )

    def span(
        self,
        time: float,
        process: int,
        name: str,
        context: TraceContext,
        **attrs: Any,
    ) -> SpanEvent:
        return self.plane.span(time, process, name, context, **attrs)

    def _labels(self, labels: Dict[str, Any]) -> Dict[str, Any]:
        if self.shard:
            labels.setdefault("shard", self.shard)
        return labels

    def counter(self, name: str, **labels: Any) -> Counter:
        return self.plane.registry.counter(name, **self._labels(labels))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.plane.registry.gauge(name, **self._labels(labels))

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self.plane.registry.histogram(name, **self._labels(labels))
