"""``python -m repro obs`` — render a recorded telemetry JSONL file.

A run armed with ``.telemetry()`` (or a served replica with
``"telemetry": true`` in its cluster spec) can dump its plane with
:meth:`~repro.obs.Telemetry.write_jsonl`; this command turns that file
back into the two human surfaces:

- the **span timeline** — one indented block per trace, each span at its
  offset from the trace's first event (sim-time and wall-clock recordings
  render identically), and
- the **metric summary** — counters, gauges and histogram percentiles
  from the snapshot record at the end of the file.

Usage::

    python -m repro obs telemetry.jsonl              # timeline + metrics
    python -m repro obs telemetry.jsonl --trace d0.3 # one op's story
    python -m repro obs telemetry.jsonl --limit 5    # first 5 traces
    python -m repro obs telemetry.jsonl --metrics    # metrics only
    python -m repro obs telemetry.jsonl --record     # record a demo run

``--record`` runs a small canonical traced deployment (two shards, two
replicas each, a seeded closed-loop workload) and writes its plane to
``path`` — the file CI uploads as the sample telemetry artifact, and the
quickest way to get a file to point the renderer at.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.obs.export import (
    orphan_spans,
    read_jsonl,
    render_metrics_summary,
    render_timeline,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description=(
            "Render the span timeline and metric summary of a telemetry "
            "JSONL file recorded by a traced run."
        ),
    )
    parser.add_argument("path", help="telemetry JSONL file to render")
    parser.add_argument(
        "--trace",
        metavar="ID",
        help="show only the trace with this id (e.g. d0.3 or S1:d0.3)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        metavar="N",
        help="show at most N traces",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="skip the timeline and print only the metric summary",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="record a small traced demo run into PATH instead of reading it",
    )
    return parser


def _record_demo(path: str) -> int:
    """Run the canonical traced demo deployment and dump its plane."""
    from repro.datatypes import KVStore
    from repro.scenario import Scenario

    result = (
        Scenario(KVStore(), name="obs-demo")
        .shards(2)
        .replicas(2)
        .exec_delay(0.05)
        .message_delay(0.2)
        .telemetry(True)
        .workload(
            "kv",
            keys=[f"k{i:02d}" for i in range(12)],
            ops_per_session=6,
            think_time=0.4,
            seed=3,
        )
        .run(well_formed=False)
    )
    written = result.telemetry.write_jsonl(path)
    print(f"wrote {written} records to {path}")
    print(result.telemetry.describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.record:
        return _record_demo(args.path)
    events, metrics = read_jsonl(args.path)
    if args.trace is not None:
        events = [event for event in events if event.trace_id == args.trace]
        if not events:
            print(f"no spans for trace {args.trace!r}")
            return 1
    show_timeline = not args.metrics
    # Narrowing to one trace implies the timeline is the point; a full
    # render appends the metric summary after the traces.
    show_metrics = args.metrics or args.trace is None
    if show_timeline:
        if events:
            print(render_timeline(events, limit=args.limit))
        else:
            print("no spans recorded")
        orphans = orphan_spans(events)
        if orphans:
            print(f"warning: {len(orphans)} orphan spans (parent not recorded)")
    if show_metrics:
        if metrics is not None:
            print(render_metrics_summary(metrics))
        else:
            print("no metrics snapshot in file")
    return 0
