"""A merging t-digest: streaming quantile sketch in O(δ) memory.

The ROADMAP's constant-memory streaming item needs commit-latency and
staleness *percentiles* without keeping every sample; a t-digest (Dunning
& Ertl) folds an unbounded stream into a bounded list of centroids whose
sizes taper off near the tails, so extreme quantiles stay sharp while the
middle compresses aggressively.

This is the *merging* variant: new samples accumulate in an unsorted
buffer and are merged into the centroid list only when the buffer fills —
amortised O(log n) per sample, no tree structures, no third-party
dependency. The size bound uses the standard scale function

    k(q) = δ/(2π) · asin(2q − 1)

whose derivative shrinks near q∈{0,1}: a centroid may absorb neighbours
only while the merged weight keeps ``k`` within one unit, which forces
singleton centroids at the tails (exact min/max) and wide ones in the
middle. ``δ`` (``compression``) bounds the centroid count to ~2δ.

Quantile queries interpolate linearly between centroid means, treating
each centroid as centred at half its weight — the same convention the
reference implementation uses, accurate to ~1/δ in rank.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple


class TDigest:
    """Bounded-memory streaming quantile estimator."""

    __slots__ = ("compression", "_means", "_weights", "_buffer", "_count",
                 "_min", "_max")

    def __init__(self, compression: int = 100) -> None:
        if compression < 10:
            raise ValueError(
                f"compression must be >= 10, got {compression!r}"
            )
        self.compression = compression
        self._means: List[float] = []
        self._weights: List[float] = []
        #: Unmerged samples; folded in when it reaches the buffer bound.
        self._buffer: List[float] = []
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, value: float, weight: float = 1.0) -> None:
        """Fold one sample into the sketch."""
        if weight != 1.0:
            # Weighted points skip the buffer (rare; merge immediately).
            self._compress(extra=[(float(value), float(weight))])
        else:
            self._buffer.append(float(value))
            if len(self._buffer) >= 5 * self.compression:
                self._compress()
        self._count += weight if weight != 1.0 else 1
        if value < self._min:
            self._min = float(value)
        if value > self._max:
            self._max = float(value)

    def update(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # ------------------------------------------------------------------
    # Merge machinery
    # ------------------------------------------------------------------
    def _k(self, q: float) -> float:
        """The asin scale function bounding per-centroid weight."""
        q = min(1.0, max(0.0, q))
        return self.compression * (math.asin(2.0 * q - 1.0) / (2.0 * math.pi) + 0.25)

    def _compress(self, extra: Optional[List[Tuple[float, float]]] = None) -> None:
        points = list(zip(self._means, self._weights))
        points.extend((v, 1.0) for v in self._buffer)
        if extra:
            points.extend(extra)
        self._buffer = []
        if not points:
            return
        points.sort(key=lambda p: p[0])
        total = sum(weight for _, weight in points)
        means: List[float] = []
        weights: List[float] = []
        # Greedy left-to-right merge: absorb the next point while the
        # resulting cumulative rank keeps k() within one unit of where the
        # current centroid began.
        mean, weight = points[0]
        seen = 0.0  # weight fully to the left of the current centroid
        k_limit = self._k(0.0) + 1.0
        for next_mean, next_weight in points[1:]:
            if self._k((seen + weight + next_weight) / total) <= k_limit:
                mean = (mean * weight + next_mean * next_weight) / (
                    weight + next_weight
                )
                weight += next_weight
            else:
                means.append(mean)
                weights.append(weight)
                seen += weight
                k_limit = self._k(seen / total) + 1.0
                mean, weight = next_mean, next_weight
        means.append(mean)
        weights.append(weight)
        self._means = means
        self._weights = weights

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> float:
        return self._count

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """The value at rank fraction ``q`` (0 ≤ q ≤ 1), interpolated."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {q!r}")
        if self._buffer:
            self._compress()
        if not self._means:
            return 0.0
        if len(self._means) == 1:
            return self._means[0]
        total = sum(self._weights)
        target = q * total
        # Centroid i is centred at cumulative weight seen + weight/2.
        seen = 0.0
        centres = []
        for mean, weight in zip(self._means, self._weights):
            centres.append((seen + weight / 2.0, mean))
            seen += weight
        if target <= centres[0][0]:
            # Below the first centre: interpolate from the true minimum.
            c0, m0 = centres[0]
            if c0 <= 0:
                return self._min
            frac = target / c0
            return self._min + frac * (m0 - self._min)
        if target >= centres[-1][0]:
            c1, m1 = centres[-1]
            span = total - c1
            if span <= 0:
                return self._max
            frac = (target - c1) / span
            return m1 + frac * (self._max - m1)
        for (c0, m0), (c1, m1) in zip(centres, centres[1:]):
            if c0 <= target <= c1:
                if c1 == c0:
                    return m0
                frac = (target - c0) / (c1 - c0)
                return m0 + frac * (m1 - m0)
        return self._max  # pragma: no cover - unreachable

    def percentiles(self, *fractions: float) -> Tuple[float, ...]:
        return tuple(self.quantile(fraction) for fraction in fractions)

    @property
    def n_centroids(self) -> int:
        if self._buffer:
            self._compress()
        return len(self._means)

    def __len__(self) -> int:
        return int(self._count)

    def __repr__(self) -> str:
        return (
            f"TDigest(n={int(self._count)}, centroids={self.n_centroids}, "
            f"min={self.minimum:.4g}, max={self.maximum:.4g})"
        )
