"""Exporters: JSONL telemetry files, span-tree assembly, timeline render.

The on-disk format is one JSON object per line. Span events are
``{"span": {...}}`` records; a single optional ``{"metrics": {...}}``
record (a :meth:`MetricsRegistry.snapshot`) carries the final metric
values. The format is append-friendly (a streaming sink can emit spans
as they happen) and tolerant: unknown record kinds are skipped on read,
so the format can grow.

:func:`build_trace_trees` reassembles per-op span trees from a flat event
list and reports *orphans* — spans whose ``parent_id`` names a span that
never appears in the trace. The acceptance criterion "a complete span
tree for every committed op, no orphan spans" is checked exactly here.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

from repro.obs.tracer import SpanEvent, Tracer


def span_to_jsonable(event: SpanEvent) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "time": event.time,
        "process": event.process,
        "name": event.name,
        "trace_id": event.trace_id,
        "span_id": event.span_id,
    }
    if event.parent_id is not None:
        record["parent_id"] = event.parent_id
    if event.attrs:
        record["attrs"] = event.attrs
    return record


def span_from_jsonable(record: Dict[str, Any]) -> SpanEvent:
    return SpanEvent(
        time=record["time"],
        process=record["process"],
        name=record["name"],
        trace_id=record["trace_id"],
        span_id=record["span_id"],
        parent_id=record.get("parent_id"),
        attrs=record.get("attrs", {}),
    )


def write_jsonl(
    target: Union[str, IO[str]],
    events: Iterable[SpanEvent],
    metrics: Optional[Dict[str, Any]] = None,
) -> int:
    """Write span events (and an optional metrics snapshot) as JSONL.

    ``target`` is a path or an open text handle. Returns the number of
    records written.
    """
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            return write_jsonl(handle, events, metrics)
    written = 0
    for event in events:
        target.write(json.dumps({"span": span_to_jsonable(event)}) + "\n")
        written += 1
    if metrics is not None:
        target.write(json.dumps({"metrics": metrics}) + "\n")
        written += 1
    return written


def read_jsonl(
    source: Union[str, IO[str]],
) -> Tuple[List[SpanEvent], Optional[Dict[str, Any]]]:
    """Read a telemetry JSONL file back into (events, metrics snapshot)."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_jsonl(handle)
    events: List[SpanEvent] = []
    metrics: Optional[Dict[str, Any]] = None
    for line in source:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if "span" in record:
            events.append(span_from_jsonable(record["span"]))
        elif "metrics" in record:
            metrics = record["metrics"]
        # Unknown record kinds are skipped: the format can grow.
    return events, metrics


# ----------------------------------------------------------------------
# Span-tree assembly
# ----------------------------------------------------------------------
class SpanNode:
    """One span in an assembled tree, with its children in time order."""

    __slots__ = ("event", "children")

    def __init__(self, event: SpanEvent) -> None:
        self.event = event
        self.children: List["SpanNode"] = []

    def walk(self, depth: int = 0) -> Iterable[Tuple[int, SpanEvent]]:
        yield depth, self.event
        for child in self.children:
            for item in child.walk(depth + 1):
                yield item


class TraceTree:
    """The assembled span tree of one trace id."""

    def __init__(
        self,
        trace_id: str,
        roots: List[SpanNode],
        orphans: List[SpanEvent],
    ) -> None:
        self.trace_id = trace_id
        self.roots = roots
        #: Spans whose parent_id names a span absent from this trace.
        self.orphans = orphans

    @property
    def complete(self) -> bool:
        """True when every span hangs off a root (no orphans)."""
        return not self.orphans

    def walk(self) -> Iterable[Tuple[int, SpanEvent]]:
        for root in self.roots:
            for item in root.walk():
                yield item

    def span_names(self) -> List[str]:
        return [event.name for _depth, event in self.walk()]

    def __len__(self) -> int:
        return sum(1 for _ in self.walk()) + len(self.orphans)


def build_trace_trees(
    events: Iterable[SpanEvent],
) -> Dict[str, TraceTree]:
    """Group a flat event list into per-trace span trees.

    Within a trace, spans with ``parent_id=None`` are roots; every other
    span attaches to the span whose ``span_id`` matches its
    ``parent_id``. Spans pointing at a missing parent are collected as
    orphans. Insertion order (arrival order) is preserved throughout, so
    sim runs produce deterministic trees.
    """
    by_trace: Dict[str, List[SpanEvent]] = {}
    for event in events:
        by_trace.setdefault(event.trace_id, []).append(event)
    trees: Dict[str, TraceTree] = {}
    for trace_id, trace_events in by_trace.items():
        nodes: Dict[str, SpanNode] = {}
        ordered: List[SpanNode] = []
        for event in trace_events:
            node = SpanNode(event)
            # Last writer wins on span-id collisions; collisions do not
            # occur in well-formed traces (span ids are unique per trace).
            nodes[event.span_id] = node
            ordered.append(node)
        roots: List[SpanNode] = []
        orphans: List[SpanEvent] = []
        for node in ordered:
            parent_id = node.event.parent_id
            if parent_id is None:
                roots.append(node)
            elif parent_id in nodes:
                nodes[parent_id].children.append(node)
            else:
                orphans.append(node.event)
        trees[trace_id] = TraceTree(trace_id, roots, orphans)
    return trees


def orphan_spans(events: Iterable[SpanEvent]) -> List[SpanEvent]:
    """All spans across all traces whose parent span is missing."""
    result: List[SpanEvent] = []
    for tree in build_trace_trees(events).values():
        result.extend(tree.orphans)
    return result


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_timeline(
    events: Iterable[SpanEvent],
    *,
    limit: Optional[int] = None,
) -> str:
    """A per-op span timeline: one indented block per trace.

    Times are shown relative to each trace's first span, so sim-time and
    wall-clock traces render the same way.
    """
    trees = build_trace_trees(events)
    lines: List[str] = []
    shown = 0
    for trace_id, tree in trees.items():
        if limit is not None and shown >= limit:
            lines.append(f"... ({len(trees) - shown} more traces)")
            break
        shown += 1
        walked = list(tree.walk())
        start = min(
            (event.time for _depth, event in walked), default=0.0
        )
        lines.append(f"trace {trace_id}")
        for depth, event in walked:
            indent = "  " * (depth + 1)
            attrs = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(event.attrs.items()))
                if event.attrs
                else ""
            )
            lines.append(
                f"{indent}+{event.time - start:9.3f}  {event.name:<16} "
                f"p{event.process}{attrs}"
            )
        for event in tree.orphans:
            lines.append(
                f"  !ORPHAN +{event.time - start:9.3f}  {event.name} "
                f"p{event.process} (parent {event.parent_id} missing)"
            )
    return "\n".join(lines)


def render_metrics_summary(metrics: Dict[str, Any]) -> str:
    """A compact text summary of a metrics snapshot."""
    lines: List[str] = []
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<48} {value:g}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<48} {value:g}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, stats in sorted(histograms.items()):
            lines.append(
                f"  {name:<48} n={stats['count']:g} mean={stats['mean']:.4g} "
                f"p50={stats['p50']:.4g} p95={stats['p95']:.4g} "
                f"max={stats['max'] if stats['max'] is not None else 0:.4g}"
            )
    return "\n".join(lines)


def export_tracer(
    tracer: Tracer,
    target: Union[str, IO[str]],
    metrics: Optional[Dict[str, Any]] = None,
) -> int:
    """Dump a tracer's events (plus optional metrics snapshot) to JSONL."""
    return write_jsonl(target, tracer, metrics)
