"""The library's exception hierarchy.

Every error the public API raises derives from :class:`ReproError`, so
callers can catch one base class at an experiment boundary. Errors that
used to live next to their raise sites (``UnknownOperationError`` in
:mod:`repro.datatypes.base`) are defined here and re-exported from their
historical homes for compatibility.
"""

from __future__ import annotations

from typing import Any, List, Sequence


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class UnknownOperationError(ReproError, ValueError):
    """Raised when a data type is asked to execute an operation it lacks."""


class SessionProtocolError(ReproError, RuntimeError):
    """Raised when a session's well-formedness is violated.

    The paper's histories are *well-formed* (Section 3.2): within a session
    a new operation may be invoked only after the previous one returned.
    :meth:`repro.core.session.Session.call` enforces this at the API level.
    """


class PendingResponseError(ReproError, RuntimeError):
    """Raised when reading the value of an operation that has not returned.

    The paper writes ∇ for the "return value" of a pending operation; use
    :attr:`repro.core.session.OpFuture.rval` to observe that sentinel
    instead of raising.
    """


class ReplicaUnavailableError(ReproError, RuntimeError):
    """Raised when an operation is invoked on a crashed replica.

    A crashed replica "ceases all communication" — a real client could not
    reach it, so the harness refuses the invocation instead of silently
    executing it on a process that is supposed to be dead. Re-issue the
    operation after the replica recovers (or against a survivor).
    """


class CrossShardError(ReproError, RuntimeError):
    """Raised when an operation cannot be routed across shards.

    A multi-key operation whose keys live on different shards needs a
    cross-shard plan (a prepare/commit decomposition declared by its data
    type) and must be issued *strongly* — each staged sub-operation goes
    through its owner shard's TOB so the paper's strong/weak split
    survives sharding. Weak multi-shard operations and multi-key
    operations without a plan are refused at the router.
    """


class MigrationError(ReproError, RuntimeError):
    """Raised when a live resharding step cannot start or proceed.

    Examples: splitting a retired shard, migrating an unkeyed data type
    (no per-key register groups to hand over), or starting a second
    migration on a shard whose previous one has not activated yet.
    """


class MigrationStrandedError(MigrationError):
    """A live migration lost an endpoint and can never complete.

    Raised semantics, not raised control flow: when every replica of a
    migration endpoint crash-*stops* between the epoch barrier and the
    epoch activation, the handoff is permanently wedged — the barrier
    committed (or the install will never commit) and no replica remains
    to drive the protocol forward. The deployment detects this at crash
    time, marks the migration ``stranded`` (releasing ``converged()``
    and the one-migration-per-shard slot instead of wedging them
    forever), and surfaces an instance of this error in
    ``ShardedRunResult.checks["migrations"]`` so scenario assertions see
    a named failure rather than a hang.
    """

    def __init__(self, message: str, *, migration: Any = None):
        super().__init__(message)
        #: The stranded :class:`~repro.shard.migration.Migration`.
        self.migration = migration


class MigrationInProgress(ReproError, RuntimeError):
    """Raised when an operation's keys are mid-handoff between shards.

    Between the source shard's epoch barrier and the new epoch's
    activation, the moving keys' committed snapshot is frozen; accepting
    new operations for them at the source would silently lose the
    updates at the destination. Routers catch this internally and retry
    the submission when the migration completes (the *retry path*) —
    clients only observe extra latency, never a refusal.
    """

    def __init__(self, message: str, *, migration: Any = None, key: Any = None):
        super().__init__(message)
        #: The in-flight :class:`~repro.shard.migration.Migration`;
        #: register a retry with ``migration.when_complete(callback)``.
        self.migration = migration
        #: The key whose handoff blocked the submission.
        self.key = key


class DivergedOrderError(ReproError, AssertionError):
    """Raised when replicas disagree on the total-order-broadcast prefix.

    TOB guarantees that all replicas deliver the same sequence; if two
    replicas ever report incomparable delivered sequences, the run is not a
    Bayou execution at all and every downstream check would be meaningless.
    The message pinpoints the first index at which the sequences diverge.
    """

    def __init__(
        self, message: str, *, index: int = -1, sequences: Sequence[Any] = ()
    ) -> None:
        super().__init__(message)
        #: First position at which the two sequences disagree.
        self.index = index
        #: The two conflicting delivered sequences.
        self.sequences = tuple(sequences)

    @classmethod
    def from_sequences(
        cls, observed: Sequence[Any], reference: Sequence[Any]
    ) -> "DivergedOrderError":
        """Build the error with a readable diff of the two sequences."""
        index = _first_divergence(observed, reference)
        lines: List[str] = [
            "TOB delivered inconsistent orders "
            f"(first divergence at index {index}):",
            "  " + _render_sequence(observed, index),
            "  " + _render_sequence(reference, index),
        ]
        return cls("\n".join(lines), index=index, sequences=(observed, reference))


def _first_divergence(a: Sequence[Any], b: Sequence[Any]) -> int:
    """The first index where the sequences differ (one may be a prefix)."""
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            return index
    return min(len(a), len(b))


def _render_sequence(sequence: Sequence[Any], index: int, context: int = 3) -> str:
    """Render a sequence with the diverging element bracketed."""
    start = max(0, index - context)
    end = min(len(sequence), index + context + 1)
    parts: List[str] = ["..."] if start > 0 else []
    for position in range(start, end):
        rendered = repr(sequence[position])
        parts.append(f">>{rendered}<<" if position == index else rendered)
    if index >= len(sequence):
        parts.append(">>∅ (sequence ends)<<")
    if end < len(sequence):
        parts.append("...")
    return " ".join(parts)
