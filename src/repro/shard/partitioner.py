"""Keyspace partitioning: deterministic key → shard placement.

A :class:`ShardMap` assigns every key of a keyed data type to exactly one
shard (one independent Bayou cluster). Placement must be a pure function
of ``(seed, partitioner, n_shards)`` — the simulation's determinism
guarantee extends to routing, so the same scenario replayed under the
same seed sends every operation to the same shard.

Two partitioners ship:

- :class:`HashPartitioner` — keys are hashed with a *stable* digest
  (SHA-256 over the seed and the key's repr; Python's builtin ``hash`` is
  salted per process and would break cross-run determinism) and placed
  modulo the shard count. Uniform keys spread uniformly.
- :class:`RangePartitioner` — sorted split points divide the (ordered)
  key universe into contiguous **half-open** ranges ``[lo, hi)``: a key
  equal to a boundary belongs to the range *above* it. Range scans stay
  shard-local; skewed key traffic shows up as shard hotspots, which E12
  measures.

Placement is *versioned*: a deployment's live map is the newest link of
a :class:`VersionedShardMap` chain. Epoch 0 is the base :class:`ShardMap`;
every live resharding step (:mod:`repro.shard.migration`) appends an
immutable :class:`EpochShardMap` snapshot — the parent map plus one
:class:`Reassignment` delta ("these keys leave shard *src* for shard
*dst*"). Old epochs stay queryable, which is what lets stale-routed
submissions be *forwarded* instead of refused.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, List, Optional, Sequence, Tuple


class Partitioner:
    """Maps a key to a shard index in ``[0, n_shards)``."""

    def owner(self, key: Hashable, n_shards: int) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        """A short human-readable tag for reports."""
        return type(self).__name__


class HashPartitioner(Partitioner):
    """Stable-hash placement: ``sha256(seed:repr(key)) mod n_shards``."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def owner(self, key: Hashable, n_shards: int) -> int:
        digest = hashlib.sha256(
            f"{self.seed}:{key!r}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") % n_shards

    def describe(self) -> str:
        return f"hash(seed={self.seed})"


class RangePartitioner(Partitioner):
    """Contiguous-range placement over an ordered key universe.

    ``boundaries`` are the sorted upper split points: shard 0 owns keys
    strictly below ``boundaries[0]``, shard ``i`` the keys in
    ``[boundaries[i-1], boundaries[i])``, and the last shard everything
    from the final boundary up. The ranges are **half-open**: a key
    *equal* to a boundary always routes to the shard above it (the
    boundary is that range's inclusive lower bound), so every key —
    boundary values included — has exactly one deterministic owner. With
    ``n_shards`` shards at most ``n_shards - 1`` boundaries are
    meaningful; surplus boundaries are rejected here as well as at
    :class:`ShardMap` construction (silently clamping them onto the last
    shard would alias two documented ranges, making boundary keys route
    somewhere the convention does not predict).
    """

    def __init__(self, boundaries: Sequence[Any]) -> None:
        ordered = list(boundaries)
        if ordered != sorted(ordered):
            raise ValueError(f"range boundaries must be sorted, got {ordered!r}")
        if len(set(map(repr, ordered))) != len(ordered):
            raise ValueError(f"range boundaries must be distinct, got {ordered!r}")
        self.boundaries: List[Any] = ordered

    def owner(self, key: Hashable, n_shards: int) -> int:
        # bisect_right implements the half-open convention: for
        # key == boundaries[i] it returns i + 1 — the boundary belongs
        # to the upper range.
        index = bisect_right(self.boundaries, key)
        if index >= n_shards:
            raise ValueError(
                f"key {key!r} falls in range {index} but only {n_shards} "
                f"shards exist; {len(self.boundaries)} boundaries define "
                f"{len(self.boundaries) + 1} ranges"
            )
        return index

    def describe(self) -> str:
        return f"range({self.boundaries!r})"


class ShardMap:
    """The key → shard placement of one sharded deployment.

    Wraps a :class:`Partitioner` with the deployment's shard count plus
    the routing conventions shared by every caller:

    - *unkeyed* operations (``DataType.keys_of`` returns ``()``) live on
      the **home shard** (shard 0) — an unkeyed type's whole state is one
      unit and cannot be split;
    - multi-key operations map to the *set* of owner shards; one owner
      means the operation is shard-local (and atomic there), several mean
      it needs a cross-shard plan.
    """

    HOME_SHARD = 0

    #: Placement version. The base map is epoch 0; derived
    #: :class:`EpochShardMap` snapshots count up from it.
    epoch = 0

    def __init__(
        self, n_shards: int, partitioner: Optional[Partitioner] = None
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if (
            isinstance(partitioner, RangePartitioner)
            and len(partitioner.boundaries) >= n_shards
        ):
            raise ValueError(
                f"{len(partitioner.boundaries)} range boundaries define "
                f"{len(partitioner.boundaries) + 1} ranges but the "
                f"deployment has only {n_shards} shards"
            )
        self.n_shards = n_shards
        self.partitioner = partitioner if partitioner is not None else HashPartitioner()

    def owner(self, key: Hashable) -> int:
        """The shard owning ``key``."""
        shard = self.partitioner.owner(key, self.n_shards)
        if not (0 <= shard < self.n_shards):
            raise ValueError(
                f"partitioner placed key {key!r} on shard {shard} "
                f"(valid: 0..{self.n_shards - 1})"
            )
        return shard

    def owners(self, keys: Iterable[Hashable]) -> Tuple[int, ...]:
        """The distinct owner shards of ``keys``, in first-seen order."""
        seen: List[int] = []
        for key in keys:
            shard = self.owner(key)
            if shard not in seen:
                seen.append(shard)
        return tuple(seen)

    def placement(self, keys: Iterable[Hashable]) -> Tuple[Tuple[Any, int], ...]:
        """``(key, owner)`` pairs — the routing table over a key universe."""
        return tuple((key, self.owner(key)) for key in keys)

    def describe(self) -> str:
        return f"{self.n_shards} shards, {self.partitioner.describe()}"


@dataclass(frozen=True)
class Reassignment:
    """One epoch's placement delta: some of ``src``'s keys move to ``dst``.

    The delta is pure *data* (kind plus scalar parameters) — never a
    callable — so the epoch chain can be persisted to a
    :class:`~repro.core.durability.DurableStore` and replayed at
    recovery to rebuild routing. Three kinds exist:

    - ``"split"`` — half of ``src``'s keys (selected by a stable salted
      SHA-256 bit, like :class:`HashPartitioner` placement) move to the
      freshly spawned ``dst``;
    - ``"merge"`` — *all* of ``src``'s keys move to ``dst``; ``src`` is
      retired once the epoch activates;
    - ``"move"`` — ``src``'s keys inside the half-open range
      ``[params[0], params[1])`` move to ``dst`` (same convention as
      :class:`RangePartitioner`: a key equal to the upper bound stays).
    """

    kind: str
    src: int
    dst: int
    #: Kind-specific parameters (JSON-able scalars only).
    params: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("split", "merge", "move"):
            raise ValueError(f"unknown reassignment kind {self.kind!r}")
        if self.src == self.dst:
            raise ValueError(
                f"reassignment src and dst must differ, got shard {self.src}"
            )

    def moves(self, key: Hashable, owner: int) -> bool:
        """Whether ``key`` (owned by ``owner`` in the parent epoch) moves."""
        if owner != self.src:
            return False
        if self.kind == "merge":
            return True
        if self.kind == "move":
            lo, hi = self.params
            return lo <= key < hi
        salt = self.params[0]
        digest = hashlib.sha256(f"{salt}:{key!r}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % 2 == 1

    def describe(self) -> str:
        if self.kind == "move":
            lo, hi = self.params
            return f"move [{lo!r}, {hi!r}) {self.src}->{self.dst}"
        return f"{self.kind} {self.src}->{self.dst}"


class EpochShardMap(ShardMap):
    """An immutable epoch snapshot: a parent map plus one reassignment.

    Built by :meth:`VersionedShardMap.advance`, never mutated. Lookups
    recurse into the parent: ``owner(key)`` is the parent's owner unless
    the reassignment moves the key. The chain is short in practice (one
    link per resharding step), so recursion depth is not a concern.
    """

    def __init__(
        self, parent: ShardMap, reassignment: Reassignment, n_shards: int
    ) -> None:
        if not 0 <= reassignment.src < parent.n_shards:
            raise ValueError(
                f"reassignment source shard {reassignment.src} does not "
                f"exist in the parent epoch ({parent.n_shards} shards)"
            )
        if not 0 <= reassignment.dst < n_shards:
            raise ValueError(
                f"reassignment destination shard {reassignment.dst} is out "
                f"of range (deployment has {n_shards} shard slots)"
            )
        self.n_shards = n_shards
        self.partitioner = parent.partitioner
        self.parent = parent
        self.reassignment = reassignment
        self.epoch = parent.epoch + 1

    def owner(self, key: Hashable) -> int:
        base = self.parent.owner(key)
        if self.reassignment.moves(key, base):
            return self.reassignment.dst
        return base

    def describe(self) -> str:
        return (
            f"epoch {self.epoch} ({self.reassignment.describe()}) over "
            f"{self.parent.describe()}"
        )


class VersionedShardMap:
    """The epoch chain of one deployment's placement.

    Every epoch is an immutable snapshot; :meth:`advance` appends a new
    one derived from the current head. Routers read :attr:`current`;
    forwarding logic may consult any older epoch via :meth:`at`.
    """

    def __init__(self, base: ShardMap) -> None:
        self._epochs: List[ShardMap] = [base]

    @property
    def epoch(self) -> int:
        """The current (newest) epoch number."""
        return len(self._epochs) - 1

    @property
    def current(self) -> ShardMap:
        return self._epochs[-1]

    def at(self, epoch: int) -> ShardMap:
        """The immutable snapshot of one epoch (0 = the base map)."""
        return self._epochs[epoch]

    def advance(
        self, reassignment: Reassignment, *, n_shards: Optional[int] = None
    ) -> ShardMap:
        """Append (and return) the next epoch's snapshot.

        ``n_shards`` is the deployment's shard-slot count after the step
        (a split spawns a slot; merges and moves keep the count).
        """
        slots = n_shards if n_shards is not None else self.current.n_shards
        derived = EpochShardMap(self.current, reassignment, slots)
        self._epochs.append(derived)
        return derived

    def owner(self, key: Hashable, *, epoch: Optional[int] = None) -> int:
        """``key``'s owner under one epoch (default: the current one)."""
        chosen = self.current if epoch is None else self._epochs[epoch]
        return chosen.owner(key)

    def chain(self) -> Tuple[Reassignment, ...]:
        """The reassignment deltas, oldest first (epochs 1..n)."""
        return tuple(
            snapshot.reassignment
            for snapshot in self._epochs[1:]
            if isinstance(snapshot, EpochShardMap)
        )

    def describe(self) -> str:
        return self.current.describe()
