"""Keyspace partitioning: deterministic key → shard placement.

A :class:`ShardMap` assigns every key of a keyed data type to exactly one
shard (one independent Bayou cluster). Placement must be a pure function
of ``(seed, partitioner, n_shards)`` — the simulation's determinism
guarantee extends to routing, so the same scenario replayed under the
same seed sends every operation to the same shard.

Two partitioners ship:

- :class:`HashPartitioner` — keys are hashed with a *stable* digest
  (SHA-256 over the seed and the key's repr; Python's builtin ``hash`` is
  salted per process and would break cross-run determinism) and placed
  modulo the shard count. Uniform keys spread uniformly.
- :class:`RangePartitioner` — sorted split points divide the (ordered)
  key universe into contiguous ranges, shard ``i`` owning the keys below
  boundary ``i``. Range scans stay shard-local; skewed key traffic shows
  up as shard hotspots, which E12 measures.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any, Hashable, Iterable, List, Optional, Sequence, Tuple


class Partitioner:
    """Maps a key to a shard index in ``[0, n_shards)``."""

    def owner(self, key: Hashable, n_shards: int) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        """A short human-readable tag for reports."""
        return type(self).__name__


class HashPartitioner(Partitioner):
    """Stable-hash placement: ``sha256(seed:repr(key)) mod n_shards``."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def owner(self, key: Hashable, n_shards: int) -> int:
        digest = hashlib.sha256(
            f"{self.seed}:{key!r}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") % n_shards

    def describe(self) -> str:
        return f"hash(seed={self.seed})"


class RangePartitioner(Partitioner):
    """Contiguous-range placement over an ordered key universe.

    ``boundaries`` are the sorted upper split points: shard 0 owns keys
    strictly below ``boundaries[0]``, shard ``i`` the keys in
    ``[boundaries[i-1], boundaries[i])``, and the last shard everything
    from the final boundary up. With ``n_shards`` shards exactly
    ``n_shards - 1`` boundaries are consulted; surplus boundaries are an
    error caught at :class:`ShardMap` construction.
    """

    def __init__(self, boundaries: Sequence[Any]) -> None:
        ordered = list(boundaries)
        if ordered != sorted(ordered):
            raise ValueError(f"range boundaries must be sorted, got {ordered!r}")
        if len(set(map(repr, ordered))) != len(ordered):
            raise ValueError(f"range boundaries must be distinct, got {ordered!r}")
        self.boundaries: List[Any] = ordered

    def owner(self, key: Hashable, n_shards: int) -> int:
        index = bisect_right(self.boundaries, key)
        return min(index, n_shards - 1)

    def describe(self) -> str:
        return f"range({self.boundaries!r})"


class ShardMap:
    """The key → shard placement of one sharded deployment.

    Wraps a :class:`Partitioner` with the deployment's shard count plus
    the routing conventions shared by every caller:

    - *unkeyed* operations (``DataType.keys_of`` returns ``()``) live on
      the **home shard** (shard 0) — an unkeyed type's whole state is one
      unit and cannot be split;
    - multi-key operations map to the *set* of owner shards; one owner
      means the operation is shard-local (and atomic there), several mean
      it needs a cross-shard plan.
    """

    HOME_SHARD = 0

    def __init__(
        self, n_shards: int, partitioner: Optional[Partitioner] = None
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if (
            isinstance(partitioner, RangePartitioner)
            and len(partitioner.boundaries) >= n_shards
        ):
            raise ValueError(
                f"{len(partitioner.boundaries)} range boundaries define "
                f"{len(partitioner.boundaries) + 1} ranges but the "
                f"deployment has only {n_shards} shards"
            )
        self.n_shards = n_shards
        self.partitioner = partitioner if partitioner is not None else HashPartitioner()

    def owner(self, key: Hashable) -> int:
        """The shard owning ``key``."""
        shard = self.partitioner.owner(key, self.n_shards)
        if not (0 <= shard < self.n_shards):
            raise ValueError(
                f"partitioner placed key {key!r} on shard {shard} "
                f"(valid: 0..{self.n_shards - 1})"
            )
        return shard

    def owners(self, keys: Iterable[Hashable]) -> Tuple[int, ...]:
        """The distinct owner shards of ``keys``, in first-seen order."""
        seen: List[int] = []
        for key in keys:
            shard = self.owner(key)
            if shard not in seen:
                seen.append(shard)
        return tuple(seen)

    def placement(self, keys: Iterable[Hashable]) -> Tuple[Tuple[Any, int], ...]:
        """``(key, owner)`` pairs — the routing table over a key universe."""
        return tuple((key, self.owner(key)) for key in keys)

    def describe(self) -> str:
        return f"{self.n_shards} shards, {self.partitioner.describe()}"
