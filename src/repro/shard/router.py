"""Shard routing: one keyspace-wide client surface over many shards.

The :class:`ShardRouter` hides the shard boundary from clients. It
resolves every typed operation's keys (``DataType.keys_of``) against the
deployment's *current-epoch* :class:`~repro.shard.partitioner.ShardMap`
and

- submits shard-local operations (one owner shard, or unkeyed → home
  shard) directly to the owner's :class:`~repro.core.cluster.BayouCluster`
  — same pipeline, same :class:`~repro.core.session.OpFuture`;
- stages multi-shard *strong* operations through the
  :class:`~repro.shard.coordinator.CrossShardCoordinator`;
- refuses multi-shard *weak* operations and plan-less multi-key types
  with :class:`~repro.errors.CrossShardError` at the call site.

Routing is **route-at-epoch**: every resolved route carries the epoch it
was computed under. A route that went stale while an operation sat in a
session queue (a live resharding bumped the epoch) is *forwarded* —
recomputed against the new epoch at launch, never refused
(:attr:`ShardRouter.forwarded_count` counts shard-changing forwards).
Keys mid-handoff raise :class:`~repro.errors.MigrationInProgress`, which
the router and sessions catch internally: the submission is deferred and
retried at epoch activation (:attr:`ShardRouter.deferred_count`) — the
client only ever sees extra latency.

:class:`ShardedSession` is the closed-loop facade: the same well-formed,
one-outstanding-operation discipline as :class:`~repro.core.session.Session`,
but each queued operation runs on whichever shard owns its keys. It
duck-types the cluster surface :class:`~repro.analysis.workload.RandomWorkload`
expects, so random keyed workloads drive sharded deployments unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Hashable, List, Optional, TYPE_CHECKING, Tuple

from repro.core.session import OpFuture, resolve_operation
from repro.datatypes.base import Operation
from repro.errors import CrossShardError, MigrationInProgress
from repro.shard.coordinator import CrossShardCoordinator, CrossShardFuture
from repro.shard.deployment import ShardedCluster

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.control.stats import ShardStats


class ShardRouter:
    """Routes operations of one keyspace onto their owner shards."""

    def __init__(self, deployment: ShardedCluster) -> None:
        self.deployment = deployment
        self.datatype = deployment.datatype
        #: The deployment's shared telemetry plane (None when unarmed).
        #: Route spans land on the owner shard's scoped trace — the same
        #: "S1:d0.3" trace the shard's own protocol spans use.
        self.telemetry = deployment.telemetry
        self._scopes: Dict[int, Any] = {}
        if self.telemetry is not None:
            self._m_routed: Dict[int, Any] = {}
            self._m_forwarded = self.telemetry.counter("repro_routes_forwarded")
            self._m_deferred = self.telemetry.counter("repro_routes_deferred")
        self.coordinator = CrossShardCoordinator(self)
        #: Operations routed per shard (for skew/placement reports);
        #: grows when a split spawns a shard.
        self.routed_counts: List[int] = [0] * deployment.n_shards
        #: Stale-epoch routes whose recomputation changed the owner shard
        #: (the operation was *forwarded* to the new owner, not refused).
        self.forwarded_count = 0
        #: Submissions deferred by an in-flight migration and retried at
        #: epoch activation.
        self.deferred_count = 0
        #: Open-loop futures whose deferred retry found the operation had
        #: *become* an invalid cross-shard request under the new epoch (a
        #: weak multi-key op whose keys the resharding separated). They
        #: stay pending forever — the keyspace-level analogue of a
        #: session's refused list.
        self.refused_futures: List[OpFuture] = []
        #: Optional metrics sink (the placement controller's eyes); when
        #: attached, every routed/deferred op and weak-op staleness
        #: sample is exported. None by default — plain deployments pay
        #: nothing for the control plane they don't run.
        self.stats: Optional["ShardStats"] = None

    def attach_stats(self, stats: "ShardStats") -> None:
        """Export routing metrics into ``stats`` from now on."""
        stats.ensure_shards(self.deployment.n_shards)
        self.stats = stats

    # -- cluster-surface compatibility (RandomWorkload, sessions) -------
    @property
    def sim(self):
        return self.deployment.sim

    @property
    def config(self):
        return self.deployment.config

    # -- placement surface ----------------------------------------------
    @property
    def shard_map(self):
        """The current-epoch placement snapshot (live; never cached)."""
        return self.deployment.shard_map

    @property
    def epoch(self) -> int:
        return self.deployment.epoch

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _count_routed(self, shard: int, op: Optional[Operation] = None) -> None:
        while len(self.routed_counts) < self.deployment.n_shards:
            self.routed_counts.append(0)
        self.routed_counts[shard] += 1
        if self.stats is not None:
            # The stats sink owns these instruments (it shares the
            # telemetry registry when both planes are armed) — counting
            # here too would double every routed op.
            keys = self.datatype.keys_of(op) if op is not None else ()
            self.stats.record_op(shard, keys)
        elif self.telemetry:
            counter = self._m_routed.get(shard)
            if counter is None:
                counter = self._m_routed[shard] = self.telemetry.counter(
                    "repro_ops_routed", shard=f"S{shard}"
                )
            counter.inc()

    def _count_deferred(self, migration) -> None:
        self.deferred_count += 1
        migration.deferred_ops += 1
        if self.stats is not None:
            self.stats.record_deferred()
        elif self.telemetry:
            self._m_deferred.inc()

    def _shard_scope(self, shard: int):
        scope = self._scopes.get(shard)
        if scope is None:
            scope = self._scopes[shard] = self.telemetry.scoped(f"S{shard}")
        return scope

    def _submit_routed(
        self,
        shard: int,
        pid: int,
        op: Operation,
        *,
        strong: bool,
        future: Optional[OpFuture] = None,
    ) -> OpFuture:
        """Count, submit to the owner shard, and record the route span.

        The span is recorded *after* the shard accepted the submission —
        only then does the op have a dot, hence a trace to attach to.
        """
        self._count_routed(shard, op)
        result = self.deployment.shards[shard].submit(
            pid, op, strong=strong, future=future
        )
        if self.telemetry and result.dot is not None:
            self._shard_scope(shard).op_span(
                self.sim.now,
                pid,
                "route",
                result.dot,
                "route",
                "root",
                shard=shard,
                epoch=self.epoch,
            )
        return result

    def _check_migration(self, key: Hashable, owner: int) -> None:
        """Raise :class:`MigrationInProgress` if ``key`` is mid-handoff."""
        migration = self.deployment.active_migrations.get(owner)
        if migration is not None and migration.moves_key(key, owner):
            raise MigrationInProgress(
                f"key {key!r} is mid-handoff "
                f"({migration.describe()}); the submission is deferred "
                "until the new epoch activates",
                migration=migration,
                key=key,
            )

    def resolve_owner(self, key: Hashable) -> int:
        """``key``'s owner shard under the current epoch.

        Raises :class:`MigrationInProgress` while the key is mid-handoff
        — the single chokepoint the coordinator's staged sub-operations
        share with whole-operation routing.
        """
        owner = self.shard_map.owner(key)
        if self.deployment.active_migrations:
            self._check_migration(key, owner)
        return owner

    def owners_of(self, op: Operation) -> Tuple[int, ...]:
        """The owner shards of ``op`` (home shard for unkeyed types)."""
        keys = self.datatype.keys_of(op)
        if not keys:
            return (self.shard_map.HOME_SHARD,)
        return self.shard_map.owners(keys)

    def plan_route(self, op: Operation, *, strong: bool):
        """Resolve ``op`` to ``(shard, plan)``: exactly one is not None.

        Raises :class:`CrossShardError` for invalid multi-shard requests,
        so misrouted operations fail at the call site — before anything
        was staged anywhere — and :class:`MigrationInProgress` while any
        of the operation's keys is mid-handoff (callers defer and retry).

        Single-pass on the hot path: each key is extracted and
        owner-hashed exactly once, and the migration check reuses the
        owner just computed.
        """
        keys = self.datatype.keys_of(op)
        if not keys:
            # Unkeyed types live wholly on the home shard and have no
            # per-key registers, so they can never be mid-migration.
            return self.shard_map.HOME_SHARD, None
        shard_map = self.shard_map
        checking = bool(self.deployment.active_migrations)
        owners: List[int] = []
        for key in keys:
            owner = shard_map.owner(key)
            if checking:
                self._check_migration(key, owner)
            if owner not in owners:
                owners.append(owner)
        if len(owners) == 1:
            return owners[0], None
        if not strong:
            raise CrossShardError(
                f"{op!r} touches shards {sorted(owners)} but was issued "
                "weak; cross-shard operations must be strong (each staged "
                "sub-operation needs a final TOB position on its shard)"
            )
        plan = self.datatype.cross_shard_plan(op)
        if plan is None:
            raise CrossShardError(
                f"{self.datatype.type_name} declares no cross-shard plan "
                f"for {op!r} (keys span shards {sorted(owners)})"
            )
        return None, plan

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        pid: int,
        op: Operation,
        *,
        strong: bool = False,
        future: Optional[OpFuture] = None,
    ) -> OpFuture:
        """Invoke ``op`` right now on whichever shard(s) own its keys.

        ``pid`` is the replica index *inside* the owner shard (every shard
        runs the same replica count, so the index is portable — a client
        "near" replica 1 talks to replica 1 of every shard). If the keys
        are mid-handoff the submission is deferred internally and the
        returned future resolves once the retry lands post-activation.
        """
        try:
            shard, plan = self.plan_route(op, strong=strong)
        except MigrationInProgress as exc:
            return self._defer(pid, op, strong, future, exc)
        if plan is not None:
            if future is not None and not isinstance(future, CrossShardFuture):
                return self._stage_adapted(op, plan, pid=pid, future=future)
            return self.coordinator.stage(op, plan, pid=pid, future=future)
        return self._submit_routed(shard, pid, op, strong=strong, future=future)

    def _defer(
        self,
        pid: int,
        op: Operation,
        strong: bool,
        future: Optional[OpFuture],
        exc: MigrationInProgress,
    ) -> OpFuture:
        """The MigrationInProgress retry path: park, retry at activation."""
        self._count_deferred(exc.migration)
        if future is None:
            future = OpFuture(op, strong=strong, pid=pid)

        def retry() -> None:
            # The retry runs inside the migration's activation callback;
            # an exception here would abort the simulation step and every
            # other parked retry behind it. An op that *became* an
            # invalid cross-shard request under the new epoch is refused
            # quietly instead (sessions handle the same case in
            # _refresh_route).
            try:
                self.submit(pid, op, strong=strong, future=future)
            except CrossShardError:
                self.refused_futures.append(future)

        exc.migration.when_complete(retry)
        return future

    def _stage_adapted(
        self, op: Operation, plan, *, pid: int, future: OpFuture
    ) -> OpFuture:
        """Stage a plan behind a plain :class:`OpFuture`.

        Happens when an epoch bump turned a queued (or deferred)
        operation cross-shard after its future was created: the
        coordinator stages its own :class:`CrossShardFuture` and the
        client's original future mirrors its outcome.
        """
        if future.invoke_time is None:
            future._mark_invoked(None, self.sim.now)
        inner = self.coordinator.stage(op, plan, pid=pid)
        inner.add_done_callback(
            lambda f: future._respond_value(f.rval, self.sim.now)
        )
        inner.add_stable_callback(
            lambda _f: future._mark_stable(self.sim.now)
        )
        return future

    def submit_to_owner(
        self, key: Any, op: Operation, *, strong: bool, pid: int = 0
    ) -> OpFuture:
        """Submit one staged sub-operation directly to ``key``'s shard."""
        shard = self.resolve_owner(key)
        return self._submit_routed(shard, pid, op, strong=strong)

    def connect(
        self, pid: int = 0, *, think_time: float = 0.0, on_response=None
    ) -> "ShardedSession":
        """Open a closed-loop keyspace-wide session (replica index ``pid``)."""
        return ShardedSession(
            self, pid, think_time=think_time, on_response=on_response
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def query(self, op: Operation) -> Any:
        """Execute a read-only ``op`` against the owner shard's replica 0
        converged state (post-run assertions)."""
        from repro.datatypes.base import PlainDb

        shard, plan = self.plan_route(op, strong=True)
        if plan is not None:
            raise CrossShardError(f"cannot query a multi-shard op {op!r}")
        cluster = self.deployment.shards[shard]
        snapshot = PlainDb(cluster.replicas[0].state.snapshot())
        return self.datatype.execute(op, snapshot)


class _StrongShardProxy:
    """``session.strong``: the same bound operations, issued strongly."""

    def __init__(self, session: "ShardedSession") -> None:
        self._session = session

    def __getattr__(self, name: str):
        return self._session._bound_operation(name, strong=True)


class ShardedSession:
    """A sequential client over the whole keyspace.

    Mirrors :class:`~repro.core.session.Session` (closed loop, one
    outstanding operation, typed proxies, think-time pacing); each
    operation is routed to its owner shard at launch. Cross-shard strong
    operations yield a :class:`CrossShardFuture` that responds at the
    plan decision and stabilises with its last staged sub-operation.

    Routes are cached on futures *with the epoch they were computed
    under*: a queued operation whose epoch went stale by launch time is
    re-routed (forwarded) against the live epoch, and one whose keys are
    mid-handoff pauses the session until the migration activates — the
    same pause discipline a crash-recovery window uses.
    """

    def __init__(
        self,
        router: ShardRouter,
        pid: int,
        *,
        think_time: float = 0.0,
        on_response=None,
    ) -> None:
        self.router = router
        self.pid = pid
        self.think_time = think_time
        self.on_response = on_response
        self._queue: Deque[OpFuture] = deque()
        self._outstanding: Optional[OpFuture] = None
        self._pump_scheduled = False
        self._ready_at = 0.0
        self.completed = 0
        self.latencies: List[float] = []
        #: Every future this session ever issued, in submission order.
        self.futures: List[OpFuture] = []
        #: Futures refused because an owner replica crash-stopped, or
        #: because an epoch bump made a queued weak multi-key operation
        #: cross-shard (weak operations may never span shards).
        self.refused: List[OpFuture] = []

    # -- typed proxies ---------------------------------------------------
    @property
    def strong(self) -> _StrongShardProxy:
        return _StrongShardProxy(self)

    def _bound_operation(self, name: str, *, strong: bool):
        constructor = resolve_operation(self.router.datatype, name)

        def bound(*args: Any, strong: bool = strong, **kwargs: Any) -> OpFuture:
            return self.submit(constructor(*args, **kwargs), strong=strong)

        bound.__name__ = name
        bound.__doc__ = constructor.__doc__
        return bound

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return self._bound_operation(name, strong=False)

    # -- submission ------------------------------------------------------
    def submit(self, op: Operation, strong: bool = False) -> OpFuture:
        """Queue an operation; it runs when all earlier ones returned.

        Routing is resolved *now* — invalid cross-shard requests raise at
        the call site — and the resolved route rides on the future,
        stamped with the current epoch. Launch revalidates the stamp: a
        resharding between submit and launch re-routes instead of
        trusting the stale shard (key hashing still happens once per
        operation in the common, epoch-stable case). Keys mid-handoff at
        submit time leave the route unresolved; launch retries them.
        """
        try:
            shard, plan = self.router.plan_route(op, strong=strong)
        except MigrationInProgress:
            future: OpFuture = OpFuture(op, strong=strong, pid=self.pid)
            future._route = None
        else:
            if plan is not None:
                future = CrossShardFuture(op, pid=self.pid)
            else:
                future = OpFuture(op, strong=strong, pid=self.pid)
            future._route = (shard, plan, self.router.epoch)
        future.submit_time = self.router.sim.now
        self._queue.append(future)
        self.futures.append(future)
        self._maybe_schedule_pump()
        return future

    @property
    def idle(self) -> bool:
        return self._outstanding is None and not self._queue

    # -- the pump --------------------------------------------------------
    def _maybe_schedule_pump(self) -> None:
        if (
            self._outstanding is not None
            or self._pump_scheduled
            or not self._queue
        ):
            return
        delay = max(0.0, self._ready_at - self.router.sim.now)
        self._pump_scheduled = True
        self.router.sim.schedule(
            delay, self._pump, label=f"sharded client {self.pid} next"
        )

    def _refresh_route(self, future: OpFuture) -> bool:
        """Ensure the head future's route matches the live epoch.

        Returns True when the future is launchable now. On a stale epoch
        the route is recomputed (a shard-changing recomputation counts as
        a forward); mid-handoff keys pause the session until activation;
        an operation that *became* an invalid cross-shard request is
        refused and the pump moves on.
        """
        route = getattr(future, "_route", None)
        if (
            route is not None
            and route[2] == self.router.epoch
            and not self.router.deployment.active_migrations
        ):
            # Fast path: the epoch is current and no handoff is in
            # flight, so the cached route cannot have gone stale. With a
            # migration staging, the route must be re-validated even at
            # the same epoch — the op's keys may be mid-handoff, and
            # launching them at the source past the snapshot freeze
            # would lose the update.
            return True
        try:
            shard, plan = self.router.plan_route(future.op, strong=future.strong)
        except MigrationInProgress as exc:
            # Count (and register the wake-up) once per migration: every
            # later submission to this session re-pumps and re-lands here
            # for the same parked head, which is the same logical
            # deferral, not a new one.
            if getattr(future, "_parked_on", None) is not exc.migration:
                future._parked_on = exc.migration
                self.router._count_deferred(exc.migration)
                exc.migration.when_complete(self._maybe_schedule_pump)
            return False
        except CrossShardError:
            assert self._queue[0] is future
            self.refused.append(self._queue.popleft())
            self._maybe_schedule_pump()
            return False
        if route is not None and route[0] != shard:
            self.router.forwarded_count += 1
            if self.router.telemetry:
                self.router._m_forwarded.inc()
        future._route = (shard, plan, self.router.epoch)
        return True

    def _crashed_target_node(self, future: OpFuture):
        """The crashed replica a *single-shard* head op targets (or None).

        Cross-shard futures need no pre-check: the coordinator fails over
        to live replicas and defers across whole-shard recoveries itself.
        """
        shard, plan, _epoch = future._route
        if plan is not None:
            return None
        node = self.router.deployment.shards[shard].nodes[self.pid]
        return node if node.crashed else None

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self._outstanding is not None or not self._queue:
            return
        if not self._refresh_route(self._queue[0]):
            return
        node = self._crashed_target_node(self._queue[0])
        if node is not None:
            # Same contract as Session: a crash-recovery outage pauses the
            # session until that replica returns; a crash-stop outage
            # refuses everything still queued.
            if node.crash_mode == "recover":
                node.register_crash_hooks(on_recover=self._maybe_schedule_pump)
                return
            self.refused.extend(self._queue)
            self._queue.clear()
            return
        self._launch(self._queue.popleft())

    def _launch(self, future: OpFuture) -> None:
        self._outstanding = future
        shard, plan, _epoch = future._route
        if plan is not None:
            if isinstance(future, CrossShardFuture):
                self.router.coordinator.stage(
                    future.op, plan, pid=self.pid, future=future
                )
            else:
                # The op became cross-shard after its (plain) future was
                # created: stage behind an adapter.
                self.router._stage_adapted(
                    future.op, plan, pid=self.pid, future=future
                )
        else:
            self.router._submit_routed(
                shard, self.pid, future.op, strong=future.strong, future=future
            )
        # Registered after the submission: the modified protocol responds
        # to weak operations synchronously, in which case this callback
        # fires immediately (``_outstanding`` is already set above).
        future.add_done_callback(self._on_done)

    def _on_done(self, future: OpFuture) -> None:
        if future is not self._outstanding:
            return
        self._outstanding = None
        latency = future.latency
        self.latencies.append(latency)
        self.completed += 1
        self._ready_at = self.router.sim.now + self.think_time
        if self.router.stats is not None and not future.strong:
            # Weak-op staleness: how long the tentative response floated
            # before its final position committed. Sampled at stability
            # so the controller sees the freshness price of its moves.
            future.add_stable_callback(self._record_staleness)
        if self.on_response is not None:
            self.on_response(future.op, future.strong, future.rval, latency)
        self._maybe_schedule_pump()

    def _record_staleness(self, future: OpFuture) -> None:
        if self.router.stats is None:
            return
        if future.stable_time is None or future.response_time is None:
            return
        self.router.stats.record_staleness(
            future.stable_time - future.response_time
        )
