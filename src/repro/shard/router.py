"""Shard routing: one keyspace-wide client surface over many shards.

The :class:`ShardRouter` hides the shard boundary from clients. It
resolves every typed operation's keys (``DataType.keys_of``) against the
deployment's :class:`~repro.shard.partitioner.ShardMap` and

- submits shard-local operations (one owner shard, or unkeyed → home
  shard) directly to the owner's :class:`~repro.core.cluster.BayouCluster`
  — same pipeline, same :class:`~repro.core.session.OpFuture`;
- stages multi-shard *strong* operations through the
  :class:`~repro.shard.coordinator.CrossShardCoordinator`;
- refuses multi-shard *weak* operations and plan-less multi-key types
  with :class:`~repro.errors.CrossShardError` at the call site.

:class:`ShardedSession` is the closed-loop facade: the same well-formed,
one-outstanding-operation discipline as :class:`~repro.core.session.Session`,
but each queued operation runs on whichever shard owns its keys. It
duck-types the cluster surface :class:`~repro.analysis.workload.RandomWorkload`
expects, so random keyed workloads drive sharded deployments unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.core.session import OpFuture, resolve_operation
from repro.datatypes.base import Operation
from repro.errors import CrossShardError
from repro.shard.coordinator import CrossShardCoordinator, CrossShardFuture
from repro.shard.deployment import ShardedCluster


class ShardRouter:
    """Routes operations of one keyspace onto their owner shards."""

    def __init__(self, deployment: ShardedCluster) -> None:
        self.deployment = deployment
        self.datatype = deployment.datatype
        self.shard_map = deployment.shard_map
        self.coordinator = CrossShardCoordinator(self)
        #: Operations routed per shard (for skew/placement reports).
        self.routed_counts: List[int] = [0] * deployment.n_shards

    # -- cluster-surface compatibility (RandomWorkload, sessions) -------
    @property
    def sim(self):
        return self.deployment.sim

    @property
    def config(self):
        return self.deployment.config

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def owners_of(self, op: Operation) -> Tuple[int, ...]:
        """The owner shards of ``op`` (home shard for unkeyed types)."""
        keys = self.datatype.keys_of(op)
        if not keys:
            return (self.shard_map.HOME_SHARD,)
        return self.shard_map.owners(keys)

    def plan_route(self, op: Operation, *, strong: bool):
        """Resolve ``op`` to ``(shard, plan)``: exactly one is not None.

        Raises :class:`CrossShardError` for invalid multi-shard requests,
        so misrouted operations fail at the call site — before anything
        was staged anywhere.
        """
        owners = self.owners_of(op)
        if len(owners) == 1:
            return owners[0], None
        if not strong:
            raise CrossShardError(
                f"{op!r} touches shards {sorted(owners)} but was issued "
                "weak; cross-shard operations must be strong (each staged "
                "sub-operation needs a final TOB position on its shard)"
            )
        plan = self.datatype.cross_shard_plan(op)
        if plan is None:
            raise CrossShardError(
                f"{self.datatype.type_name} declares no cross-shard plan "
                f"for {op!r} (keys span shards {sorted(owners)})"
            )
        return None, plan

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        pid: int,
        op: Operation,
        *,
        strong: bool = False,
        future: Optional[OpFuture] = None,
    ) -> OpFuture:
        """Invoke ``op`` right now on whichever shard(s) own its keys.

        ``pid`` is the replica index *inside* the owner shard (every shard
        runs the same replica count, so the index is portable — a client
        "near" replica 1 talks to replica 1 of every shard).
        """
        shard, plan = self.plan_route(op, strong=strong)
        if plan is not None:
            assert future is None or isinstance(future, CrossShardFuture)
            return self.coordinator.stage(op, plan, pid=pid, future=future)
        self.routed_counts[shard] += 1
        return self.deployment.shards[shard].submit(
            pid, op, strong=strong, future=future
        )

    def submit_to_owner(
        self, key: Any, op: Operation, *, strong: bool, pid: int = 0
    ) -> OpFuture:
        """Submit one staged sub-operation directly to ``key``'s shard."""
        shard = self.shard_map.owner(key)
        self.routed_counts[shard] += 1
        return self.deployment.shards[shard].submit(pid, op, strong=strong)

    def connect(
        self, pid: int = 0, *, think_time: float = 0.0, on_response=None
    ) -> "ShardedSession":
        """Open a closed-loop keyspace-wide session (replica index ``pid``)."""
        return ShardedSession(
            self, pid, think_time=think_time, on_response=on_response
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def query(self, op: Operation) -> Any:
        """Execute a read-only ``op`` against the owner shard's replica 0
        converged state (post-run assertions)."""
        from repro.datatypes.base import PlainDb

        shard, plan = self.plan_route(op, strong=True)
        if plan is not None:
            raise CrossShardError(f"cannot query a multi-shard op {op!r}")
        cluster = self.deployment.shards[shard]
        snapshot = PlainDb(cluster.replicas[0].state.snapshot())
        return self.datatype.execute(op, snapshot)


class _StrongShardProxy:
    """``session.strong``: the same bound operations, issued strongly."""

    def __init__(self, session: "ShardedSession") -> None:
        self._session = session

    def __getattr__(self, name: str):
        return self._session._bound_operation(name, strong=True)


class ShardedSession:
    """A sequential client over the whole keyspace.

    Mirrors :class:`~repro.core.session.Session` (closed loop, one
    outstanding operation, typed proxies, think-time pacing); each
    operation is routed to its owner shard at launch. Cross-shard strong
    operations yield a :class:`CrossShardFuture` that responds at the
    plan decision and stabilises with its last staged sub-operation.
    """

    def __init__(
        self,
        router: ShardRouter,
        pid: int,
        *,
        think_time: float = 0.0,
        on_response=None,
    ) -> None:
        self.router = router
        self.pid = pid
        self.think_time = think_time
        self.on_response = on_response
        self._queue: Deque[OpFuture] = deque()
        self._outstanding: Optional[OpFuture] = None
        self._pump_scheduled = False
        self._ready_at = 0.0
        self.completed = 0
        self.latencies: List[float] = []
        #: Every future this session ever issued, in submission order.
        self.futures: List[OpFuture] = []
        #: Futures refused because an owner replica crash-stopped.
        self.refused: List[OpFuture] = []

    # -- typed proxies ---------------------------------------------------
    @property
    def strong(self) -> _StrongShardProxy:
        return _StrongShardProxy(self)

    def _bound_operation(self, name: str, *, strong: bool):
        constructor = resolve_operation(self.router.datatype, name)

        def bound(*args: Any, strong: bool = strong, **kwargs: Any) -> OpFuture:
            return self.submit(constructor(*args, **kwargs), strong=strong)

        bound.__name__ = name
        bound.__doc__ = constructor.__doc__
        return bound

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return self._bound_operation(name, strong=False)

    # -- submission ------------------------------------------------------
    def submit(self, op: Operation, strong: bool = False) -> OpFuture:
        """Queue an operation; it runs when all earlier ones returned.

        Routing is resolved *now* — invalid cross-shard requests raise at
        the call site, and the resolved route rides on the future (routing
        is deterministic, so launch-time recomputation could never
        disagree; key hashing happens once per operation).
        """
        shard, plan = self.router.plan_route(op, strong=strong)
        if plan is not None:
            future: OpFuture = CrossShardFuture(op, pid=self.pid)
        else:
            future = OpFuture(op, strong=strong, pid=self.pid)
        future._route = (shard, plan)
        self._queue.append(future)
        self.futures.append(future)
        self._maybe_schedule_pump()
        return future

    @property
    def idle(self) -> bool:
        return self._outstanding is None and not self._queue

    # -- the pump --------------------------------------------------------
    def _maybe_schedule_pump(self) -> None:
        if (
            self._outstanding is not None
            or self._pump_scheduled
            or not self._queue
        ):
            return
        delay = max(0.0, self._ready_at - self.router.sim.now)
        self._pump_scheduled = True
        self.router.sim.schedule(
            delay, self._pump, label=f"sharded client {self.pid} next"
        )

    def _crashed_target_node(self, future: OpFuture):
        """The crashed replica a *single-shard* head op targets (or None).

        Cross-shard futures need no pre-check: the coordinator fails over
        to live replicas and defers across whole-shard recoveries itself.
        """
        shard, plan = future._route
        if plan is not None:
            return None
        node = self.router.deployment.shards[shard].nodes[self.pid]
        return node if node.crashed else None

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self._outstanding is not None or not self._queue:
            return
        node = self._crashed_target_node(self._queue[0])
        if node is not None:
            # Same contract as Session: a crash-recovery outage pauses the
            # session until that replica returns; a crash-stop outage
            # refuses everything still queued.
            if node.crash_mode == "recover":
                node.register_crash_hooks(on_recover=self._maybe_schedule_pump)
                return
            self.refused.extend(self._queue)
            self._queue.clear()
            return
        self._launch(self._queue.popleft())

    def _launch(self, future: OpFuture) -> None:
        self._outstanding = future
        shard, plan = future._route
        if plan is not None:
            self.router.coordinator.stage(
                future.op, plan, pid=self.pid, future=future
            )
        else:
            self.router.routed_counts[shard] += 1
            self.router.deployment.shards[shard].submit(
                self.pid, future.op, strong=future.strong, future=future
            )
        # Registered after the submission: the modified protocol responds
        # to weak operations synchronously, in which case this callback
        # fires immediately (``_outstanding`` is already set above).
        future.add_done_callback(self._on_done)

    def _on_done(self, future: OpFuture) -> None:
        if future is not self._outstanding:
            return
        self._outstanding = None
        latency = future.latency
        self.latencies.append(latency)
        self.completed += 1
        self._ready_at = self.router.sim.now + self.think_time
        if self.on_response is not None:
            self.on_response(future.op, future.strong, future.rval, latency)
        self._maybe_schedule_pump()
