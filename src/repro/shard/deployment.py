"""Sharded deployments: N independent Bayou clusters, one simulator.

A :class:`ShardedCluster` runs ``n_shards`` full
:class:`~repro.core.cluster.BayouCluster` stacks — each with its own
network, partition schedule, crash schedule, dissemination substrate and
TOB engine — on one shared :class:`~repro.sim.kernel.Simulator`, so all
shards advance on a single deterministic clock and one
``run_until_quiescent`` drains the whole deployment.

Shards are *independent consensus groups*: shard-local faults (a
partition inside shard 2, a crashed replica of shard 0) never touch the
other shards' histories, which the routing-determinism tests assert.
Cross-shard coupling exists only at the client layer — the
:class:`~repro.shard.router.ShardRouter` and its cross-shard coordinator.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Any, Dict, List, Optional

from repro.core.cluster import ORIGINAL, BayouCluster
from repro.core.config import BayouConfig
from repro.datatypes.base import DataType
from repro.net.faults import CrashSchedule, MessageFilter
from repro.net.partition import PartitionSchedule
from repro.shard.partitioner import Partitioner, ShardMap
from repro.sim.kernel import Simulator


class ShardedCluster:
    """``n_shards`` Bayou clusters over one shared simulator."""

    def __init__(
        self,
        datatype: DataType,
        config: Optional[BayouConfig] = None,
        *,
        n_shards: int,
        partitioner: Optional[Partitioner] = None,
        protocol: str = ORIGINAL,
        partitions: Optional[Dict[int, PartitionSchedule]] = None,
        filters: Optional[Dict[int, MessageFilter]] = None,
        crashes: Optional[Dict[int, CrashSchedule]] = None,
    ) -> None:
        self.datatype = datatype
        self.config = config or BayouConfig()
        self.protocol = protocol
        self.shard_map = ShardMap(n_shards, partitioner)
        self.sim = Simulator()
        self.shards: List[BayouCluster] = []
        for index in range(n_shards):
            self.shards.append(
                BayouCluster(
                    datatype,
                    self._shard_config(index),
                    protocol=protocol,
                    partitions=(partitions or {}).get(index),
                    filters=(filters or {}).get(index),
                    crashes=(crashes or {}).get(index),
                    sim=self.sim,
                    name=f"S{index}",
                )
            )

    @property
    def n_shards(self) -> int:
        return self.shard_map.n_shards

    def _shard_config(self, index: int) -> BayouConfig:
        """This shard's :class:`BayouConfig` — a copy of the deployment's.

        Two fields are specialised per shard: a ``jsonl`` durability root
        (shards must not share one write-ahead directory — node 0 of shard
        0 and node 0 of shard 1 would silently merge their logs) and
        nothing else — identical seeds give identical latency streams in
        every shard, which keeps cross-shard comparisons apples-to-apples.
        """
        config = replace(self.config)
        if config.durability == "jsonl" and config.durability_dir is not None:
            config = replace(
                config,
                durability_dir=os.path.join(
                    config.durability_dir, f"shard{index}"
                ),
            )
        return config

    # ------------------------------------------------------------------
    # Shard access and fault scoping
    # ------------------------------------------------------------------
    def shard(self, index: int) -> BayouCluster:
        """The underlying cluster of one shard."""
        return self.shards[index]

    def owner_of(self, key: Any) -> int:
        """The shard owning ``key`` (deterministic under the seed)."""
        return self.shard_map.owner(key)

    def crash_replica(self, shard: int, pid: int, mode: str = "recover") -> None:
        """Crash replica ``pid`` *of one shard* right now."""
        self.shards[shard].crash_replica(pid, mode)

    def recover_replica(self, shard: int, pid: int) -> None:
        """Recover a crashed replica of one shard."""
        self.shards[shard].recover_replica(pid)

    # ------------------------------------------------------------------
    # Running (mirrors BayouCluster, quantified over every shard)
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def run_until_quiescent(self) -> float:
        return self.sim.run_until_quiescent()

    def run_until_stable(
        self, *, max_time: float = 100_000.0, check_every: float = 50.0
    ) -> bool:
        """Run until *every* shard converged-and-idle (for Paxos engines)."""
        while self.sim.now < max_time:
            self.sim.run(until=self.sim.now + check_every)
            if self.converged() and self.sim.pending_events == 0:
                return True
            if self.converged() and all(
                shard._only_periodic_work_left() for shard in self.shards
            ):
                return True
        return self.converged()

    def shutdown(self) -> None:
        for shard in self.shards:
            shard.shutdown()

    # ------------------------------------------------------------------
    # Convergence
    # ------------------------------------------------------------------
    def converged(self) -> bool:
        """Every shard's live replicas agree (shards are independent, so
        deployment convergence is the conjunction of shard convergence)."""
        return all(shard.converged() for shard in self.shards)

    def convergence_report(self) -> Dict[str, Any]:
        """Aggregate + per-shard convergence diagnostics."""
        per_shard = [shard.convergence_report() for shard in self.shards]
        return {
            "converged": all(report["converged"] for report in per_shard),
            "n_shards": self.n_shards,
            "placement": self.shard_map.describe(),
            "shards": per_shard,
        }
