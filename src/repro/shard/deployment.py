"""Sharded deployments: N independent Bayou clusters, one simulator.

A :class:`ShardedCluster` runs ``n_shards`` full
:class:`~repro.core.cluster.BayouCluster` stacks — each with its own
network, partition schedule, crash schedule, dissemination substrate and
TOB engine — on one shared :class:`~repro.sim.kernel.Simulator`, so all
shards advance on a single deterministic clock and one
``run_until_quiescent`` drains the whole deployment.

Shards are *independent consensus groups*: shard-local faults (a
partition inside shard 2, a crashed replica of shard 0) never touch the
other shards' histories, which the routing-determinism tests assert.
Cross-shard coupling exists only at the client layer — the
:class:`~repro.shard.router.ShardRouter` and its cross-shard coordinator.

Deployments are **elastic**: placement is an epoch-versioned chain
(:class:`~repro.shard.partitioner.VersionedShardMap`), and
:meth:`split` / :meth:`merge` / :meth:`move` run a live
:class:`~repro.shard.migration.Migration` mid-run — spawning a fresh
cluster stack on the shared simulator for a split, retiring one after a
merge — while weak traffic keeps flowing against whichever epoch each
router has observed. When a ``jsonl`` durability root is configured, the
epoch chain is persisted to a deployment-level placement store, so a
:class:`ShardedCluster` rebuilt over the same directory replays the
chain at construction: spawned shards come back (over their own durable
state), merges re-retire, and routing resolves exactly as before the
restart.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.core.cluster import ORIGINAL, BayouCluster
from repro.core.config import BayouConfig
from repro.core.durability import DurableStore, open_store
from repro.datatypes.base import DataType
from repro.errors import MigrationError
from repro.net.faults import CrashSchedule, MessageFilter
from repro.net.partition import PartitionSchedule
from repro.obs import Telemetry
from repro.shard.migration import Migration
from repro.shard.partitioner import (
    Partitioner,
    Reassignment,
    ShardMap,
    VersionedShardMap,
)
from repro.sim.kernel import Simulator

#: Name of the placement store's epoch-chain log.
EPOCH_LOG = "placement.epochs"


class ShardedCluster:
    """``n_shards`` (and, after splits, more) Bayou clusters on one sim."""

    def __init__(
        self,
        datatype: DataType,
        config: Optional[BayouConfig] = None,
        *,
        n_shards: int,
        partitioner: Optional[Partitioner] = None,
        protocol: str = ORIGINAL,
        partitions: Optional[Dict[int, PartitionSchedule]] = None,
        filters: Optional[Dict[int, MessageFilter]] = None,
        crashes: Optional[Dict[int, CrashSchedule]] = None,
    ) -> None:
        self.datatype = datatype
        self.config = config or BayouConfig()
        self.protocol = protocol
        #: One telemetry plane for the whole deployment: every shard's
        #: cluster records into it through a scope named after the shard
        #: ("S1:" trace-id prefixes, ``shard`` labels), so dot collisions
        #: across shards (each has a replica 0 minting ``(0, 1)``) never
        #: merge two ops' traces.
        self.telemetry = (
            Telemetry(trace_capacity=self.config.trace_capacity)
            if self.config.enable_telemetry
            else None
        )
        #: The epoch-versioned placement chain (epoch 0 = the base map).
        self.shard_maps = VersionedShardMap(ShardMap(n_shards, partitioner))
        self.sim = Simulator()
        self.shards: List[BayouCluster] = []
        #: src shard index -> its in-flight :class:`Migration` (at most
        #: one per source; routers consult this to defer moving keys).
        self.active_migrations: Dict[int, Migration] = {}
        #: Every migration ever run, in start order (for reports).
        self.migrations: List[Migration] = []
        #: Migrations permanently wedged by an endpoint losing every
        #: replica to crash-stop (they also stay in ``migrations``).
        self.stranded: List[Migration] = []
        #: Shards retired by a merge: excluded from traffic, probes and
        #: convergence (their logs still drain so in-flight futures
        #: settle, but they own no keys under the active epoch).
        self.retired: Set[int] = set()
        for index in range(n_shards):
            self.shards.append(
                BayouCluster(
                    datatype,
                    self._shard_config(index),
                    protocol=protocol,
                    partitions=(partitions or {}).get(index),
                    filters=(filters or {}).get(index),
                    crashes=(crashes or {}).get(index),
                    sim=self.sim,
                    name=f"S{index}",
                    telemetry=self.telemetry,
                )
            )
        self._placement_store = self._open_placement_store()
        self._replay_epoch_chain()

    @property
    def shard_map(self) -> ShardMap:
        """The *current-epoch* placement snapshot."""
        return self.shard_maps.current

    @property
    def epoch(self) -> int:
        """The active placement epoch."""
        return self.shard_maps.epoch

    @property
    def n_shards(self) -> int:
        """Shard slots, spawned ones included (retired slots count)."""
        return len(self.shards)

    def _shard_config(self, index: int) -> BayouConfig:
        """This shard's :class:`BayouConfig` — a copy of the deployment's.

        Two fields are specialised per shard: a ``jsonl`` durability root
        (shards must not share one write-ahead directory — node 0 of shard
        0 and node 0 of shard 1 would silently merge their logs) and
        nothing else — identical seeds give identical latency streams in
        every shard, which keeps cross-shard comparisons apples-to-apples.
        """
        config = replace(self.config)
        if config.durability == "jsonl" and config.durability_dir is not None:
            config = replace(
                config,
                durability_dir=os.path.join(
                    config.durability_dir, f"shard{index}"
                ),
            )
        return config

    # ------------------------------------------------------------------
    # Shard access and fault scoping
    # ------------------------------------------------------------------
    def shard(self, index: int) -> BayouCluster:
        """The underlying cluster of one shard."""
        return self.shards[index]

    def live_shard_indexes(self) -> List[int]:
        """Shard indexes serving the active epoch (retired excluded)."""
        return [
            index for index in range(len(self.shards))
            if index not in self.retired
        ]

    def owner_of(self, key: Any) -> int:
        """``key``'s owner under the *current* epoch."""
        return self.shard_map.owner(key)

    def crash_replica(self, shard: int, pid: int, mode: str = "recover") -> None:
        """Crash replica ``pid`` *of one shard* right now."""
        self.shards[shard].crash_replica(pid, mode)

    def recover_replica(self, shard: int, pid: int) -> None:
        """Recover a crashed replica of one shard."""
        self.shards[shard].recover_replica(pid)

    # ------------------------------------------------------------------
    # Live resharding (the elastic surface)
    # ------------------------------------------------------------------
    def split(
        self,
        shard: int,
        *,
        pid: int = 0,
        transfer_delay: float = 0.0,
        salt: Optional[str] = None,
    ) -> Migration:
        """Split ``shard``: spawn a fresh shard and hand it half the keys.

        Spawns a full cluster stack on the shared simulator, then runs
        the live-migration protocol: epoch barrier through ``shard``'s
        TOB, frozen committed-prefix snapshot plus tentative-suffix
        handoff to the new shard, and epoch activation. The moving half
        is chosen by a stable salted hash (deterministic under the
        seed); ``salt`` pins it explicitly when a scenario needs a
        reproducible moving set across differently-shaped runs.
        """
        self._check_resharding_endpoints(shard, None)
        if salt is None:
            salt = f"split-epoch{self.shard_maps.epoch + 1}"
        # The Migration constructor performs every fail-fast validation;
        # it runs *before* the destination slot is spawned, so a refused
        # split leaks nothing (the destination index is simply the next
        # slot, which nothing else can claim in between — migrations
        # start synchronously).
        dst = len(self.shards)
        migration = Migration(
            self,
            Reassignment("split", shard, dst, (salt,)),
            pid=pid,
            transfer_delay=transfer_delay,
        )
        migration.spawned_dst = True
        self._spawn_shard()
        return self._start_migration(migration)

    def isolate(
        self,
        key_range: Tuple[Hashable, Hashable],
        *,
        src: Optional[int] = None,
        pid: int = 0,
        transfer_delay: float = 0.0,
    ) -> Migration:
        """Spawn a fresh shard and hand it exactly ``[lo, hi)``.

        A split's surgical sibling: where :meth:`split` halves a shard by
        hash, ``isolate`` carves out a *chosen* range — typically a
        single hot key (see
        :func:`~repro.shard.control.strategy.single_key_range`) — onto a
        freshly spawned cluster stack, leaving everything else where it
        was. This is the :class:`HotKeyIsolation` policy's primitive, but
        it stands alone as a deployment verb.
        """
        lo, hi = key_range
        if src is None:
            src = self.shard_map.owner(lo)
        self._check_resharding_endpoints(src, None)
        dst = len(self.shards)
        migration = Migration(
            self,
            Reassignment("move", src, dst, (lo, hi)),
            pid=pid,
            transfer_delay=transfer_delay,
        )
        migration.spawned_dst = True
        self._spawn_shard()
        return self._start_migration(migration)

    def merge(
        self, dst: int, src: int, *, pid: int = 0, transfer_delay: float = 0.0
    ) -> Migration:
        """Merge shard ``src`` into ``dst``; ``src`` retires at activation."""
        self._check_resharding_endpoints(src, dst)
        return self._start_migration(
            Migration(
                self,
                Reassignment("merge", src, dst, ()),
                pid=pid,
                transfer_delay=transfer_delay,
            )
        )

    def move(
        self,
        key_range: Tuple[Hashable, Hashable],
        dst: int,
        *,
        src: Optional[int] = None,
        pid: int = 0,
        transfer_delay: float = 0.0,
    ) -> Migration:
        """Hand ``src``'s keys inside half-open ``[lo, hi)`` to ``dst``.

        ``src`` defaults to the current owner of ``lo``; only keys the
        source actually owns move (the range is a filter, not a claim
        over other shards' keys).
        """
        lo, hi = key_range
        if src is None:
            src = self.shard_map.owner(lo)
        self._check_resharding_endpoints(src, dst)
        return self._start_migration(
            Migration(
                self,
                Reassignment("move", src, dst, (lo, hi)),
                pid=pid,
                transfer_delay=transfer_delay,
            )
        )

    def static_reassign(self, reassignment: Reassignment) -> None:
        """Apply a placement delta *without* a data handoff.

        For deployments that have executed no traffic yet — baselines of
        the shape "what if the deployment had been born post-split?"
        (E13's fresh-N+1 comparator) and placement tests. Spawns shard
        slots up to the destination index when needed. Using this on a
        deployment with existing state silently strands the moved keys'
        registers on the old owner — live handoffs are what
        :meth:`split` / :meth:`merge` / :meth:`move` are for.
        """
        while reassignment.dst >= len(self.shards):
            self._spawn_shard()
        self._apply_epoch(reassignment, persist=True)

    def _check_resharding_endpoints(self, src: int, dst: Optional[int]) -> None:
        endpoints = [("source", src)] + ([("destination", dst)] if dst is not None else [])
        for role, index in endpoints:
            if not 0 <= index < len(self.shards):
                raise MigrationError(
                    f"{role} shard {index} does not exist "
                    f"(deployment has {len(self.shards)} shard slots)"
                )
            if index in self.retired:
                raise MigrationError(f"{role} shard {index} is retired")
            involved = any(
                migration.src == index or migration.dst == index
                for migration in self.active_migrations.values()
            )
            if involved:
                raise MigrationError(
                    f"{role} shard {index} already has a migration in "
                    "flight; one handoff per shard at a time"
                )
        if dst is not None and src == dst:
            raise MigrationError(f"source and destination are both shard {src}")

    def _spawn_shard(self) -> int:
        """Spawn a fresh cluster stack mid-run; returns its shard index."""
        index = len(self.shards)
        self.shards.append(
            BayouCluster(
                self.datatype,
                self._shard_config(index),
                protocol=self.protocol,
                sim=self.sim,
                name=f"S{index}",
                telemetry=self.telemetry,
            )
        )
        return index

    def _start_migration(self, migration: Migration) -> Migration:
        self.active_migrations[migration.src] = migration
        self.migrations.append(migration)
        try:
            migration.start()
        except Exception:
            # A migration that never staged must leave no trace: an
            # incomplete entry in ``migrations`` would pin converged()
            # to False forever.
            self.active_migrations.pop(migration.src, None)
            self.migrations.remove(migration)
            raise
        return migration

    def _activate_epoch(self, migration: Migration) -> None:
        """Called by the migration once the handoff installed at ``dst``."""
        self._apply_epoch(migration.reassignment, persist=True)
        self.active_migrations.pop(migration.src, None)

    def _strand_migration(self, migration: Migration) -> None:
        """Called by a migration that just detected a dead endpoint.

        The epoch never activates: routing is unchanged and the source
        keeps its keys. The per-source migration slot is released (a
        later migration may retry the handoff with live endpoints), and
        a destination slot that was *spawned for* this migration retires
        — it owns nothing under any epoch, and an all-crashed shard would
        otherwise pin the deployment's convergence to False forever.
        """
        self.active_migrations.pop(migration.src, None)
        self.stranded.append(migration)
        if migration.spawned_dst:
            self.retired.add(migration.dst)

    def _apply_epoch(self, reassignment: Reassignment, *, persist: bool) -> None:
        self.shard_maps.advance(reassignment, n_shards=len(self.shards))
        if reassignment.kind == "merge":
            self.retired.add(reassignment.src)
        if persist and self._placement_store is not None:
            self._placement_store.log(EPOCH_LOG).append(reassignment)

    # ------------------------------------------------------------------
    # Epoch-chain durability
    # ------------------------------------------------------------------
    def _open_placement_store(self) -> Optional[DurableStore]:
        """The deployment-level store holding the epoch chain.

        Only the ``jsonl`` backend with an explicit root survives process
        restarts, so only that configuration gets a placement store; the
        per-replica stores already live under the same root.
        """
        if self.config.durability == "jsonl" and self.config.durability_dir:
            return open_store(
                "jsonl",
                directory=os.path.join(self.config.durability_dir, "placement"),
            )
        return None

    def _replay_epoch_chain(self) -> None:
        """Rebuild routing from a persisted chain (restart recovery).

        Structural replay only: spawned shards are re-created over their
        own durability directories (their replicas reload the migrated
        state — install requests included — from their write-ahead
        logs); no data moves again.
        """
        if self._placement_store is None:
            return
        for record in self._placement_store.log(EPOCH_LOG).records():
            reassignment: Reassignment = record
            while reassignment.dst >= len(self.shards):
                self._spawn_shard()
            self._apply_epoch(reassignment, persist=False)

    # ------------------------------------------------------------------
    # Running (mirrors BayouCluster, quantified over every shard)
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def run_until_quiescent(self) -> float:
        return self.sim.run_until_quiescent()

    def run_until_stable(
        self, *, max_time: float = 100_000.0, check_every: float = 50.0
    ) -> bool:
        """Run until *every* shard converged-and-idle (for Paxos engines)."""
        while self.sim.now < max_time:
            self.sim.run(until=self.sim.now + check_every)
            if self.converged() and self.sim.pending_events == 0:
                return True
            if self.converged() and all(
                shard._only_periodic_work_left() for shard in self.shards
            ):
                return True
        return self.converged()

    def shutdown(self) -> None:
        for shard in self.shards:
            shard.shutdown()

    # ------------------------------------------------------------------
    # Convergence
    # ------------------------------------------------------------------
    def converged(self) -> bool:
        """Every *serving* shard's live replicas agree.

        Retired shards are excluded the way crashed replicas are inside a
        shard: they no longer serve the keyspace, so the deployment's
        convergence quantifies over the shards the active epoch routes to.
        """
        # Stranded migrations are terminal, not pending: they will never
        # complete, and treating them as in-flight would wedge converged()
        # forever (the silent-hang bug this state exists to fix).
        if any(
            not migration.complete and not migration.stranded
            for migration in self.migrations
        ):
            return False
        return all(
            self.shards[index].converged()
            for index in self.live_shard_indexes()
        )

    def convergence_report(self) -> Dict[str, Any]:
        """Aggregate + per-shard convergence diagnostics."""
        per_shard = [shard.convergence_report() for shard in self.shards]
        return {
            "converged": self.converged(),
            "n_shards": self.n_shards,
            "epoch": self.epoch,
            "retired": sorted(self.retired),
            "migrations": [
                migration.describe() for migration in self.migrations
            ],
            "stranded": [
                migration.describe() for migration in self.stranded
            ],
            "placement": self.shard_maps.describe(),
            "shards": per_shard,
        }
