"""Cross-shard strong operations: client-side prepare/commit staging.

A multi-key operation whose keys live on different shards cannot execute
inside a single TOB. The :class:`CrossShardCoordinator` stages it from
the data type's :class:`~repro.datatypes.base.CrossShardPlan` instead:

1. every *prepare* sub-operation (the guarded steps — e.g. a transfer's
   debit) is submitted **strongly** through its owner shard's TOB;
2. when the last prepare stabilises, ``plan.decide(prepare_values)``
   fixes the outcome — the :class:`CrossShardFuture` responds with the
   plan's combined return value;
3. on success the *commit* sub-operations (the credit) are submitted
   strongly to their owner shards; on failure the *abort* compensations.
   The future stabilises once every staged sub-operation has.

The paper's strong/weak split therefore survives sharding: each staged
sub-operation holds a final TOB position on its shard, and per-key
invariants are enforced by the shard that owns the key. What the
coordinator does **not** give is cross-shard atomic visibility — between
the prepare and commit TOB positions a weak read may observe the moved
quantity "in flight" (E12 measures this as staleness); conservation
holds again at quiescence.

The parent operation never appears in any shard's history — shard
histories record the staged sub-operations, the parent lives only in its
future (``RunResult.responses`` still carries it by label).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.core.session import FUTURE_RESPONDED, OpFuture
from repro.datatypes.base import CrossShardPlan, Operation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.router import ShardRouter


class CrossShardFuture(OpFuture):
    """The client-side handle of one staged cross-shard operation.

    Same ``pending → responded → stable`` lifecycle as every
    :class:`OpFuture`; ``dot`` stays None (the parent holds no single
    position — its sub-operations each hold one on their shard).
    """

    def __init__(self, op: Operation, *, pid: int = -1) -> None:
        super().__init__(op, strong=True, pid=pid)
        #: Futures of the staged prepare sub-operations, in plan order.
        self.prepare_futures: List[OpFuture] = []
        #: Futures of the staged commit (or abort) sub-operations.
        self.commit_futures: List[OpFuture] = []
        #: Whether ``plan.decide`` judged the prepares successful.
        self.committed: Optional[bool] = None
        #: Second-phase sub-operations not yet stable (set at decision).
        self._pending_subs = 0

    def _respond(self, value, at: float) -> None:
        """Record the decided response (no wire request to attach)."""
        if self.done:
            return
        self._value = value
        self.response_time = at
        self.state = FUTURE_RESPONDED
        callbacks, self._done_callbacks = self._done_callbacks, []
        for callback in callbacks:
            callback(self)


class CrossShardCoordinator:
    """Stages cross-shard plans through the router's shards."""

    def __init__(self, router: "ShardRouter") -> None:
        self.router = router
        #: Total cross-shard operations staged (for experiment reports).
        self.staged_count = 0
        #: How many of them decided to commit / to abort.
        self.committed_count = 0
        self.aborted_count = 0
        #: Sub-operations whose owner shard crash-stopped entirely — they
        #: can never execute, so their plan never completes (the parent
        #: future stays un-stable, like a refused session future).
        self.lost_count = 0

    def stage(
        self,
        op: Operation,
        plan: CrossShardPlan,
        *,
        pid: int = 0,
        future: Optional[CrossShardFuture] = None,
    ) -> CrossShardFuture:
        """Stage ``op`` per ``plan``; returns its cross-shard future.

        ``pid`` is the *preferred* replica index inside each owner shard
        (shards share one replica-count, so the index is portable). The
        coordinator is crash-resilient the way a real client is: a staged
        sub-operation whose preferred replica is down fails over to a
        live replica of the owner shard; if the whole shard is down it is
        deferred until a replica recovers. Only a shard that crash-
        stopped *entirely* defeats the plan — the sub-operation is
        counted in :attr:`lost_count` and the parent future never
        completes its phase (durably journaling staged plans so they
        survive coordinator loss is a ROADMAP open item).
        """
        self.staged_count += 1
        if future is None:
            future = CrossShardFuture(op, pid=pid)
        future._mark_invoked(None, self.router.sim.now)
        if not plan.prepare:
            # Nothing can fail: decide straight away (commits still staged
            # on their own simulation steps through each shard's pipeline).
            self._decide(future, plan)
            return future
        remaining = [len(plan.prepare)]

        def on_prepared(sub_future: OpFuture) -> None:
            future.prepare_futures.append(sub_future)
            sub_future.add_stable_callback(
                lambda _f: self._count_down(remaining, future, plan)
            )

        for sub in plan.prepare:
            self._submit_resilient(sub.key, sub.op, pid=pid, deliver=on_prepared)
        return future

    def _submit_resilient(
        self,
        key,
        op: Operation,
        *,
        pid: int,
        deliver,
    ) -> None:
        """Submit one staged sub-operation, surviving owner-shard crashes.

        Tries the preferred replica, fails over to any live replica of
        the owner shard, and — when every replica is down but at least
        one can recover — re-tries at the next recovery. ``deliver`` is
        called with the sub-operation's future once it was accepted
        (possibly much later, after a recovery).
        """
        shard_index = self.router.shard_map.owner(key)
        cluster = self.router.deployment.shards[shard_index]
        candidates = [pid] + [
            replica
            for replica in range(cluster.config.n_replicas)
            if replica != pid
        ]
        for candidate in candidates:
            if not cluster.nodes[candidate].crashed:
                self.router.routed_counts[shard_index] += 1
                deliver(cluster.submit(candidate, op, strong=True))
                return
        recoverable = [
            node for node in cluster.nodes if node.crash_mode == "recover"
        ]
        if recoverable:
            # One-shot: crash hooks persist and re-fire at every later
            # recovery of the node, but the sub-operation must be staged
            # exactly once.
            fired = [False]

            def retry() -> None:
                if fired[0]:
                    return
                fired[0] = True
                self._submit_resilient(key, op, pid=pid, deliver=deliver)

            recoverable[0].register_crash_hooks(on_recover=retry)
            return
        self.lost_count += 1

    def _count_down(
        self,
        remaining: List[int],
        future: CrossShardFuture,
        plan: CrossShardPlan,
    ) -> None:
        remaining[0] -= 1
        if remaining[0] == 0:
            self._decide(future, plan)

    def _decide(self, future: CrossShardFuture, plan: CrossShardPlan) -> None:
        """All prepares stable: fix the outcome, stage the second phase.

        The parent responds at the decision and stabilises once every
        second-phase sub-operation has (prepares are strong, hence
        already stable when this runs); a deferred sub-operation keeps
        the parent un-stable until its shard recovered and committed it.
        """
        values = tuple(sub.value for sub in future.prepare_futures)
        success, rval = plan.decide(values)
        future.committed = success
        if success:
            self.committed_count += 1
        else:
            self.aborted_count += 1
        batch = plan.commit if success else plan.abort
        future._pending_subs = len(batch)

        def on_staged(sub_future: OpFuture) -> None:
            future.commit_futures.append(sub_future)
            sub_future.add_stable_callback(lambda _f: self._sub_stable(future))

        for sub in batch:
            self._submit_resilient(
                sub.key, sub.op, pid=future.pid, deliver=on_staged
            )
        future._respond(rval, self.router.sim.now)
        if future._pending_subs == 0:
            future._mark_stable(self.router.sim.now)

    def _sub_stable(self, future: CrossShardFuture) -> None:
        future._pending_subs -= 1
        if future._pending_subs == 0:
            future._mark_stable(self.router.sim.now)
