"""Cross-shard strong operations: client-side prepare/commit staging.

A multi-key operation whose keys live on different shards cannot execute
inside a single TOB. The :class:`CrossShardCoordinator` stages it from
the data type's :class:`~repro.datatypes.base.CrossShardPlan` instead:

1. every *prepare* sub-operation (the guarded steps — e.g. a transfer's
   debit) is submitted **strongly** through its owner shard's TOB;
2. when the last prepare stabilises, ``plan.decide(prepare_values)``
   fixes the outcome — the :class:`CrossShardFuture` responds with the
   plan's combined return value;
3. on success the *commit* sub-operations (the credit) are submitted
   strongly to their owner shards; on failure the *abort* compensations.
   The future stabilises once every staged sub-operation has.

The paper's strong/weak split therefore survives sharding: each staged
sub-operation holds a final TOB position on its shard, and per-key
invariants are enforced by the shard that owns the key. What the
coordinator does **not** give is cross-shard atomic visibility — between
the prepare and commit TOB positions a weak read may observe the moved
quantity "in flight" (E12 measures this as staleness); conservation
holds again at quiescence.

Plans are **epoch-pinned**: :meth:`CrossShardCoordinator.stage` records
the placement epoch the plan was resolved under. A live resharding that
bumps the epoch while a sub-operation is parked (deferred behind a
whole-shard recovery or a key handoff) is handled in two regimes:

- nothing staged yet → **abort-and-replan**: the prepare phase restarts
  from scratch under the new epoch (the stale attempt staged no state,
  so there is nothing to compensate); counted in :attr:`replanned_count`;
- something already staged → the remaining legs are **forwarded** to
  each key's current owner (prepared effects ride the migration's
  snapshot/suffix handoff to the new owner, so compensating would be
  both impossible and unnecessary); counted in :attr:`forwarded_subs`.

The parent operation never appears in any shard's history — shard
histories record the staged sub-operations, the parent lives only in its
future (``RunResult.responses`` still carries it by label).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.core.session import OpFuture
from repro.datatypes.base import CrossShardPlan, Operation
from repro.errors import MigrationInProgress

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.router import ShardRouter


class CrossShardFuture(OpFuture):
    """The client-side handle of one staged cross-shard operation.

    Same ``pending → responded → stable`` lifecycle as every
    :class:`OpFuture`; ``dot`` stays None (the parent holds no single
    position — its sub-operations each hold one on their shard).
    """

    def __init__(self, op: Operation, *, pid: int = -1) -> None:
        super().__init__(op, strong=True, pid=pid)
        #: Futures of the staged prepare sub-operations, in acceptance
        #: order (a leg parked behind a recovery or handoff lands late;
        #: ``plan.decide`` still sees values in plan order).
        self.prepare_futures: List[OpFuture] = []
        #: Futures of the staged commit (or abort) sub-operations.
        self.commit_futures: List[OpFuture] = []
        #: Whether ``plan.decide`` judged the prepares successful.
        self.committed: Optional[bool] = None
        #: Placement epoch the plan was resolved under (set at staging).
        self.plan_epoch: Optional[int] = None
        #: Second-phase sub-operations not yet stable (set at decision).
        self._pending_subs = 0
        #: Bumped by every abort-and-replan; parked retries from an
        #: earlier staging generation detect the bump and stand down.
        self._stage_generation = 0

    def _respond(self, value, at: float) -> None:
        """Record the decided response (no wire request to attach)."""
        self._respond_value(value, at)


class CrossShardCoordinator:
    """Stages cross-shard plans through the router's shards."""

    def __init__(self, router: "ShardRouter") -> None:
        self.router = router
        #: The deployment's telemetry plane (None when unarmed). Each
        #: staged plan gets its own client-side trace ("xs1", "xs2", …)
        #: since the parent op holds no dot to derive one from.
        self.telemetry = router.telemetry
        #: Total cross-shard operations staged (for experiment reports).
        self.staged_count = 0
        #: How many of them decided to commit / to abort.
        self.committed_count = 0
        self.aborted_count = 0
        #: Sub-operations whose owner shard crash-stopped entirely — they
        #: can never execute, so their plan never completes (the parent
        #: future stays un-stable, like a refused session future).
        self.lost_count = 0
        #: Plans whose prepare phase restarted under a newer epoch.
        self.replanned_count = 0
        #: Sub-operations re-routed to a key's new owner mid-plan.
        self.forwarded_subs = 0
        #: Sub-operations parked behind an in-flight key handoff.
        self.deferred_subs = 0

    def stage(
        self,
        op: Operation,
        plan: CrossShardPlan,
        *,
        pid: int = 0,
        future: Optional[CrossShardFuture] = None,
    ) -> CrossShardFuture:
        """Stage ``op`` per ``plan``; returns its cross-shard future.

        ``pid`` is the *preferred* replica index inside each owner shard
        (shards share one replica-count, so the index is portable). The
        coordinator is crash-resilient the way a real client is: a staged
        sub-operation whose preferred replica is down fails over to a
        live replica of the owner shard; if the whole shard is down it is
        deferred until a replica recovers. Only a shard that crash-
        stopped *entirely* defeats the plan — the sub-operation is
        counted in :attr:`lost_count` and the parent future never
        completes its phase (durably journaling staged plans so they
        survive coordinator loss is a ROADMAP open item).
        """
        self.staged_count += 1
        if future is None:
            future = CrossShardFuture(op, pid=pid)
        future._mark_invoked(None, self.router.sim.now)
        if future.pid < 0:
            future.pid = pid
        future.plan_epoch = self.router.epoch
        if self.telemetry:
            future._trace = self.telemetry.next_trace("xs")
            self.telemetry.counter("repro_xshard_plans", outcome="staged").inc()
            self._plan_span(
                future, "stage", None,
                op=str(op), epoch=future.plan_epoch,
                prepares=len(plan.prepare),
            )
        self._stage_prepares(future, plan)
        return future

    def _plan_span(
        self, future: CrossShardFuture, name: str, parent: Optional[str],
        **attrs,
    ) -> None:
        trace = getattr(future, "_trace", None)
        if not self.telemetry or trace is None:
            return
        self.telemetry.tracer.record(
            self.router.sim.now, future.pid, name, trace, name, parent,
            **attrs,
        )

    def _count_sub(self, event: str) -> None:
        if self.telemetry:
            self.telemetry.counter("repro_xshard_subs", event=event).inc()

    def _stage_prepares(self, future: CrossShardFuture, plan: CrossShardPlan) -> None:
        """Launch (or relaunch, after a replan) the prepare phase."""
        if not plan.prepare:
            # Nothing can fail: decide straight away (commits still staged
            # on their own simulation steps through each shard's pipeline).
            self._decide(future, plan, ())
            return
        # Slotted by plan position: a leg parked behind a crash recovery
        # or a key handoff is accepted *later* than its siblings, but
        # ``plan.decide`` consumes the values positionally and must see
        # them in plan order regardless of acceptance order.
        slots: List[Optional[OpFuture]] = [None] * len(plan.prepare)
        remaining = [len(plan.prepare)]

        def count_down() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                self._decide(
                    future, plan, tuple(slot.value for slot in slots)
                )

        def make_deliver(index: int):
            def on_prepared(sub_future: OpFuture) -> None:
                slots[index] = sub_future
                future.prepare_futures.append(sub_future)
                sub_future.add_stable_callback(lambda _f: count_down())

            return on_prepared

        for index, sub in enumerate(plan.prepare):
            self._submit_resilient(
                sub.key,
                sub.op,
                pid=future.pid,
                deliver=make_deliver(index),
                future=future,
                plan=plan,
                phase="prepare",
            )

    def _submit_resilient(
        self,
        key,
        op: Operation,
        *,
        pid: int,
        deliver,
        future: Optional[CrossShardFuture] = None,
        plan: Optional[CrossShardPlan] = None,
        phase: str = "commit",
    ) -> None:
        """Submit one staged sub-operation, surviving owner-shard crashes
        and placement-epoch changes.

        Tries the preferred replica, fails over to any live replica of
        the key's *current* owner shard, parks behind whole-shard
        recoveries and key handoffs, and — when a parked retry wakes up
        under a newer epoch — either replans the whole prepare phase (if
        nothing was staged yet) or forwards this leg to the new owner.
        ``deliver`` is called with the sub-operation's future once it was
        accepted (possibly much later, after a recovery or activation).
        """
        epoch_stale = (
            future is not None
            and future.plan_epoch is not None
            and future.plan_epoch != self.router.epoch
        )
        if epoch_stale:
            if (
                phase == "prepare"
                and plan is not None
                and not future.prepare_futures
                and not future.commit_futures
            ):
                # Abort-and-replan: the stale staging touched no shard, so
                # the clean restart needs no compensation. The generation
                # bump retires every retry the stale attempt parked.
                self.replanned_count += 1
                future._stage_generation += 1
                future.plan_epoch = self.router.epoch
                self._stage_prepares(future, plan)
                return
        try:
            shard_index = self.router.resolve_owner(key)
        except MigrationInProgress as exc:
            self.deferred_subs += 1
            self._count_sub("deferred")
            exc.migration.deferred_ops += 1
            exc.migration.when_complete(
                self._retry(key, op, pid=pid, deliver=deliver,
                            future=future, plan=plan, phase=phase)
            )
            return
        cluster = self.router.deployment.shards[shard_index]
        candidates = [pid] + [
            replica
            for replica in range(cluster.config.n_replicas)
            if replica != pid
        ]
        for candidate in candidates:
            if not cluster.nodes[candidate].crashed:
                if epoch_stale and shard_index != self.router.deployment.shard_maps.owner(
                    key, epoch=future.plan_epoch
                ):
                    # A forward is a leg landing on a *different* shard
                    # than the plan's epoch named — counted only on the
                    # actual submission, so a leg that defers again (or
                    # retries across several epochs) registers at most
                    # one forward, and an epoch bump that left the key's
                    # owner alone registers none.
                    self.forwarded_subs += 1
                    self._count_sub("forwarded")
                deliver(
                    self.router._submit_routed(
                        shard_index, candidate, op, strong=True
                    )
                )
                return
        recoverable = [
            node for node in cluster.nodes if node.crash_mode == "recover"
        ]
        if recoverable:
            # One-shot: crash hooks persist and re-fire at every later
            # recovery of the node, but the sub-operation must be staged
            # exactly once.
            retry = self._retry(key, op, pid=pid, deliver=deliver,
                                future=future, plan=plan, phase=phase)
            fired = [False]

            def once() -> None:
                if fired[0]:
                    return
                fired[0] = True
                retry()

            recoverable[0].register_crash_hooks(on_recover=once)
            return
        self.lost_count += 1
        self._count_sub("lost")

    def _retry(self, key, op, *, pid, deliver, future, plan, phase):
        """A parked re-submission, generation-guarded against replans."""
        generation = future._stage_generation if future is not None else None

        def fire() -> None:
            if future is not None and future._stage_generation != generation:
                return  # a replan already restaged this plan wholesale
            self._submit_resilient(
                key, op, pid=pid, deliver=deliver,
                future=future, plan=plan, phase=phase,
            )

        return fire

    def _decide(
        self,
        future: CrossShardFuture,
        plan: CrossShardPlan,
        values,
    ) -> None:
        """All prepares stable: fix the outcome, stage the second phase.

        ``values`` are the prepare responses in *plan order*. The parent
        responds at the decision and stabilises once every second-phase
        sub-operation has (prepares are strong, hence already stable
        when this runs); a deferred sub-operation keeps the parent
        un-stable until its shard recovered and committed it.
        """
        success, rval = plan.decide(values)
        future.committed = success
        if success:
            self.committed_count += 1
        else:
            self.aborted_count += 1
        if self.telemetry:
            self.telemetry.counter(
                "repro_xshard_plans",
                outcome="committed" if success else "aborted",
            ).inc()
            self._plan_span(future, "decide", "stage", committed=success)
        batch = plan.commit if success else plan.abort
        future._pending_subs = len(batch)

        def on_staged(sub_future: OpFuture) -> None:
            future.commit_futures.append(sub_future)
            sub_future.add_stable_callback(lambda _f: self._sub_stable(future))

        for sub in batch:
            self._submit_resilient(
                sub.key,
                sub.op,
                pid=future.pid,
                deliver=on_staged,
                future=future,
                plan=plan,
                phase="commit",
            )
        future._respond(rval, self.router.sim.now)
        if future._pending_subs == 0:
            self._plan_span(future, "stable", "decide")
            future._mark_stable(self.router.sim.now)

    def _sub_stable(self, future: CrossShardFuture) -> None:
        future._pending_subs -= 1
        if future._pending_subs == 0:
            self._plan_span(future, "stable", "decide")
            future._mark_stable(self.router.sim.now)
