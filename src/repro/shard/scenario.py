"""Sharded scenario runs: LiveRun/RunResult counterparts for shards.

``Scenario.shards(n, partitioner=...)`` switches the fluent builder onto
this module: :meth:`Scenario.build` compiles to a
:class:`~repro.shard.deployment.ShardedCluster` wrapped in a
:class:`ShardedLiveRun`, and ``run()`` finishes into a
:class:`ShardedRunResult` — the keyspace-wide merge of every shard's
run: one label → future map across all shards (scripted invocations are
shard-routed), per-shard histories and guarantee reports, and aggregate
convergence/stability.

Cross-shard strong operations appear in the merged futures under their
label; their staged sub-operations appear in the owner shards'
histories (the parent holds no single history position — see
:mod:`repro.shard.coordinator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.analysis.workload import RandomWorkload
from repro.core.session import OpFuture
from repro.datatypes.base import Operation
from repro.errors import MigrationStrandedError, ReplicaUnavailableError
from repro.framework.builder import build_abstract_execution
from repro.framework.guarantees import check_bec, check_fec, check_seq
from repro.framework.history import History
from repro.framework.predicates import check_ncc
from repro.framework.session_guarantees import check_all_session_guarantees
from repro.shard.control import PlacementController
from repro.shard.deployment import ShardedCluster
from repro.shard.migration import Migration
from repro.shard.router import ShardedSession, ShardRouter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario import Scenario


@dataclass
class MigrationCheck:
    """Per-migration protocol-completion verdict (``checks["migrations"]``).

    ``ok`` is True only for a migration whose epoch activated. A stranded
    migration (an endpoint lost every replica to crash-stop mid-handoff)
    carries its named :class:`~repro.errors.MigrationStrandedError` in
    ``error`` — the run *finishes* and the failure is a first-class check
    result, where it previously wedged the deployment silently.
    """

    name: str
    ok: bool
    state: str
    error: Optional[MigrationStrandedError] = None


class ShardedLiveRun:
    """A compiled, running sharded scenario: the mid-flight handle."""

    def __init__(self, scenario: "Scenario", deployment: ShardedCluster) -> None:
        self.scenario = scenario
        self.deployment = deployment
        self.router = ShardRouter(deployment)
        #: label -> future for every labelled scripted/client operation.
        self.futures: Dict[str, OpFuture] = {}
        #: label -> time of invocations refused at a crashed owner replica.
        self.refused: Dict[str, float] = {}
        self.sessions: List[ShardedSession] = []
        self.workloads: List[RandomWorkload] = []
        #: The autonomous placement controller (``autoscale()`` only).
        self.controller: Optional[PlacementController] = None
        self._schedule_everything()

    # -- wiring --------------------------------------------------------
    def _schedule_everything(self) -> None:
        if self.scenario._autoscale is not None:
            self.controller = PlacementController(
                self.router, **self.scenario._autoscale
            )
            self.controller.start()
        for at, kind, params, pid, transfer_delay in self.scenario._reshardings:
            self.deployment.sim.schedule_at(
                at,
                lambda k=kind, p=params, i=pid, d=transfer_delay: (
                    self._fire_resharding(k, p, i, d)
                ),
                label=f"scenario resharding {kind}{params}",
            )
        for scripted in self.scenario._scripted:
            self.deployment.sim.schedule_at(
                scripted.at,
                lambda s=scripted: self._fire_scripted(s),
                label=f"scenario invoke @{scripted.pid} {scripted.op}",
            )
        for client in self.scenario._clients:
            session = self.router.connect(
                client.pid, think_time=client.think_time
            )
            self.sessions.append(session)
            for op, strong, op_label in client.ops:
                future = session.submit(op, strong=strong)
                if op_label is not None:
                    self.futures[op_label] = future
        for spec in self.scenario._workloads:
            workload = RandomWorkload(
                self.router,
                spec.profile,
                ops_per_session=spec.ops_per_session,
                think_time=spec.think_time,
                seed=spec.seed,
                sessions=spec.sessions,
            )
            workload.start()
            self.workloads.append(workload)
        for time, hook in self.scenario._hooks:
            self.deployment.sim.schedule_at(
                time, lambda h=hook: h(self), label="scenario hook"
            )

    def _fire_resharding(
        self, kind: str, params, pid: int, transfer_delay: float
    ) -> None:
        if kind == "split":
            self.deployment.split(
                params[0], pid=pid, transfer_delay=transfer_delay
            )
        elif kind == "merge":
            dst, src = params
            self.deployment.merge(
                dst, src, pid=pid, transfer_delay=transfer_delay
            )
        else:
            lo, hi, dst = params
            self.deployment.move(
                (lo, hi), dst, pid=pid, transfer_delay=transfer_delay
            )

    def _fire_scripted(self, scripted) -> None:
        try:
            self.futures[scripted.label] = self.router.submit(
                scripted.pid, scripted.op, strong=scripted.strong
            )
        except ReplicaUnavailableError:
            self.refused[scripted.label] = self.deployment.sim.now

    # -- driving -------------------------------------------------------
    @property
    def now(self) -> float:
        return self.deployment.sim.now

    def submit(
        self,
        pid: int,
        op: Operation,
        *,
        strong: bool = False,
        label: Optional[str] = None,
    ) -> OpFuture:
        """Invoke right now (open loop, shard-routed)."""
        if label is not None and (
            label in self.futures or label in self.scenario._labels
        ):
            raise ValueError(f"duplicate scenario label {label!r}")
        future = self.router.submit(pid, op, strong=strong)
        if label is not None:
            self.futures[label] = future
        return future

    def run(self, until: Optional[float] = None) -> None:
        self.deployment.run(until=until)

    def run_until_quiescent(self) -> float:
        return self.deployment.run_until_quiescent()

    def run_until_stable(self, **kwargs: Any) -> bool:
        return self.deployment.run_until_stable(**kwargs)

    def settle(self, *, max_time: float = 100_000.0) -> None:
        if self.deployment.config.tob_engine == "paxos":
            self.deployment.run_until_stable(max_time=max_time)
        else:
            self.deployment.run_until_quiescent()

    def shutdown(self) -> None:
        self.deployment.shutdown()

    def converged(self) -> bool:
        return self.deployment.converged()

    @property
    def migrations(self) -> List[Migration]:
        """Every resharding step this run has executed (or is executing)."""
        return self.deployment.migrations

    # -- finishing -----------------------------------------------------
    def add_probes(self, *, max_time: float = 100_000.0) -> None:
        """Issue the configured horizon probes on every serving shard."""
        if self.scenario._probe_op is None:
            return
        for index in self.deployment.live_shard_indexes():
            self.deployment.shards[index].add_horizon_probes(
                self.scenario._probe_op, spacing=self.scenario._probe_spacing
            )
        self.settle(max_time=max_time)

    def finish(
        self,
        *,
        well_formed: bool = True,
        max_time: float = 100_000.0,
        settle: bool = True,
    ) -> "ShardedRunResult":
        """Probe, freeze each shard's history, run the configured checks."""
        if settle:
            self.add_probes(max_time=max_time)
            if self.deployment.config.tob_engine == "paxos":
                self.shutdown()
                self.deployment.run_until_quiescent()
        histories = [
            shard.build_history(well_formed=well_formed)
            for shard in self.deployment.shards
        ]
        executions = [build_abstract_execution(h) for h in histories]
        checks: Dict[str, List[Any]] = {}
        session_guarantees: Optional[List[Dict[str, Any]]] = None
        for kind, level in self.scenario._checks:
            if kind == "fec":
                checks[f"fec:{level}"] = [check_fec(x, level) for x in executions]
            elif kind == "bec":
                checks[f"bec:{level}"] = [check_bec(x, level) for x in executions]
            elif kind == "seq":
                checks[f"seq:{level}"] = [check_seq(x, level) for x in executions]
            elif kind == "ncc":
                checks["ncc"] = [check_ncc(x) for x in executions]
            elif kind == "sessions":
                session_guarantees = [
                    check_all_session_guarantees(x) for x in executions
                ]
        if self.deployment.migrations:
            checks["migrations"] = [
                MigrationCheck(
                    name=migration.describe(),
                    ok=migration.complete,
                    state=migration.state,
                    error=migration.error,
                )
                for migration in self.deployment.migrations
            ]
        return ShardedRunResult(
            name=self.scenario.name,
            protocol=self.deployment.protocol,
            deployment=self.deployment,
            router=self.router,
            histories=histories,
            executions=executions,
            futures=dict(self.futures),
            checks=checks,
            session_guarantees=session_guarantees,
            convergence=self.deployment.convergence_report(),
            refused=dict(self.refused),
            migrations=list(self.deployment.migrations),
            controller=self.controller,
        )


@dataclass
class ShardedRunResult:
    """Everything one sharded scenario run produced, merged keyspace-wide."""

    name: str
    protocol: str
    deployment: ShardedCluster = field(repr=False)
    router: ShardRouter = field(repr=False)
    #: One frozen history per shard, indexed by shard id.
    histories: List[History] = field(repr=False)
    executions: List[Any] = field(repr=False)
    #: label -> future, across all shards (cross-shard parents included).
    futures: Dict[str, OpFuture] = field(repr=False)
    #: check name -> per-shard reports.
    checks: Dict[str, List[Any]] = field(repr=False)
    session_guarantees: Optional[List[Dict[str, Any]]] = field(repr=False)
    convergence: Dict[str, Any] = field(repr=False)
    refused: Dict[str, float] = field(repr=False, default_factory=dict)
    #: Resharding steps the run executed, in start order.
    migrations: List[Migration] = field(repr=False, default_factory=list)
    #: The autonomous placement controller, when ``autoscale()`` armed
    #: one (its ``actions`` log is the experiment read surface).
    controller: Optional[PlacementController] = field(repr=False, default=None)

    # -- responses -----------------------------------------------------
    @property
    def responses(self) -> Dict[str, Any]:
        """label -> response value (∇ for operations still pending)."""
        return {label: future.rval for label, future in self.futures.items()}

    def future(self, label: str) -> OpFuture:
        return self.futures[label]

    # -- verdicts ------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.deployment.n_shards

    @property
    def epoch(self) -> int:
        """The placement epoch the deployment finished on."""
        return self.deployment.epoch

    @property
    def converged(self) -> bool:
        return bool(self.convergence["converged"])

    def check(self, name: str, shard: Optional[int] = None) -> Any:
        """A requested guarantee report — per shard, or one shard's."""
        reports = self.checks[name]
        return reports if shard is None else reports[shard]

    def ok(self, name: str) -> bool:
        """True when the named check holds on *every* shard."""
        return all(bool(report.ok) for report in self.checks[name])

    # -- state and metrics ---------------------------------------------
    @property
    def telemetry(self):
        """The deployment's shared telemetry plane (None when unarmed)."""
        return self.deployment.telemetry

    def query(self, op: Operation) -> Any:
        """Execute a read-only ``op`` on its owner shard's converged state."""
        return self.router.query(op)

    def shard_snapshot(self, shard: int) -> Dict[Any, Any]:
        """Replica 0's register snapshot of one shard."""
        return self.deployment.shards[shard].replicas[0].state.snapshot()

    def latencies(self, level: Optional[str] = None) -> List[float]:
        """Response latencies of the labelled futures (by level)."""
        samples = []
        for future in self.futures.values():
            if future.latency is None:
                continue
            if level == "strong" and not future.strong:
                continue
            if level == "weak" and future.strong:
                continue
            samples.append(future.latency)
        return samples
