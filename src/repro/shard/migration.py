"""Live resharding: epoch-versioned placement and key migration.

A static :class:`~repro.shard.partitioner.ShardMap` fixes placement for a
deployment's lifetime; this module makes placement *elastic*. A
:class:`Migration` executes one :class:`~repro.shard.partitioner.Reassignment`
(split / merge / move) as a live protocol while weak traffic keeps
flowing:

1. **Stage** — the migration registers itself on the deployment (from
   this instant, submissions touching the *moving* keys are deferred via
   :class:`~repro.errors.MigrationInProgress` and retried at activation
   — the router's retry path) and invokes a strong **epoch barrier**
   through the source shard's TOB. The barrier's committed position
   fixes, once and globally, which updates belong to the frozen snapshot.
2. **Freeze & collect** — when the first source replica delivers the
   barrier, the committed prefix *below* it is replayed onto a fresh
   database and the moving keys' registers
   (:meth:`~repro.datatypes.base.DataType.registers_of`) are extracted:
   the *committed-prefix snapshot*. Everything after the prefix — the
   *tentative-log suffix* — is drained from **every** source replica's
   log (and, for crashed replicas with stable storage, their durable
   write-ahead logs), deduplicated by dot: a request seen at several
   replicas transfers exactly once (:attr:`Migration.duplicate_drops`
   counts the idempotent drops).
3. **Transfer & install** — after ``transfer_delay`` (modelling the data
   movement), the snapshot is invoked on the destination as one strong
   ``__migration_install__`` operation, giving the installed registers a
   definite position in the destination's total order (and, because the
   install rides the normal pipeline, undo-tracking, checkpoints,
   durability and recovery replay all cover it for free).
4. **Drain & activate** — once the install commits, the drained suffix
   requests are re-invoked on the destination in tentative order (same
   strength, fresh dots), and the new epoch activates:
   :meth:`VersionedShardMap.advance` appends the immutable snapshot, the
   epoch record is persisted to the deployment's placement store, and
   every deferred submission retries — now routing to the destination.

The source keeps executing its own log past the barrier; post-barrier
effects on *moved* registers at the source are unreachable garbage (all
reads route to the new owner), which is what makes duplicate execution of
transferred requests harmless. One documented hazard remains: a
*tentative multi-key request whose keys only partially move* (e.g. an
intra-shard weak transfer caught mid-split) executes fully on both
shards; owner-routed reads still see each key's effect exactly once, but
a *guarded* such request may decide differently in the two contexts.
:attr:`Migration.partial_key_requests` counts them; E13's workloads keep
guarded multi-key operations strong (plan-staged per key), which avoids
the hazard entirely.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, TYPE_CHECKING

from repro.core.durability import register_codec
from repro.core.request import Dot, Req
from repro.core.state_object import execute_with_protocol_ops
from repro.datatypes.base import (
    EPOCH_BARRIER_OP,
    MIGRATION_INSTALL_OP,
    MIGRATION_PROTOCOL_OPS,
    DataType,
    Operation,
    PlainDb,
)
from repro.errors import MigrationError, MigrationStrandedError
from repro.shard.partitioner import Reassignment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cluster import BayouCluster
    from repro.shard.deployment import ShardedCluster

#: Migration lifecycle states.
STAGING = "staging"          # barrier invoked, awaiting its TOB commit
TRANSFERRING = "transferring"  # snapshot frozen, install in flight
COMPLETE = "complete"        # new epoch active, deferred ops released
STRANDED = "stranded"        # an endpoint crash-stopped; will never complete

# The epoch chain is data (kind + scalars); registering a codec lets any
# DurableStore backend persist and reload it without the core layer ever
# importing the shard layer.
register_codec(
    "~reassign",
    Reassignment,
    lambda r: {"kind": r.kind, "src": r.src, "dst": r.dst, "params": r.params},
    lambda d: Reassignment(d["kind"], d["src"], d["dst"], tuple(d["params"])),
)


def replay_with_protocol_ops(datatype: DataType, ops) -> PlainDb:
    """Replay ``ops`` on a fresh db, interpreting migration protocol ops.

    A source shard that was itself a migration *destination* earlier has
    ``__migration_install__`` requests in its committed prefix; plain
    ``DataType.replay`` would reject them.
    """
    db = PlainDb()
    for op in ops:
        execute_with_protocol_ops(datatype, op, db)
    return db


class Migration:
    """One live resharding step of a :class:`ShardedCluster`.

    Constructed (and started) by :meth:`ShardedCluster.split` /
    ``merge`` / ``move``; observable by everyone else. The interesting
    read surface:

    - :attr:`state`, :attr:`started_at` / :attr:`barrier_committed_at` /
      :attr:`activated_at` — the protocol timeline;
    - :attr:`moved_registers`, :attr:`transferred_requests`,
      :attr:`duplicate_drops`, :attr:`partial_key_requests`,
      :attr:`deferred_ops` — what the handoff carried and what it cost;
    - :meth:`when_complete` — the retry hook routers use to release
      operations deferred by :class:`~repro.errors.MigrationInProgress`.
    """

    def __init__(
        self,
        deployment: "ShardedCluster",
        reassignment: Reassignment,
        *,
        pid: int = 0,
        transfer_delay: float = 0.0,
    ) -> None:
        # Everything that can fail is validated here, *before* the
        # deployment spawns a destination slot for a split — a refused
        # migration must leave the deployment untouched. The destination
        # may not exist yet, so only the source shard is inspected.
        if transfer_delay < 0:
            raise MigrationError(f"transfer_delay must be >= 0, got {transfer_delay}")
        self.deployment = deployment
        self.reassignment = reassignment
        self.src = reassignment.src
        self.dst = reassignment.dst
        self.datatype = deployment.datatype
        if type(self.datatype).registers_of is DataType.registers_of:
            raise MigrationError(
                f"{self.datatype.type_name} declares no per-key register "
                "groups (registers_of); only keyed data types support live "
                "key migration"
            )
        if all(node.crashed for node in deployment.shards[self.src].nodes):
            raise MigrationError(
                f"every replica of the source shard S{self.src} is crashed; "
                "a migration needs a live replica on both endpoints"
            )
        self.pid = pid
        self.transfer_delay = transfer_delay
        self.state = STAGING
        #: Protocol timeline (simulated times; None until reached).
        self.started_at: Optional[float] = None
        self.barrier_committed_at: Optional[float] = None
        self.activated_at: Optional[float] = None
        #: Registers carried in the committed-prefix snapshot.
        self.moved_registers = 0
        #: Tentative-suffix requests re-invoked on the destination.
        self.transferred_requests = 0
        #: Suffix requests seen at >1 replica and dropped idempotently.
        self.duplicate_drops = 0
        #: Tentative multi-key requests whose keys only partially moved
        #: (the documented guarded-operation hazard; see module docs).
        self.partial_key_requests = 0
        #: Submissions deferred by MigrationInProgress (set by routers).
        self.deferred_ops = 0
        #: Set when the deployment spawned the destination slot for this
        #: migration (split / isolate) — a strand then retires the slot.
        self.spawned_dst = False
        #: The named failure once stranded (None otherwise).
        self.error: Optional[MigrationStrandedError] = None
        self.stranded_at: Optional[float] = None
        self._barrier_dot: Optional[Dot] = None
        self._install_dot: Optional[Dot] = None
        self._install_pid: Optional[int] = None
        # One named trace per migration ("mig-e<target epoch>") carries
        # the protocol phases as spans; stranded migrations end with a
        # "strand" span instead of "activate".
        telemetry = deployment.telemetry
        self._trace: Optional[str] = (
            telemetry.named_trace(
                f"mig-e{deployment.shard_maps.epoch + 1}"
            )
            if telemetry
            else None
        )
        #: (key, register, value) triples of the frozen snapshot.
        self._moving_payload: List[Any] = []
        self._twins: List[Req] = []
        self._completion_callbacks: List[Callable[[], None]] = []
        #: (replica, previous commit_listener) pairs to restore.
        self._hooked: List[Any] = []

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self.state == COMPLETE

    @property
    def stranded(self) -> bool:
        return self.state == STRANDED

    def moves_key(self, key: Hashable, owner: Optional[int] = None) -> bool:
        """Whether ``key`` is in the moving set of this migration.

        Evaluated against the *pre-activation* (current) epoch — during
        the handoff window that is exactly the epoch routers still see.
        Callers that already resolved the key's owner pass it in to skip
        the second hash.
        """
        if owner is None:
            owner = self.deployment.shard_maps.current.owner(key)
        return self.reassignment.moves(key, owner)

    def when_complete(self, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at epoch activation (or immediately)."""
        if self.complete:
            callback()
        else:
            self._completion_callbacks.append(callback)

    def describe(self) -> str:
        return f"{self.reassignment.describe()} [{self.state}]"

    def _span(self, name: str, parent: Optional[str], **attrs: Any) -> None:
        telemetry = self.deployment.telemetry
        if not telemetry or self._trace is None:
            return
        telemetry.tracer.record(
            self.deployment.sim.now, self.pid, name,
            self._trace, name, parent, **attrs,
        )

    def _count(self, outcome: str) -> None:
        telemetry = self.deployment.telemetry
        if telemetry:
            telemetry.counter(
                "repro_migrations", outcome=outcome
            ).inc()

    # ------------------------------------------------------------------
    # 1. Stage: the epoch barrier through the source TOB
    # ------------------------------------------------------------------
    def start(self) -> None:
        source = self.deployment.shards[self.src]
        replica = self._live_replica(source, self.pid, role="source")
        self.started_at = self.deployment.sim.now
        barrier = Operation(
            EPOCH_BARRIER_OP,
            (self.deployment.shard_maps.epoch + 1, self.src, self.dst),
        )
        # Invoked directly on the replica (not through the cluster's
        # client surface): the barrier is protocol traffic, so it holds
        # no history event and no client future — only a TOB position.
        self._span(
            "stage", None,
            reassignment=self.reassignment.describe(),
            src=self.src, dst=self.dst,
        )
        self._count("started")
        self._barrier_dot = replica.invoke(barrier, strong=True).dot
        self._hook_commit_listeners(source, self._barrier_dot, self._on_barrier)
        # Pipeline the barrier with the install: prewarm the destination's
        # TOB (a leader-based engine runs its phase 1 now) so the install
        # op decides in a single 2A/2B round the moment the transfer lands,
        # instead of paying an election inside the migration window.
        destination = self.deployment.shards[self.dst]
        for dst_replica in destination.replicas:
            if not dst_replica.node.crashed:
                dst_replica.tob.prewarm()
        self._watch_endpoints()

    # ------------------------------------------------------------------
    # Strand detection: crash-stopped endpoints
    # ------------------------------------------------------------------
    def _watch_endpoints(self) -> None:
        """Detect, at crash time, an endpoint that can never answer again.

        A migration is driven entirely by its endpoints' replicas (the
        barrier commit at the source, the install commit at the
        destination). If *every* replica of either endpoint crash-stops
        mid-protocol, no event will ever advance the migration — without
        detection it wedges silently: ``converged()`` pinned False,
        deferred submissions parked forever, the per-shard migration slot
        never released. Crash-*recovery* outages are not strands — the
        commit listeners survive and fire once replication resumes.
        """
        for role, index in (("source", self.src), ("destination", self.dst)):
            cluster = self.deployment.shards[index]
            for node in cluster.nodes:
                node.register_crash_hooks(
                    on_crash=lambda mode, role=role, cluster=cluster: (
                        self._endpoint_crashed(role, cluster)
                    )
                )

    def _endpoint_crashed(self, role: str, cluster: "BayouCluster") -> None:
        if self.state in (COMPLETE, STRANDED):
            return
        if all(
            node.crashed and node.crash_mode == "stop"
            for node in cluster.nodes
        ):
            self.fail(
                f"{self.reassignment.describe()} stranded while "
                f"{self.state}: every replica of the {role} shard "
                f"{cluster.name} crash-stopped"
            )

    def fail(self, reason: str) -> None:
        """Mark the migration permanently stranded and release its grip.

        The epoch never activates: the source keeps its keys and routing
        is unchanged. Submissions deferred on :meth:`when_complete` are
        released (scheduled, not inline — ``fail`` runs inside crash
        hooks) and retry against the unchanged epoch.
        """
        if self.state in (COMPLETE, STRANDED):
            return
        self.state = STRANDED
        self.stranded_at = self.deployment.sim.now
        self.error = MigrationStrandedError(reason, migration=self)
        self._span("strand", "stage", reason=reason)
        self._count("stranded")
        self._unhook_commit_listeners()
        self.deployment._strand_migration(self)
        callbacks, self._completion_callbacks = self._completion_callbacks, []
        if callbacks:
            self.deployment.sim.schedule(
                0.0,
                lambda: [callback() for callback in callbacks],
                label=f"stranded migration release {self.reassignment.describe()}",
            )

    def _live_replica(self, cluster: "BayouCluster", pid: int, *, role: str):
        candidates = [pid] + [
            index
            for index in range(cluster.config.n_replicas)
            if index != pid
        ]
        for candidate in candidates:
            if not cluster.nodes[candidate].crashed:
                return cluster.replicas[candidate]
        raise MigrationError(
            f"every replica of the {role} shard {cluster.name or '?'} is "
            "crashed; a migration needs a live replica on both endpoints"
        )

    def _hook_commit_listeners(self, cluster, dot: Dot, handler) -> None:
        """Fire ``handler(replica)`` at the *first* TOB commit of ``dot``."""
        fired = [False]
        for replica in cluster.replicas:
            previous = replica.commit_listener

            def chained(req, _previous=previous, _replica=replica):
                if _previous is not None:
                    _previous(req)
                if req.dot == dot and not fired[0]:
                    fired[0] = True
                    self._unhook_commit_listeners()
                    handler(_replica)

            replica.commit_listener = chained
            self._hooked.append((replica, previous))

    def _unhook_commit_listeners(self) -> None:
        for replica, previous in self._hooked:
            replica.commit_listener = previous
        self._hooked = []

    # ------------------------------------------------------------------
    # 2. Freeze & collect at the barrier commit
    # ------------------------------------------------------------------
    def _on_barrier(self, replica) -> None:
        self.state = TRANSFERRING
        self.barrier_committed_at = self.deployment.sim.now
        source = self.deployment.shards[self.src]
        barrier_index = next(
            index
            for index, req in enumerate(replica.committed)
            if req.dot == self._barrier_dot
        )
        prefix = replica.committed[:barrier_index]
        committed_dots = {req.dot for req in prefix}

        # The frozen committed-prefix snapshot, restricted to moving keys.
        db = replay_with_protocol_ops(self.datatype, (req.op for req in prefix))
        moving_keys = set()
        for req in prefix:
            if req.op.name == MIGRATION_INSTALL_OP:
                # This shard was itself a migration destination earlier:
                # keys whose only writes arrived via that install are
                # candidates too (the triples carry their keys for
                # exactly this scan).
                for key, _register, _value in req.op.args[0]:
                    if self.moves_key(key):
                        moving_keys.add(key)
                continue
            if req.op.name in MIGRATION_PROTOCOL_OPS:
                continue
            for key in self.datatype.keys_of(req.op):
                if self.moves_key(key):
                    moving_keys.add(key)
        for key in moving_keys:
            for register in self.datatype.registers_of(key):
                if register in db.data:
                    self._moving_payload.append((key, register, db.data[register]))
        self._moving_payload.sort(key=lambda t: (repr(t[0]), repr(t[1])))
        self.moved_registers = len(self._moving_payload)

        # The tentative-log suffix, drained idempotently across replicas.
        twins: Dict[Dot, Req] = {}
        for peer in source.replicas:
            if peer.node.crashed:
                # A crashed replica's volatile log is unreadable, but its
                # durable write-ahead log survives the crash by design.
                if peer.store is None:
                    continue
                known = peer.store.log("replica.wal").records()
            else:
                known = list(peer.committed) + list(peer.tentative)
            for req in known:
                if req.dot in committed_dots or req.dot == self._barrier_dot:
                    continue
                if req.op.name in MIGRATION_PROTOCOL_OPS:
                    continue
                keys = self.datatype.keys_of(req.op)
                moving = [key for key in keys if self.moves_key(key)]
                if not moving:
                    continue
                if req.dot in twins:
                    self.duplicate_drops += 1
                    continue
                if len(moving) != len(keys):
                    self.partial_key_requests += 1
                twins[req.dot] = req
        self._twins = sorted(twins.values())  # (timestamp, dot) order
        self._span(
            "barrier", "stage",
            moved_registers=self.moved_registers,
            suffix=len(self._twins),
            duplicate_drops=self.duplicate_drops,
        )

        self.deployment.sim.schedule(
            self.transfer_delay,
            self._install,
            label=f"migration install {self.reassignment.describe()}",
        )

    # ------------------------------------------------------------------
    # 3. Transfer & install through the destination TOB
    # ------------------------------------------------------------------
    def _install(self) -> None:
        if self.state != TRANSFERRING:
            return  # stranded while the transfer delay elapsed
        destination = self.deployment.shards[self.dst]
        try:
            replica = self._live_replica(destination, self.pid, role="destination")
        except MigrationError:
            # Every destination replica is down at transfer time. All
            # crash-stopped strands the migration (the crash-time watcher
            # normally beat this path); a recovering outage re-runs the
            # install at the first recovery instead of raising out of a
            # simulator callback.
            if all(node.crash_mode == "stop" for node in destination.nodes):
                self.fail(
                    f"{self.reassignment.describe()} stranded while "
                    f"{self.state}: every replica of the destination shard "
                    f"{destination.name} crash-stopped"
                )
                return
            retried = [False]

            def retry() -> None:
                if not retried[0] and self.state == TRANSFERRING:
                    retried[0] = True
                    self._install()

            for node in destination.nodes:
                if node.crashed and node.crash_mode == "recover":
                    node.register_crash_hooks(on_recover=retry)
            return
        self._install_pid = replica.pid
        install = Operation(
            MIGRATION_INSTALL_OP, (tuple(self._moving_payload),)
        )
        self._span("install", "barrier", pid=replica.pid)
        self._install_dot = replica.invoke(install, strong=True).dot
        self._hook_commit_listeners(
            destination, self._install_dot, self._on_install_committed
        )

    # ------------------------------------------------------------------
    # 4. Drain the suffix, activate the epoch
    # ------------------------------------------------------------------
    def _on_install_committed(self, _replica) -> None:
        if self.state != TRANSFERRING:
            return
        destination = self.deployment.shards[self.dst]
        # Re-invoke the drained suffix on the install's replica: the same
        # monotone clock stamped the install, so the twins sort after it
        # in every tentative order, and their TOB casts trail its already
        # committed position — the snapshot is never clobbered.
        replica = destination.replicas[self._install_pid]
        if replica.node.crashed:
            replica = self._live_replica(
                destination, self._install_pid, role="destination"
            )
        for req in self._twins:
            replica.invoke(req.op, strong=req.strong)
            self.transferred_requests += 1
        self.activated_at = self.deployment.sim.now
        self.deployment._activate_epoch(self)
        self.state = COMPLETE
        self._span(
            "activate", "install",
            transferred=self.transferred_requests,
            deferred=self.deferred_ops,
        )
        self._count("completed")
        callbacks, self._completion_callbacks = self._completion_callbacks, []
        for callback in callbacks:
            callback()
