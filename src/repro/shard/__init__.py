"""Sharded deployments: keyspace partitioning over many Bayou clusters.

The shard layer runs N independent Bayou consensus groups (one
:class:`~repro.core.cluster.BayouCluster` each) on one shared simulator
and gives clients a single keyspace-wide surface:

- :class:`ShardMap` / :class:`HashPartitioner` / :class:`RangePartitioner`
  — deterministic key → shard placement;
- :class:`ShardedCluster` — the deployment (shard-scoped partitions,
  crashes and convergence);
- :class:`ShardRouter` / :class:`ShardedSession` — shard-routed
  submission and closed-loop sessions;
- :class:`CrossShardCoordinator` / :class:`CrossShardFuture` — strong
  multi-key operations staged as prepare/commit pairs through each owner
  shard's TOB;
- :class:`Reassignment` / :class:`EpochShardMap` / :class:`VersionedShardMap`
  — epoch-versioned placement (immutable per-epoch snapshots chained
  from the base map);
- :class:`Migration` — the live resharding protocol behind
  ``ShardedCluster.split/merge/move`` (epoch barrier through the source
  TOB, committed-prefix snapshot + tentative-suffix handoff, activation).

Fluent entry points: ``Scenario(...).shards(n, partitioner=...)`` and
``Scenario(...).resharding(at, split=...)``.
"""

from repro.shard.coordinator import CrossShardCoordinator, CrossShardFuture
from repro.shard.deployment import ShardedCluster
from repro.shard.migration import Migration
from repro.shard.partitioner import (
    EpochShardMap,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    Reassignment,
    ShardMap,
    VersionedShardMap,
)
from repro.shard.router import ShardedSession, ShardRouter
from repro.shard.scenario import ShardedLiveRun, ShardedRunResult

__all__ = [
    "CrossShardCoordinator",
    "CrossShardFuture",
    "EpochShardMap",
    "HashPartitioner",
    "Migration",
    "Partitioner",
    "RangePartitioner",
    "Reassignment",
    "ShardMap",
    "ShardRouter",
    "ShardedCluster",
    "ShardedLiveRun",
    "ShardedRunResult",
    "ShardedSession",
    "VersionedShardMap",
]
