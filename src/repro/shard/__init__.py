"""Sharded deployments: keyspace partitioning over many Bayou clusters.

The shard layer runs N independent Bayou consensus groups (one
:class:`~repro.core.cluster.BayouCluster` each) on one shared simulator
and gives clients a single keyspace-wide surface:

- :class:`ShardMap` / :class:`HashPartitioner` / :class:`RangePartitioner`
  — deterministic key → shard placement;
- :class:`ShardedCluster` — the deployment (shard-scoped partitions,
  crashes and convergence);
- :class:`ShardRouter` / :class:`ShardedSession` — shard-routed
  submission and closed-loop sessions;
- :class:`CrossShardCoordinator` / :class:`CrossShardFuture` — strong
  multi-key operations staged as prepare/commit pairs through each owner
  shard's TOB;
- :class:`Reassignment` / :class:`EpochShardMap` / :class:`VersionedShardMap`
  — epoch-versioned placement (immutable per-epoch snapshots chained
  from the base map);
- :class:`Migration` — the live resharding protocol behind
  ``ShardedCluster.split/merge/move/isolate`` (epoch barrier through the
  source TOB, committed-prefix snapshot + tentative-suffix handoff,
  activation);
- :class:`PlacementController` / :class:`ShardStats` /
  :class:`PlacementPolicy` — autonomous load-aware placement control:
  the router exports per-shard load and hot keys into a metrics plane,
  and a sim-scheduled control loop drives move/isolate migrations when
  the load ratio crosses a threshold (:mod:`repro.shard.control`).

Fluent entry points: ``Scenario(...).shards(n, partitioner=...)``,
``Scenario(...).resharding(at, split=...)`` and
``Scenario(...).autoscale(policy=...)``.
"""

from repro.shard.control import (
    HotKeyIsolation,
    PlacementController,
    PlacementPolicy,
    PowerOfTwoChoices,
    ShardStats,
    SpaceSavingSketch,
)
from repro.shard.coordinator import CrossShardCoordinator, CrossShardFuture
from repro.shard.deployment import ShardedCluster
from repro.shard.migration import Migration
from repro.shard.partitioner import (
    EpochShardMap,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    Reassignment,
    ShardMap,
    VersionedShardMap,
)
from repro.shard.router import ShardedSession, ShardRouter
from repro.shard.scenario import ShardedLiveRun, ShardedRunResult

__all__ = [
    "CrossShardCoordinator",
    "CrossShardFuture",
    "EpochShardMap",
    "HashPartitioner",
    "HotKeyIsolation",
    "Migration",
    "Partitioner",
    "PlacementController",
    "PlacementPolicy",
    "PowerOfTwoChoices",
    "RangePartitioner",
    "Reassignment",
    "ShardMap",
    "ShardRouter",
    "ShardStats",
    "ShardedCluster",
    "ShardedLiveRun",
    "ShardedRunResult",
    "ShardedSession",
    "SpaceSavingSketch",
    "VersionedShardMap",
]
