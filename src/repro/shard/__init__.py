"""Sharded deployments: keyspace partitioning over many Bayou clusters.

The shard layer runs N independent Bayou consensus groups (one
:class:`~repro.core.cluster.BayouCluster` each) on one shared simulator
and gives clients a single keyspace-wide surface:

- :class:`ShardMap` / :class:`HashPartitioner` / :class:`RangePartitioner`
  — deterministic key → shard placement;
- :class:`ShardedCluster` — the deployment (shard-scoped partitions,
  crashes and convergence);
- :class:`ShardRouter` / :class:`ShardedSession` — shard-routed
  submission and closed-loop sessions;
- :class:`CrossShardCoordinator` / :class:`CrossShardFuture` — strong
  multi-key operations staged as prepare/commit pairs through each owner
  shard's TOB.

Fluent entry point: ``Scenario(...).shards(n, partitioner=...)``.
"""

from repro.shard.coordinator import CrossShardCoordinator, CrossShardFuture
from repro.shard.deployment import ShardedCluster
from repro.shard.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    ShardMap,
)
from repro.shard.router import ShardedSession, ShardRouter
from repro.shard.scenario import ShardedLiveRun, ShardedRunResult

__all__ = [
    "CrossShardCoordinator",
    "CrossShardFuture",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "ShardMap",
    "ShardRouter",
    "ShardedCluster",
    "ShardedLiveRun",
    "ShardedRunResult",
    "ShardedSession",
]
