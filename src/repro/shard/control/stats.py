"""The metrics plane: what the placement controller observes.

A :class:`ShardStats` sink is attached to a
:class:`~repro.shard.router.ShardRouter`
(:meth:`~repro.shard.router.ShardRouter.attach_stats`); from then on the
router and its :class:`~repro.shard.router.ShardedSession` clients export
three signals as traffic flows:

- **routed ops** — every shard-local submission increments its owner
  shard's counter and offers the operation's keys to a
  :class:`~repro.shard.control.topk.SpaceSavingSketch`, so per-shard
  load *and* the identity of the hot keys are both online;
- **deferred ops** — submissions parked by an in-flight migration
  (the ``MigrationInProgress`` retry path), the controller's own cost
  signal: aggressive rebalancing shows up here first;
- **weak-op staleness** — ``stable_time − response_time`` samples from
  session clients, the freshness price clients pay while placement is
  in flux.

Counters accumulate into the *live* window; :meth:`roll` closes it into
a ring buffer of :class:`StatsWindow` snapshots (bounded memory — the
streaming-first discipline the ROADMAP demands) and starts a fresh one.
The controller rolls once per control tick, then reads
:meth:`recent_loads` over the last few closed windows, so decisions see
recent traffic, not the whole run's history. Everything here is plain
counting on the routing path — no simulator events, no timers — and the
``on_activity`` hook is how a dormant controller learns that traffic
resumed without polling an idle deployment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Hashable, Iterable, List, Optional, Tuple

from repro.shard.control.topk import SpaceSavingSketch


@dataclass
class StatsWindow:
    """One closed observation interval of the metrics plane."""

    index: int
    start: float
    end: float
    #: Shard-local operations routed per shard during the window.
    routed: Tuple[int, ...]
    #: Submissions deferred by in-flight migrations during the window.
    deferred: int
    #: Weak-op staleness samples folded online: (count, sum, max).
    staleness_count: int
    staleness_sum: float
    staleness_max: float

    @property
    def total(self) -> int:
        return sum(self.routed)

    @property
    def mean_staleness(self) -> float:
        if self.staleness_count == 0:
            return 0.0
        return self.staleness_sum / self.staleness_count


class ShardStats:
    """Ring-buffered per-shard load counters plus a hot-key sketch."""

    def __init__(
        self,
        n_shards: int,
        *,
        window_limit: int = 64,
        topk_capacity: int = 32,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.sketch = SpaceSavingSketch(topk_capacity)
        #: Closed windows, oldest first, bounded by ``window_limit``.
        self.windows: Deque[StatsWindow] = deque(maxlen=window_limit)
        #: Lifetime totals (never reset; cheap scalars only).
        self.total_routed: List[int] = [0] * n_shards
        self.total_deferred = 0
        self.total_staleness_samples = 0
        #: Called on every recorded routed op — the controller's wake-up.
        self.on_activity: Optional[Callable[[], None]] = None
        self._window_index = 0
        self._window_start = 0.0
        self._live_routed: List[int] = [0] * n_shards
        self._live_deferred = 0
        self._live_staleness = (0, 0.0, 0.0)

    @property
    def n_shards(self) -> int:
        return len(self._live_routed)

    def ensure_shards(self, n_shards: int) -> None:
        """Grow the per-shard counters after a split spawned a shard."""
        while len(self._live_routed) < n_shards:
            self._live_routed.append(0)
            self.total_routed.append(0)

    # ------------------------------------------------------------------
    # Recording (the routing-path exports)
    # ------------------------------------------------------------------
    def record_op(self, shard: int, keys: Iterable[Hashable]) -> None:
        """One shard-local operation routed to ``shard`` touching ``keys``."""
        self.ensure_shards(shard + 1)
        self._live_routed[shard] += 1
        self.total_routed[shard] += 1
        for key in keys:
            self.sketch.offer(key)
        if self.on_activity is not None:
            self.on_activity()

    def record_deferred(self) -> None:
        """One submission parked by an in-flight migration."""
        self._live_deferred += 1
        self.total_deferred += 1

    def record_staleness(self, value: float) -> None:
        """One weak-op staleness sample (stable − response time)."""
        count, total, peak = self._live_staleness
        self._live_staleness = (count + 1, total + value, max(peak, value))
        self.total_staleness_samples += 1

    # ------------------------------------------------------------------
    # Windowing (the controller's read surface)
    # ------------------------------------------------------------------
    def roll(self, now: float) -> StatsWindow:
        """Close the live window into the ring and start a fresh one."""
        count, total, peak = self._live_staleness
        window = StatsWindow(
            index=self._window_index,
            start=self._window_start,
            end=now,
            routed=tuple(self._live_routed),
            deferred=self._live_deferred,
            staleness_count=count,
            staleness_sum=total,
            staleness_max=peak,
        )
        self.windows.append(window)
        self._window_index += 1
        self._window_start = now
        self._live_routed = [0] * len(self._live_routed)
        self._live_deferred = 0
        self._live_staleness = (0, 0.0, 0.0)
        return window

    def recent_loads(self, lookback: int = 3) -> List[float]:
        """Per-shard routed-op sums over the last ``lookback`` closed windows.

        Shards spawned mid-run appear with the zeros they earned: a
        window closed before the spawn simply has no column for them.
        """
        loads = [0.0] * self.n_shards
        for window in list(self.windows)[-lookback:]:
            for shard, routed in enumerate(window.routed):
                loads[shard] += routed
        return loads

    def hot_keys(self, n: int = 8) -> List[Tuple[Hashable, float]]:
        """The sketch's ``n`` heaviest keys as ``(key, estimated_count)``."""
        return [(key, count) for key, count, _error in self.sketch.top(n)]

    def describe(self) -> dict:
        """A JSON-able summary for reports and experiment artifacts."""
        return {
            "total_routed": list(self.total_routed),
            "total_deferred": self.total_deferred,
            "windows": len(self.windows),
            "hot_keys": [
                [repr(key), round(count, 2)] for key, count in self.hot_keys(5)
            ],
        }
