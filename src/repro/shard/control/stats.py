"""The metrics plane: what the placement controller observes.

A :class:`ShardStats` sink is attached to a
:class:`~repro.shard.router.ShardRouter`
(:meth:`~repro.shard.router.ShardRouter.attach_stats`); from then on the
router and its :class:`~repro.shard.router.ShardedSession` clients export
three signals as traffic flows:

- **routed ops** — every shard-local submission increments its owner
  shard's counter and offers the operation's keys to a
  :class:`~repro.shard.control.topk.SpaceSavingSketch`, so per-shard
  load *and* the identity of the hot keys are both online;
- **deferred ops** — submissions parked by an in-flight migration
  (the ``MigrationInProgress`` retry path), the controller's own cost
  signal: aggressive rebalancing shows up here first;
- **weak-op staleness** — ``stable_time − response_time`` samples from
  session clients, the freshness price clients pay while placement is
  in flux.

Counts live in a :class:`~repro.obs.metrics.MetricsRegistry` — the
stats plane *reads* instruments rather than owning ad-hoc counters, so
when a deployment's telemetry plane is armed the controller and the
observability exporters see the very same numbers (pass the plane's
registry in; a private one is created otherwise). :meth:`roll` closes
the live window by diffing cumulative counter values against the
snapshot taken at the previous roll, appends the delta to a ring buffer
of :class:`StatsWindow` snapshots (bounded memory — the streaming-first
discipline the ROADMAP demands) and starts a fresh one.
The controller rolls once per control tick, then reads
:meth:`recent_loads` over the last few closed windows, so decisions see
recent traffic, not the whole run's history. Everything here is plain
counting on the routing path — no simulator events, no timers — and the
``on_activity`` hook is how a dormant controller learns that traffic
resumed without polling an idle deployment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.obs.metrics import MetricsRegistry
from repro.shard.control.topk import SpaceSavingSketch


@dataclass
class StatsWindow:
    """One closed observation interval of the metrics plane."""

    index: int
    start: float
    end: float
    #: Shard-local operations routed per shard during the window.
    routed: Tuple[int, ...]
    #: Submissions deferred by in-flight migrations during the window.
    deferred: int
    #: Weak-op staleness samples folded online: (count, sum, max).
    staleness_count: int
    staleness_sum: float
    staleness_max: float

    @property
    def total(self) -> int:
        return sum(self.routed)

    @property
    def mean_staleness(self) -> float:
        if self.staleness_count == 0:
            return 0.0
        return self.staleness_sum / self.staleness_count


class ShardStats:
    """Ring-buffered per-shard load counters plus a hot-key sketch."""

    def __init__(
        self,
        n_shards: int,
        *,
        window_limit: int = 64,
        topk_capacity: int = 32,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.sketch = SpaceSavingSketch(topk_capacity)
        #: Where the counts live. Sharing the deployment telemetry
        #: plane's registry means the controller decides from the same
        #: instruments the exporters render.
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Closed windows, oldest first, bounded by ``window_limit``.
        self.windows: Deque[StatsWindow] = deque(maxlen=window_limit)
        #: Called on every recorded routed op — the controller's wake-up.
        self.on_activity: Optional[Callable[[], None]] = None
        self._window_index = 0
        self._window_start = 0.0
        self._c_routed: List[Any] = [
            self.registry.counter("repro_ops_routed", shard=f"S{i}")
            for i in range(n_shards)
        ]
        self._c_deferred = self.registry.counter("repro_routes_deferred")
        self._c_staleness_n = self.registry.counter(
            "repro_session_staleness_samples"
        )
        self._c_staleness_sum = self.registry.counter(
            "repro_session_staleness_sum"
        )
        # Cumulative values at the last roll; windows are deltas against
        # this mark, so a shared registry that already holds pre-attach
        # traffic starts the first window from here, not from zero.
        self._mark = self._cumulative()
        self._live_staleness_max = 0.0

    @property
    def n_shards(self) -> int:
        return len(self._c_routed)

    @property
    def total_routed(self) -> List[float]:
        """Lifetime routed ops per shard (cumulative counter values)."""
        return [counter.value for counter in self._c_routed]

    @property
    def total_deferred(self) -> float:
        return self._c_deferred.value

    @property
    def total_staleness_samples(self) -> float:
        return self._c_staleness_n.value

    def ensure_shards(self, n_shards: int) -> None:
        """Grow the per-shard counters after a split spawned a shard."""
        while len(self._c_routed) < n_shards:
            index = len(self._c_routed)
            self._c_routed.append(
                self.registry.counter("repro_ops_routed", shard=f"S{index}")
            )

    def _cumulative(self) -> Tuple[Tuple[float, ...], float, float, float]:
        return (
            tuple(counter.value for counter in self._c_routed),
            self._c_deferred.value,
            self._c_staleness_n.value,
            self._c_staleness_sum.value,
        )

    # ------------------------------------------------------------------
    # Recording (the routing-path exports)
    # ------------------------------------------------------------------
    def record_op(self, shard: int, keys: Iterable[Hashable]) -> None:
        """One shard-local operation routed to ``shard`` touching ``keys``."""
        self.ensure_shards(shard + 1)
        self._c_routed[shard].inc()
        for key in keys:
            self.sketch.offer(key)
        if self.on_activity is not None:
            self.on_activity()

    def record_deferred(self) -> None:
        """One submission parked by an in-flight migration."""
        self._c_deferred.inc()

    def record_staleness(self, value: float) -> None:
        """One weak-op staleness sample (stable − response time)."""
        self._c_staleness_n.inc()
        self._c_staleness_sum.inc(value)
        if value > self._live_staleness_max:
            self._live_staleness_max = value

    # ------------------------------------------------------------------
    # Windowing (the controller's read surface)
    # ------------------------------------------------------------------
    def roll(self, now: float) -> StatsWindow:
        """Close the live window into the ring and start a fresh one.

        The window is the *delta* between the registry's cumulative
        counters now and at the previous roll; only the staleness max —
        which no monotone counter can carry — lives outside the
        registry and is reset here.
        """
        routed, deferred, samples, total = self._cumulative()
        mark_routed, mark_deferred, mark_samples, mark_total = self._mark
        window = StatsWindow(
            index=self._window_index,
            start=self._window_start,
            end=now,
            routed=tuple(
                int(value - (mark_routed[i] if i < len(mark_routed) else 0.0))
                for i, value in enumerate(routed)
            ),
            deferred=int(deferred - mark_deferred),
            staleness_count=int(samples - mark_samples),
            staleness_sum=total - mark_total,
            staleness_max=self._live_staleness_max,
        )
        self.windows.append(window)
        self._window_index += 1
        self._window_start = now
        self._mark = (routed, deferred, samples, total)
        self._live_staleness_max = 0.0
        return window

    def recent_loads(self, lookback: int = 3) -> List[float]:
        """Per-shard routed-op sums over the last ``lookback`` closed windows.

        Shards spawned mid-run appear with the zeros they earned: a
        window closed before the spawn simply has no column for them.
        """
        loads = [0.0] * self.n_shards
        for window in list(self.windows)[-lookback:]:
            for shard, routed in enumerate(window.routed):
                loads[shard] += routed
        return loads

    def hot_keys(self, n: int = 8) -> List[Tuple[Hashable, float]]:
        """The sketch's ``n`` heaviest keys as ``(key, estimated_count)``."""
        return [(key, count) for key, count, _error in self.sketch.top(n)]

    def describe(self) -> dict:
        """A JSON-able summary for reports and experiment artifacts."""
        return {
            "total_routed": list(self.total_routed),
            "total_deferred": self.total_deferred,
            "windows": len(self.windows),
            "hot_keys": [
                [repr(key), round(count, 2)] for key, count in self.hot_keys(5)
            ],
        }
