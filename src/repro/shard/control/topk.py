"""Space-saving top-k: online heavy-hitter detection for hot keys.

The placement controller needs to know *which* keys are hot without
remembering every key ever routed — a 64-shard deployment under a
million-key workload cannot afford a per-key counter table. The
space-saving sketch (Metwally, Agrawal & El Abbadi, "Efficient
computation of frequent and top-k elements in data streams", ICDT 2005)
tracks at most ``capacity`` counters and guarantees that any key whose
true frequency exceeds ``N / capacity`` is present in the sketch, with a
per-entry overestimation bound (:attr:`Entry.error`).

The algorithm: a monitored key increments its counter; an unmonitored
key *replaces* the minimum-count entry, inheriting its count as the
error bound (the replaced key's hits may have been mis-attributed).
Everything is deterministic — ties are broken by insertion sequence, so
the same routed-op stream always produces the same sketch, which keeps
controller decisions replayable under a seed.

:meth:`SpaceSavingSketch.scale` multiplies every counter by a decay
factor. The controller applies it once per control tick, turning the
cumulative sketch into an exponentially-decayed recency view: a hotspot
that *moved* fades within a few ticks instead of dominating the top-k
forever — exactly what chasing a shifting Zipf hot key requires.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple


@dataclass
class Entry:
    """One monitored key: estimated count and overestimation bound."""

    key: Hashable
    count: float
    #: Upper bound on the overestimation of ``count`` (the count the
    #: evicted predecessor carried when this key took its slot). The true
    #: frequency lies in ``[count - error, count]``.
    error: float
    #: Insertion sequence — the deterministic tie-break for evictions.
    seq: int = field(default=0, compare=False)


class SpaceSavingSketch:
    """Bounded-memory top-k frequency sketch over a key stream."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: Dict[Hashable, Entry] = {}
        self._seq = itertools.count()
        #: Total weight offered (before any decay), for share estimates.
        self.offered = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def offer(self, key: Hashable, weight: float = 1.0) -> None:
        """Count one observation of ``key`` (``weight`` observations)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        self.offered += weight
        entry = self._entries.get(key)
        if entry is not None:
            entry.count += weight
            return
        if len(self._entries) < self.capacity:
            self._entries[key] = Entry(key, weight, 0.0, next(self._seq))
            return
        victim = min(self._entries.values(), key=lambda e: (e.count, e.seq))
        del self._entries[victim.key]
        # The newcomer inherits the victim's count as its error bound:
        # every hit the victim counted *might* have been the newcomer's.
        self._entries[key] = Entry(
            key, victim.count + weight, victim.count, next(self._seq)
        )

    def count(self, key: Hashable) -> float:
        """The estimated count of ``key`` (0.0 when unmonitored)."""
        entry = self._entries.get(key)
        return entry.count if entry is not None else 0.0

    def top(self, n: Optional[int] = None) -> List[Tuple[Hashable, float, float]]:
        """The ``n`` heaviest keys as ``(key, count, error)``, heaviest first.

        Deterministic: equal counts order by insertion sequence.
        """
        ranked = sorted(
            self._entries.values(), key=lambda e: (-e.count, e.seq)
        )
        if n is not None:
            ranked = ranked[:n]
        return [(entry.key, entry.count, entry.error) for entry in ranked]

    def scale(self, factor: float) -> None:
        """Decay every counter by ``factor`` (exponential recency).

        Entries decayed below one observation are dropped — they are
        indistinguishable from noise and their slots should go to fresh
        traffic.
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"decay factor must be in [0, 1], got {factor!r}")
        self.offered *= factor
        if factor == 0.0:
            self._entries.clear()
            return
        dead = []
        for entry in self._entries.values():
            entry.count *= factor
            entry.error *= factor
            if entry.count < 1.0:
                dead.append(entry.key)
        for key in dead:
            del self._entries[key]
