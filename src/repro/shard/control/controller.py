"""The placement control loop: observe → decide → migrate, autonomously.

PR 5 built the *mechanism* (live ``split``/``merge``/``move`` under
traffic); the :class:`PlacementController` is the *policy driver* that
closes the loop. It runs as a sim-scheduled periodic tick on the
deployment's own clock — deterministic under the seed like everything
else — and each tick:

1. **observes**: rolls the :class:`~repro.shard.control.stats.ShardStats`
   window, decays the hot-key sketch (recency), and builds a
   :class:`~repro.shard.control.strategy.PlacementView` of recent
   per-shard loads and hot keys;
2. **decides**: if the peak-to-mean load ratio crosses ``threshold``
   (with hysteresis — see below) and no migration is in flight, asks
   the configured policy for an action;
3. **drives**: executes the action through the existing epoch-versioned
   :class:`~repro.shard.migration.Migration` protocol
   (``deployment.move`` / ``deployment.isolate``), records it in
   :attr:`actions`, and arms the cooldown.

**Stability controls.** Three guards keep the loop from thrashing:
``threshold``/``hysteresis`` form a Schmitt trigger (act at
``imbalance ≥ threshold``, then stay disarmed until imbalance falls
back below ``hysteresis × threshold`` — a persistent borderline skew
triggers once, not every tick); ``cooldown`` rate-limits actions in
time; and each moved key is pinned for ``2 × cooldown`` so a policy can
never bounce the same key back and forth between two shards.

**Quiescence.** A naive periodic timer would keep the simulator alive
forever. The controller instead goes *dormant* after a tick that saw no
routed traffic and no in-flight migration; the stats sink's
``on_activity`` hook re-arms it on the next routed op. Idle deployments
therefore drain to quiescence exactly as before — the control loop
costs zero events while nothing flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, TYPE_CHECKING

from repro.errors import MigrationError
from repro.shard.control.stats import ShardStats
from repro.shard.control.strategy import (
    PlacementAction,
    PlacementPolicy,
    PlacementView,
    make_policy,
    single_key_range,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.deployment import ShardedCluster
    from repro.shard.migration import Migration
    from repro.shard.router import ShardRouter


@dataclass
class ControlAction:
    """One executed controller decision, for reports and assertions."""

    at: float
    tick: int
    action: PlacementAction
    migration: "Migration"

    def describe(self) -> str:
        return f"t={self.at:.1f} {self.action.describe()}"


class PlacementController:
    """Autonomous load-aware resharding over one sharded deployment."""

    def __init__(
        self,
        router: "ShardRouter",
        policy: Any = "power-of-two",
        *,
        stats: Optional[ShardStats] = None,
        interval: float = 2.0,
        threshold: float = 1.5,
        hysteresis: float = 0.8,
        cooldown: float = 6.0,
        lookback: int = 3,
        min_window_ops: int = 8,
        decay: float = 0.5,
        transfer_delay: float = 0.0,
        topk: int = 8,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        if threshold < 1.0:
            raise ValueError(f"threshold must be >= 1.0, got {threshold!r}")
        if not 0.0 < hysteresis <= 1.0:
            raise ValueError(f"hysteresis must be in (0, 1], got {hysteresis!r}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown!r}")
        self.router = router
        self.deployment: "ShardedCluster" = router.deployment
        self.policy: PlacementPolicy = make_policy(policy)
        telemetry = router.telemetry
        if stats is None:
            # Share the telemetry plane's registry when it is armed, so
            # the controller decides from the same instruments the
            # observability exporters render.
            stats = ShardStats(
                self.deployment.n_shards,
                registry=telemetry.registry if telemetry else None,
            )
        self.stats = stats
        if telemetry:
            self._m_ticks = telemetry.counter("repro_control_ticks")
            self._m_actions = telemetry.counter("repro_control_actions")
            self._m_held_back = telemetry.counter("repro_control_held_back")
        else:
            self._m_ticks = self._m_actions = self._m_held_back = None
        self.interval = interval
        self.threshold = threshold
        self.hysteresis = hysteresis
        self.cooldown = cooldown
        self.lookback = lookback
        #: Below this many routed ops per lookback window span, load
        #: ratios are noise and the controller holds still.
        self.min_window_ops = min_window_ops
        self.decay = decay
        self.transfer_delay = transfer_delay
        self.topk = topk
        #: Executed decisions, in order (the experiment read surface).
        self.actions: List[ControlAction] = []
        #: Control ticks evaluated (dormant periods excluded).
        self.ticks = 0
        #: Ticks that crossed the threshold but were vetoed (cooldown,
        #: hysteresis, in-flight migration, or the policy declined).
        self.held_back = 0
        self._armed = True
        self._cooldown_until = float("-inf")
        self._moved_at: Dict[Hashable, float] = {}
        self._started = False
        self._stopped = False
        self._dormant = True
        self._tick_scheduled = False
        self.stats.ensure_shards(self.deployment.n_shards)
        router.attach_stats(self.stats)
        self.stats.on_activity = self._wake

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the control loop (first tick one interval from now)."""
        if self._started:
            return
        self._started = True
        self._dormant = False
        self._schedule_tick()

    def stop(self) -> None:
        """Permanently stop the loop (pending tick events become no-ops)."""
        self._stopped = True

    def _wake(self) -> None:
        """Traffic resumed while dormant: re-arm the tick."""
        if self._started and self._dormant and not self._stopped:
            self._dormant = False
            self._schedule_tick()

    def _schedule_tick(self) -> None:
        if self._tick_scheduled:
            return
        self._tick_scheduled = True
        self.deployment.sim.schedule(
            self.interval, self._tick, label="placement controller tick"
        )

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._tick_scheduled = False
        if self._stopped:
            return
        now = self.deployment.sim.now
        window = self.stats.roll(now)
        migrating = bool(self.deployment.active_migrations)
        if window.total == 0 and not migrating:
            # Nothing flowed and nothing is in flight: go dormant. The
            # stats sink's on_activity hook revives the loop, so an idle
            # deployment quiesces instead of ticking forever.
            self._dormant = True
            return
        self.ticks += 1
        if self._m_ticks is not None:
            self._m_ticks.inc()
        view = self._view(now)
        ratio = view.imbalance
        if not self._armed and ratio < self.threshold * self.hysteresis:
            self._armed = True
        if ratio >= self.threshold and view.total_load >= self.min_window_ops:
            if (
                self._armed
                and not migrating
                and now >= self._cooldown_until
            ):
                action = self.policy.decide(view)
                if action is not None:
                    self._execute(action, now)
                else:
                    self._hold_back()
            else:
                self._hold_back()
        self.stats.sketch.scale(self.decay)
        self._schedule_tick()

    def _view(self, now: float) -> PlacementView:
        live = self.deployment.live_shard_indexes()
        self.stats.ensure_shards(self.deployment.n_shards)
        loads = self.stats.recent_loads(self.lookback)
        pin_horizon = now - 2 * self.cooldown
        self._moved_at = {
            key: at for key, at in self._moved_at.items() if at > pin_horizon
        }
        return PlacementView(
            now=now,
            loads={shard: loads[shard] for shard in live},
            hot_keys=self.stats.hot_keys(self.topk),
            owner=self.deployment.shard_map.owner,
            recently_moved=frozenset(self._moved_at),
            n_shards=len(live),
        )

    def _execute(self, action: PlacementAction, now: float) -> None:
        key_range = single_key_range(action.key)
        try:
            if action.kind == "isolate":
                migration = self.deployment.isolate(
                    key_range, src=action.src,
                    transfer_delay=self.transfer_delay,
                )
            elif action.kind == "move":
                assert action.dst is not None
                migration = self.deployment.move(
                    key_range, action.dst, src=action.src,
                    transfer_delay=self.transfer_delay,
                )
            else:
                raise MigrationError(
                    f"policy returned unknown action kind {action.kind!r}"
                )
        except MigrationError:
            # A refused migration (endpoint mid-handoff after all, shard
            # crashed, ...) is a held-back tick, not a crash: the loop
            # re-evaluates next interval against fresh state.
            self._hold_back()
            return
        self._moved_at[action.key] = now
        self._armed = False
        self._cooldown_until = now + self.cooldown
        if self._m_actions is not None:
            self._m_actions.inc()
        self.actions.append(ControlAction(now, self.ticks, action, migration))

    def _hold_back(self) -> None:
        self.held_back += 1
        if self._m_held_back is not None:
            self._m_held_back.inc()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """A JSON-able summary for experiment artifacts."""
        return {
            "policy": self.policy.describe(),
            "threshold": self.threshold,
            "cooldown": self.cooldown,
            "interval": self.interval,
            "ticks": self.ticks,
            "held_back": self.held_back,
            "actions": [record.describe() for record in self.actions],
            "stats": self.stats.describe(),
        }
