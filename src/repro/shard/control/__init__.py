"""Autonomous placement control: stats plane, policies, control loop.

The subsystem closing the loop PR 4/5 opened: `stats` observes per-shard
load and hot keys online, `strategy` turns an imbalance into a single
move/isolate decision, and `controller` drives that decision through the
epoch-versioned migration protocol on the live deployment.
"""

from repro.shard.control.controller import ControlAction, PlacementController
from repro.shard.control.stats import ShardStats, StatsWindow
from repro.shard.control.strategy import (
    POLICIES,
    HotKeyIsolation,
    PlacementAction,
    PlacementPolicy,
    PlacementView,
    PowerOfTwoChoices,
    make_policy,
    single_key_range,
)
from repro.shard.control.topk import SpaceSavingSketch

__all__ = [
    "ControlAction",
    "HotKeyIsolation",
    "POLICIES",
    "PlacementAction",
    "PlacementController",
    "PlacementPolicy",
    "PlacementView",
    "PowerOfTwoChoices",
    "ShardStats",
    "SpaceSavingSketch",
    "StatsWindow",
    "make_policy",
    "single_key_range",
]
