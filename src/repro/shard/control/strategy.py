"""Pluggable placement policies: how an imbalance becomes a migration.

A :class:`PlacementPolicy` is a pure decision function: given a
:class:`PlacementView` (the controller's snapshot of recent per-shard
loads, the hot-key sketch and current ownership), it returns either a
:class:`PlacementAction` or ``None``. Policies never touch the
deployment — the :class:`~repro.shard.control.controller.PlacementController`
owns thresholds, hysteresis, cooldowns and execution, so a policy stays
a few lines of deterministic arithmetic that is trivial to unit-test.

Two policies ship (select by instance or by name via
``Scenario.autoscale(policy=...)``):

- :class:`PowerOfTwoChoices` (``"power-of-two"``) — move the hottest
  key off the most-loaded shard onto the less loaded of the two
  least-loaded shards. The classical balls-into-bins result (Azar et
  al.) samples two random bins and picks the emptier; the deterministic
  simulator has no useful randomness to spend, so the two candidates
  are the two coldest shards — same shape, replayable decisions. Keeps
  the shard count fixed: pure load spreading.
- :class:`HotKeyIsolation` (``"hot-key-isolation"``) — when one key
  carries at least ``hot_share`` of its owner shard's recent traffic,
  no amount of spreading helps: wherever the key lands becomes the new
  hotspot. Spawn a fresh shard and hand it exactly that key (the
  deployment's :meth:`~repro.shard.deployment.ShardedCluster.isolate`),
  up to ``max_shards``; past the cap it degrades to moving the key to
  the coldest shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple


def single_key_range(key: Hashable) -> Tuple[Any, Any]:
    """The half-open range ``[lo, hi)`` containing exactly ``key``.

    Single-key moves ride the ordinary range-move migration, so the
    moving set must be expressible as a range. Strings get the smallest
    possible upper bound (``key + "\\x00"``); integers get ``key + 1``.
    """
    if isinstance(key, str):
        return (key, key + "\x00")
    if isinstance(key, bool):  # bool is an int; reject it explicitly
        raise TypeError(f"cannot form a key range over {key!r}")
    if isinstance(key, int):
        return (key, key + 1)
    raise TypeError(
        f"cannot form a single-key range for {key!r}; placement policies "
        "need str or int keys (orderable with an adjacent upper bound)"
    )


@dataclass(frozen=True)
class PlacementAction:
    """One decided resharding step, ready for the controller to execute."""

    #: ``"move"`` (re-home a key on an existing shard) or ``"isolate"``
    #: (spawn a fresh shard for the key).
    kind: str
    key: Hashable
    src: int
    #: Destination shard; None for ``"isolate"`` (the spawned slot).
    dst: Optional[int]
    reason: str

    def describe(self) -> str:
        target = "new shard" if self.dst is None else f"shard {self.dst}"
        return f"{self.kind} {self.key!r}: S{self.src} -> {target} ({self.reason})"


@dataclass
class PlacementView:
    """The controller's decision snapshot, handed to policies each tick."""

    now: float
    #: Recent routed-op load per *live* shard index (retired excluded).
    loads: Dict[int, float]
    #: ``(key, estimated_count)`` from the sketch, heaviest first.
    hot_keys: List[Tuple[Hashable, float]]
    #: Current-epoch ownership lookup.
    owner: Callable[[Hashable], int] = field(repr=False)
    #: Keys the controller moved recently (still inside their per-key
    #: cooldown) — policies must not bounce them again.
    recently_moved: frozenset = frozenset()
    #: Live shard count (spawn decisions compare against a cap).
    n_shards: int = 0

    @property
    def total_load(self) -> float:
        return sum(self.loads.values())

    @property
    def mean_load(self) -> float:
        return self.total_load / len(self.loads) if self.loads else 0.0

    @property
    def imbalance(self) -> float:
        """Peak-to-mean load ratio (1.0 = perfectly even)."""
        mean = self.mean_load
        return max(self.loads.values()) / mean if mean > 0 else 1.0

    def hottest_shard(self) -> int:
        """The most-loaded live shard (ties: lowest index)."""
        return max(sorted(self.loads), key=lambda s: self.loads[s])

    def coldest_shards(self, n: int = 1, *, excluding: Tuple[int, ...] = ()) -> List[int]:
        """The ``n`` least-loaded live shards (ties: lowest index)."""
        candidates = [s for s in sorted(self.loads) if s not in excluding]
        return sorted(candidates, key=lambda s: (self.loads[s], s))[:n]

    def movable_hot_keys(self, shard: int) -> List[Tuple[Hashable, float]]:
        """Sketch keys owned by ``shard``, skipping recently moved ones."""
        return [
            (key, count)
            for key, count in self.hot_keys
            if key not in self.recently_moved and self.owner(key) == shard
        ]


class PlacementPolicy:
    """Decides one placement action from a view (or declines)."""

    name = "abstract"

    def decide(self, view: PlacementView) -> Optional[PlacementAction]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class PowerOfTwoChoices(PlacementPolicy):
    """Move the hottest key of the hottest shard to the colder of the
    two least-loaded shards."""

    name = "power-of-two"

    def decide(self, view: PlacementView) -> Optional[PlacementAction]:
        if len(view.loads) < 2:
            return None
        hot = view.hottest_shard()
        candidates = view.movable_hot_keys(hot)
        if not candidates:
            return None
        key, count = candidates[0]
        choices = view.coldest_shards(2, excluding=(hot,))
        if not choices:
            return None
        # The "two choices": among the two coldest shards, pick the one
        # with less load (ties break toward the lower index — already
        # the coldest_shards order).
        dst = choices[0]
        # Moving the key must actually flatten the imbalance: if even the
        # coldest destination plus the key's traffic would exceed the
        # source's remainder, the move only relocates the hotspot.
        if view.loads[dst] + count > view.loads[hot]:
            return None
        return PlacementAction(
            kind="move",
            key=key,
            src=hot,
            dst=dst,
            reason=(
                f"shard {hot} at {view.loads[hot]:.0f} ops vs mean "
                f"{view.mean_load:.0f}; key carries {count:.0f}"
            ),
        )


class HotKeyIsolation(PlacementPolicy):
    """Give a dominating hot key its own shard (spawned live)."""

    name = "hot-key-isolation"

    def __init__(self, *, hot_share: float = 0.4, max_shards: int = 8) -> None:
        if not 0.0 < hot_share <= 1.0:
            raise ValueError(f"hot_share must be in (0, 1], got {hot_share!r}")
        if max_shards < 2:
            raise ValueError(f"max_shards must be >= 2, got {max_shards}")
        self.hot_share = hot_share
        self.max_shards = max_shards
        #: Keys this policy already isolated (their own shard exists).
        self.isolated: set = set()

    def describe(self) -> str:
        return f"{self.name}(hot_share={self.hot_share}, max_shards={self.max_shards})"

    def decide(self, view: PlacementView) -> Optional[PlacementAction]:
        for key, count in view.hot_keys:
            if key in view.recently_moved or key in self.isolated:
                continue
            src = view.owner(key)
            load = view.loads.get(src, 0.0)
            if load <= 0 or count / load < self.hot_share:
                # hot_keys is heaviest-first: if this key does not
                # dominate its shard, no later (lighter) key will.
                return None
            if view.n_shards < self.max_shards:
                self.isolated.add(key)
                return PlacementAction(
                    kind="isolate",
                    key=key,
                    src=src,
                    dst=None,
                    reason=(
                        f"key carries {count:.0f} of shard {src}'s "
                        f"{load:.0f} recent ops (≥ {self.hot_share:.0%})"
                    ),
                )
            # At the shard cap: fall back to spreading.
            choices = view.coldest_shards(1, excluding=(src,))
            if not choices or view.loads[choices[0]] + count > load:
                return None
            self.isolated.add(key)
            return PlacementAction(
                kind="move",
                key=key,
                src=src,
                dst=choices[0],
                reason=f"shard cap {self.max_shards} reached; spreading instead",
            )
        return None


#: Name → factory, for ``Scenario.autoscale(policy="...")``.
POLICIES = {
    PowerOfTwoChoices.name: PowerOfTwoChoices,
    HotKeyIsolation.name: HotKeyIsolation,
}


def make_policy(policy: Any) -> PlacementPolicy:
    """Resolve a policy instance or registry name to an instance."""
    if isinstance(policy, PlacementPolicy):
        return policy
    if isinstance(policy, str):
        try:
            return POLICIES[policy]()
        except KeyError:
            raise ValueError(
                f"unknown placement policy {policy!r} "
                f"(available: {sorted(POLICIES)})"
            ) from None
    raise TypeError(f"policy must be a PlacementPolicy or name, got {policy!r}")
