"""Replicated bank accounts.

A transactional workload with strongly order-sensitive semantics:
``withdraw`` and ``transfer`` fail on insufficient funds, so their return
values depend on every prior operation touching the account. Issued weakly
they exhibit temporary reordering (a withdrawal may tentatively succeed and
finally fail); issued strongly they are safe — the bank-transfers example
demonstrates exactly this trade-off.

Each account is a separate register, so transactions only undo-log the
accounts they touch.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from repro.datatypes.base import (
    CrossShardPlan,
    DataType,
    DbView,
    Operation,
    ShardedOp,
    UnknownOperationError,
    operation,
)


def _reg(account: str) -> str:
    return f"bank:{account}"


class BankAccounts(DataType):
    """A replicated map of account balances with guarded updates."""

    @operation
    def deposit(account: str, amount: int) -> Operation:
        """Add ``amount``; returns the new balance."""
        return Operation("deposit", (account, amount))

    @operation
    def withdraw(account: str, amount: int) -> Operation:
        """Remove ``amount`` if covered; returns the new balance or None."""
        return Operation("withdraw", (account, amount))

    @operation(readonly=True)
    def balance(account: str) -> Operation:
        """Return the balance (0 for a never-touched account)."""
        return Operation("balance", (account,))

    @operation
    def transfer(source: str, target: str, amount: int) -> Operation:
        """Atomically move ``amount``; returns True on success."""
        return Operation("transfer", (source, target, amount))

    def execute(self, op: Operation, view: DbView) -> Any:
        if op.name == "deposit":
            account, amount = op.args
            balance = view.read(_reg(account)) or 0
            view.write(_reg(account), balance + amount)
            return balance + amount
        if op.name == "withdraw":
            account, amount = op.args
            balance = view.read(_reg(account)) or 0
            if balance < amount:
                return None
            view.write(_reg(account), balance - amount)
            return balance - amount
        if op.name == "balance":
            return view.read(_reg(op.args[0])) or 0
        if op.name == "transfer":
            source, target, amount = op.args
            source_balance = view.read(_reg(source)) or 0
            if source_balance < amount:
                return False
            if source == target:
                # A self-transfer moves nothing (and must not mint money).
                return True
            target_balance = view.read(_reg(target)) or 0
            view.write(_reg(source), source_balance - amount)
            view.write(_reg(target), target_balance + amount)
            return True
        raise UnknownOperationError(f"BankAccounts has no operation {op.name!r}")

    # ------------------------------------------------------------------
    # Sharding hooks
    # ------------------------------------------------------------------
    def keys_of(self, op: Operation) -> Tuple[Hashable, ...]:
        if op.name == "transfer":
            return (op.args[0], op.args[1])
        return (op.args[0],)

    def registers_of(self, key: Hashable) -> Tuple[Hashable, ...]:
        return (_reg(key),)

    def cross_shard_plan(self, op: Operation) -> Optional[CrossShardPlan]:
        if op.name != "transfer":
            return None
        source, target, amount = op.args
        # Debit first (the guarded step), credit once the debit committed.
        # Between the two TOB positions the amount is in flight; the
        # conservation invariant (no money minted or lost) holds again at
        # quiescence, which E12's conservation leg asserts.
        return CrossShardPlan(
            prepare=(ShardedOp(source, BankAccounts.withdraw(source, amount)),),
            commit=(ShardedOp(target, BankAccounts.deposit(target, amount)),),
            decide=lambda values: (values[0] is not None, values[0] is not None),
        )
