"""The original Bayou's dependency checks and merge procedures, emulated.

The 1995 Bayou system attached to every write a *dependency check* (a query
that must hold for the write to apply) and a *merge procedure* (application
logic to resolve the conflict otherwise). The PODC'19 paper abstracts these
away, noting they "can be emulated on the level of operation specification"
(Section 2.1). This data type performs that emulation for Bayou's flagship
application, the meeting-room scheduler:

- ``reserve(user, alternatives)`` carries its dependency check (is the
  preferred slot free?) and its merge procedure (fall through the
  alternative slots in preference order) inside one deterministic
  transaction;
- because the whole conflict resolution is *inside* the operation, it is
  re-evaluated automatically on every speculative rollback/re-execution —
  a tentative reservation may silently migrate to an alternative slot when
  the final order differs from the tentative one, which is precisely the
  user experience the original Bayou paper describes.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.datatypes.base import (
    DataType,
    DbView,
    Operation,
    UnknownOperationError,
    operation,
)


def _slot_reg(slot: str) -> str:
    return f"sched:slot:{slot}"


class MeetingScheduler(DataType):
    """Room reservations with per-operation dependency check + merge."""

    @operation
    def reserve(user: str, alternatives: Tuple[str, ...]) -> Operation:
        """Reserve the first free slot among ``alternatives``.

        Returns the granted slot, or None when every alternative is taken
        (the merge procedure's give-up case).
        """
        return Operation("reserve", (user, tuple(alternatives)))

    @operation
    def cancel(user: str, slot: str) -> Operation:
        """Free ``slot`` if (and only if) ``user`` holds it; returns bool."""
        return Operation("cancel", (user, slot))

    @operation(readonly=True)
    def who(slot: str) -> Operation:
        """Return the holder of ``slot`` (or None)."""
        return Operation("who", (slot,))

    @operation(readonly=True)
    def schedule(*slots: str) -> Operation:
        """Return a tuple of (slot, holder) pairs for the given slots."""
        return Operation("schedule", (tuple(slots),))

    def execute(self, op: Operation, view: DbView) -> Any:
        if op.name == "reserve":
            user, alternatives = op.args
            for slot in alternatives:
                # Dependency check: the slot must be free.
                if view.read(_slot_reg(slot)) is None:
                    # Merge procedure outcome: take this alternative.
                    view.write(_slot_reg(slot), user)
                    return slot
            return None
        if op.name == "cancel":
            user, slot = op.args
            if view.read(_slot_reg(slot)) == user:
                view.write(_slot_reg(slot), None)
                return True
            return False
        if op.name == "who":
            return view.read(_slot_reg(op.args[0]))
        if op.name == "schedule":
            (slots,) = op.args
            return tuple((slot, view.read(_slot_reg(slot))) for slot in slots)
        raise UnknownOperationError(
            f"MeetingScheduler has no operation {op.name!r}"
        )
