"""Base classes for replicated data types.

The paper models every request as an arbitrary deterministic transaction
that can be decomposed into register reads and writes plus local computation
(Appendix A.2.2). We mirror that: an :class:`Operation` names a transaction
of a :class:`DataType`; executing it means calling ``execute(op, view)``
where ``view`` exposes ``read(register_id)`` / ``write(register_id, value)``.

The *same* ``execute`` implementation serves three purposes:

1. live execution inside :class:`repro.core.state_object.StateObject`
   (which wraps the view to build undo logs),
2. the sequential specification ``F(op, context)`` used by the correctness
   checkers (replay the context's operations on a fresh
   :class:`PlainDb` in the context's order, then execute ``op``), and
3. plain single-copy execution in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Operation:
    """An invocable transaction: a name plus arguments.

    Operations are immutable and hashable so they can be carried inside
    request messages, used as dictionary keys and compared structurally.
    """

    name: str
    args: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({rendered})"


class DbView:
    """The read/write interface an operation executes against."""

    def read(self, register_id: Hashable) -> Any:
        """Return the current value of a register (None if never written)."""
        raise NotImplementedError

    def write(self, register_id: Hashable, value: Any) -> None:
        """Overwrite a register."""
        raise NotImplementedError


class PlainDb(DbView):
    """A direct, in-memory register map (no undo tracking)."""

    def __init__(self, initial: Optional[Dict[Hashable, Any]] = None) -> None:
        self.data: Dict[Hashable, Any] = dict(initial or {})

    def read(self, register_id: Hashable) -> Any:
        return self.data.get(register_id)

    def write(self, register_id: Hashable, value: Any) -> None:
        self.data[register_id] = value


class UnknownOperationError(ValueError):
    """Raised when a data type is asked to execute an operation it lacks."""


class DataType:
    """Base class for replicated data types (``F`` in the paper).

    Subclasses define ``READONLY`` (names of read-only operations, per the
    Section 3.4 requirement that read-only operations do not influence other
    operations' return values) and implement :meth:`execute`.
    """

    #: Names of the read-only operations of this type.
    READONLY: frozenset = frozenset()

    #: Human-readable type name (defaults to the class name).
    @property
    def type_name(self) -> str:
        return type(self).__name__

    def execute(self, op: Operation, view: DbView) -> Any:
        """Run ``op`` against ``view``; return the operation's response."""
        raise NotImplementedError

    def is_readonly(self, op: Operation) -> bool:
        """True if ``op`` is a read-only operation of this type."""
        return op.name in self.READONLY

    def operations(self) -> frozenset:
        """The full set of operation names (override for validation)."""
        return self.READONLY

    # ------------------------------------------------------------------
    # Sequential specification
    # ------------------------------------------------------------------
    def replay(
        self,
        ops: Iterable[Operation],
        db: Optional[PlainDb] = None,
    ) -> PlainDb:
        """Execute ``ops`` in order on a fresh (or given) database."""
        db = db if db is not None else PlainDb()
        for op in ops:
            self.execute(op, db)
        return db

    def spec_return(
        self,
        op: Operation,
        preceding: Sequence[Operation],
    ) -> Any:
        """The return value of ``op`` after ``preceding`` (the spec ``F``).

        This is the sequential specification used to *check* executions:
        ``F(op, C)`` where the context ``C`` is linearised into the sequence
        ``preceding`` by the (perceived) arbitration order. Read-only
        operations in ``preceding`` may be included or excluded freely — by
        the Section 3.4 requirement they cannot change the result, which the
        property tests verify for every data type.
        """
        db = self.replay(preceding)
        return self.execute(op, db)
