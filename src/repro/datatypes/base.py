"""Base classes for replicated data types.

The paper models every request as an arbitrary deterministic transaction
that can be decomposed into register reads and writes plus local computation
(Appendix A.2.2). We mirror that: an :class:`Operation` names a transaction
of a :class:`DataType`; executing it means calling ``execute(op, view)``
where ``view`` exposes ``read(register_id)`` / ``write(register_id, value)``.

The *same* ``execute`` implementation serves three purposes:

1. live execution inside :class:`repro.core.state_object.StateObject`
   (which wraps the view to build undo logs),
2. the sequential specification ``F(op, context)`` used by the correctness
   checkers (replay the context's operations on a fresh
   :class:`PlainDb` in the context's order, then execute ``op``), and
3. plain single-copy execution in tests.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import UnknownOperationError  # noqa: F401  (historical home)


@dataclass(frozen=True)
class Operation:
    """An invocable transaction: a name plus arguments.

    Operations are immutable and hashable so they can be carried inside
    request messages, used as dictionary keys and compared structurally.
    """

    name: str
    args: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({rendered})"


class DbView:
    """The read/write interface an operation executes against."""

    def read(self, register_id: Hashable) -> Any:
        """Return the current value of a register (None if never written)."""
        raise NotImplementedError

    def write(self, register_id: Hashable, value: Any) -> None:
        """Overwrite a register."""
        raise NotImplementedError


class PlainDb(DbView):
    """A direct, in-memory register map (no undo tracking)."""

    def __init__(self, initial: Optional[Dict[Hashable, Any]] = None) -> None:
        self.data: Dict[Hashable, Any] = dict(initial or {})

    def read(self, register_id: Hashable) -> Any:
        return self.data.get(register_id)

    def write(self, register_id: Hashable, value: Any) -> None:
        self.data[register_id] = value


#: Operation names of the shard-migration protocol. They never reach
#: ``DataType.execute``: :class:`~repro.core.state_object.StateObject`
#: intercepts them (the barrier is a pure no-op marking an epoch's
#: position in the source shard's TOB; the install writes a migrated
#: register snapshot, with normal undo tracking, at a fixed position in
#: the destination shard's order). They are invoked directly on replicas
#: — never through the cluster's client surface — so they hold no
#: history events and the guarantee checkers never see them.
EPOCH_BARRIER_OP = "__epoch_barrier__"
MIGRATION_INSTALL_OP = "__migration_install__"

#: Both protocol ops, for "skip these" checks in log scans.
MIGRATION_PROTOCOL_OPS = frozenset({EPOCH_BARRIER_OP, MIGRATION_INSTALL_OP})


@dataclass(frozen=True)
class ShardedOp:
    """One staged sub-operation of a cross-shard plan.

    ``key`` names the register-group the sub-operation touches; a sharded
    deployment routes it to the shard owning that key.
    """

    key: Hashable
    op: "Operation"


def _all_succeeded(prepare_values: Tuple[Any, ...]) -> Tuple[bool, Any]:
    """Default decision: commit iff no prepare returned None/False."""
    ok = all(value is not None and value is not False for value in prepare_values)
    return ok, ok


@dataclass(frozen=True)
class CrossShardPlan:
    """A prepare/commit decomposition of one multi-key operation.

    When a multi-key operation's keys land on different shards it cannot
    execute atomically inside one TOB; the plan stages it instead:

    1. every ``prepare`` sub-operation is submitted *strongly* through its
       owner shard's TOB (these are the guarded steps — e.g. the debit of
       a transfer — and may fail);
    2. once all prepares are committed, ``decide(prepare_values)`` returns
       ``(success, rval)`` — ``rval`` is the whole operation's response;
    3. on success the ``commit`` sub-operations are submitted strongly to
       their owner shards; on failure the ``abort`` compensations are
       (for plans whose prepares mutate state even when refused).

    Conservation-style invariants (no money minted or lost) hold at
    quiescence: between the prepare and commit TOB positions the moved
    quantity is "in flight", which weak reads may observe as staleness.
    """

    prepare: Tuple[ShardedOp, ...] = ()
    commit: Tuple[ShardedOp, ...] = ()
    abort: Tuple[ShardedOp, ...] = ()
    decide: Callable[[Tuple[Any, ...]], Tuple[bool, Any]] = _all_succeeded


@dataclass(frozen=True)
class OperationSpec:
    """Metadata of one declared operation of a :class:`DataType`.

    ``min_arity``/``max_arity`` bound the number of positional arguments the
    constructor accepts (``max_arity`` is None for variadic constructors).
    """

    name: str
    readonly: bool
    min_arity: int
    max_arity: Optional[int]
    doc: str = ""


#: Attribute names of the typed-proxy hosts (Session, ScenarioClient, and
#: the DataType machinery itself). An operation with one of these names
#: could never be reached through ``session.<name>(...)`` — it would
#: resolve to the host attribute instead — so declaration fails fast.
RESERVED_OPERATION_NAMES = frozenset(
    {
        # Session / ScenarioClient public surface
        "call",
        "cluster",
        "completed",
        "futures",
        "idle",
        "latencies",
        "on_response",
        "op",
        "ops",
        "pid",
        "scenario",
        "strong",
        "submit",
        "think_time",
        "weak",
        # DataType machinery
        "cross_shard_plan",
        "execute",
        "is_readonly",
        "keys_of",
        "registers_of",
        "op_spec",
        "operation_specs",
        "operations",
        "replay",
        "spec_return",
        "type_name",
    }
)


class operation:
    """Descriptor declaring a typed operation constructor on a DataType.

    Used either bare or with a ``readonly`` flag::

        class Counter(DataType):
            @operation
            def increment(amount: int = 1) -> Operation: ...

            @operation(readonly=True)
            def read() -> Operation: ...

    The wrapped function builds the wire-level :class:`Operation`; the
    descriptor registers an :class:`OperationSpec` on the owning class, so
    :meth:`DataType.operations` and :meth:`DataType.is_readonly` derive from
    the declarations instead of hand-maintained name sets. Accessing the
    attribute (``Counter.increment`` or ``counter.increment``) returns the
    plain constructor, so the historical ``DataType.op(...)`` call style
    keeps working unchanged — and session proxies resolve the same registry
    to offer ``session.increment(1)`` directly.
    """

    def __init__(
        self,
        func: Optional[Callable[..., "Operation"]] = None,
        *,
        readonly: bool = False,
    ) -> None:
        self.readonly = readonly
        self.func: Optional[Callable[..., "Operation"]] = None
        self.spec: Optional[OperationSpec] = None
        if func is not None:
            self._bind(func)

    def __call__(self, func: Callable[..., "Operation"]) -> "operation":
        """Support the ``@operation(readonly=True)`` decorator form."""
        self._bind(func)
        return self

    def _bind(self, func: Callable[..., "Operation"]) -> None:
        if isinstance(func, staticmethod):  # tolerate doubled decoration
            func = func.__func__
        self.func = func
        self.__doc__ = func.__doc__

    def __set_name__(self, owner: type, name: str) -> None:
        assert self.func is not None, f"@operation {name} wraps no constructor"
        if name in RESERVED_OPERATION_NAMES or name.startswith("_"):
            raise ValueError(
                f"{owner.__name__}.{name}: operation name {name!r} is "
                "reserved (it would be shadowed by the session/client "
                "proxy surface)"
            )
        min_arity, max_arity = _constructor_arity(self.func)
        self.spec = OperationSpec(
            name=name,
            readonly=self.readonly,
            min_arity=min_arity,
            max_arity=max_arity,
            doc=inspect.getdoc(self.func) or "",
        )
        if "_declared_specs" not in owner.__dict__:
            owner._declared_specs = {}
        owner.__dict__["_declared_specs"][name] = self.spec

    def __get__(self, instance: Any, owner: Optional[type] = None):
        return self.func


def _constructor_arity(func: Callable[..., Any]) -> Tuple[int, Optional[int]]:
    """The (min, max) positional-argument counts of an op constructor."""
    min_arity = 0
    max_arity: Optional[int] = 0
    for parameter in inspect.signature(func).parameters.values():
        if parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            max_arity = None
        elif parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            if max_arity is not None:
                max_arity += 1
            if parameter.default is inspect.Parameter.empty:
                min_arity += 1
    return min_arity, max_arity


class DataType:
    """Base class for replicated data types (``F`` in the paper).

    Subclasses declare their operations with the :class:`operation`
    descriptor and implement :meth:`execute`. The descriptor registry drives
    :meth:`operations` and :meth:`is_readonly` (the Section 3.4 requirement
    that read-only operations do not influence other operations' return
    values); ``READONLY`` is derived from the same registry for subclasses
    that do not set it explicitly, so legacy code reading it keeps working.
    """

    #: Names of the read-only operations of this type (derived from the
    #: ``@operation(readonly=True)`` declarations unless set explicitly).
    READONLY: frozenset = frozenset()

    #: name -> OperationSpec, merged across the MRO (set by __init_subclass__).
    _op_registry: Dict[str, OperationSpec] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        merged: Dict[str, OperationSpec] = {}
        for klass in reversed(cls.__mro__):
            merged.update(klass.__dict__.get("_declared_specs", {}))
        cls._op_registry = merged
        if merged and "READONLY" not in cls.__dict__:
            cls.READONLY = frozenset(
                spec.name for spec in merged.values() if spec.readonly
            )

    #: Human-readable type name (defaults to the class name).
    @property
    def type_name(self) -> str:
        return type(self).__name__

    def execute(self, op: Operation, view: DbView) -> Any:
        """Run ``op`` against ``view``; return the operation's response."""
        raise NotImplementedError

    def is_readonly(self, op: Operation) -> bool:
        """True if ``op`` is a read-only operation of this type."""
        spec = self._op_registry.get(op.name)
        if spec is not None:
            return spec.readonly
        return op.name in self.READONLY

    def operations(self) -> frozenset:
        """The full set of operation names (from the descriptor registry)."""
        if self._op_registry:
            return frozenset(self._op_registry)
        return self.READONLY

    # ------------------------------------------------------------------
    # Sharding hooks
    # ------------------------------------------------------------------
    def keys_of(self, op: Operation) -> Tuple[Hashable, ...]:
        """The keys (register groups) ``op`` touches, for shard routing.

        The default — an empty tuple — declares the type *unkeyed*: its
        whole state is one unit, so a sharded deployment routes every
        operation to the home shard (shard 0). Keyed types (``KVStore``,
        ``BankAccounts``) override this so a ``ShardMap`` can place each
        key's registers on exactly one shard.
        """
        return ()

    def registers_of(self, key: Hashable) -> Tuple[Hashable, ...]:
        """The register ids holding ``key``'s state, for live migration.

        A resharding handoff moves a key by copying exactly these
        registers out of the source shard's committed-prefix snapshot
        into the destination's. Keyed types (``KVStore``,
        ``BankAccounts``) override this; the default raises — an unkeyed
        type's state is one indivisible unit, so there is nothing a
        migration could carve out per key.
        """
        from repro.errors import MigrationError

        raise MigrationError(
            f"{self.type_name} declares no per-key register groups "
            "(registers_of); only keyed data types support live key "
            "migration"
        )

    def cross_shard_plan(self, op: Operation) -> Optional[CrossShardPlan]:
        """The prepare/commit staging of a multi-key ``op`` (or None).

        Only consulted when :meth:`keys_of` maps ``op`` onto more than one
        shard; returning None refuses the operation (the router raises
        :class:`~repro.errors.CrossShardError`).
        """
        return None

    @classmethod
    def operation_specs(cls) -> Dict[str, OperationSpec]:
        """The declared :class:`OperationSpec` registry of this type."""
        return dict(cls._op_registry)

    @classmethod
    def op_spec(cls, name: str) -> OperationSpec:
        """The spec of one operation; raises UnknownOperationError."""
        try:
            return cls._op_registry[name]
        except KeyError:
            raise UnknownOperationError(
                f"{cls.__name__} has no operation {name!r}"
            ) from None

    # ------------------------------------------------------------------
    # Sequential specification
    # ------------------------------------------------------------------
    def replay(
        self,
        ops: Iterable[Operation],
        db: Optional[PlainDb] = None,
    ) -> PlainDb:
        """Execute ``ops`` in order on a fresh (or given) database."""
        db = db if db is not None else PlainDb()
        for op in ops:
            self.execute(op, db)
        return db

    def spec_return(
        self,
        op: Operation,
        preceding: Sequence[Operation],
    ) -> Any:
        """The return value of ``op`` after ``preceding`` (the spec ``F``).

        This is the sequential specification used to *check* executions:
        ``F(op, C)`` where the context ``C`` is linearised into the sequence
        ``preceding`` by the (perceived) arbitration order. Read-only
        operations in ``preceding`` may be included or excluded freely — by
        the Section 3.4 requirement they cannot change the result, which the
        property tests verify for every data type.
        """
        db = self.replay(preceding)
        return self.execute(op, db)
