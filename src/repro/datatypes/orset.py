"""A replicated set.

Sequentially specified (the arbitration order linearises adds and removes;
the paper's framework resolves what OR-set semantics would resolve with
concurrency-aware specs). ``add`` returns whether the element was newly
inserted — order-sensitive, like ``putIfAbsent``.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.datatypes.base import (
    DataType,
    DbView,
    Operation,
    UnknownOperationError,
    operation,
)

_MEMBERS = "set:members"


class SetType(DataType):
    """A replicated set of hashable elements."""

    @operation
    def add(element: Hashable) -> Operation:
        """Insert ``element``; returns True if it was not already present."""
        return Operation("add", (element,))

    @operation
    def remove(element: Hashable) -> Operation:
        """Remove ``element``; returns True if it was present."""
        return Operation("remove", (element,))

    @operation(readonly=True)
    def contains(element: Hashable) -> Operation:
        """Return membership of ``element``."""
        return Operation("contains", (element,))

    @operation(readonly=True)
    def elements() -> Operation:
        """Return the sorted tuple of elements."""
        return Operation("elements")

    @operation(readonly=True)
    def size() -> Operation:
        """Return the cardinality."""
        return Operation("size")

    def execute(self, op: Operation, view: DbView) -> Any:
        members: frozenset = view.read(_MEMBERS) or frozenset()
        if op.name == "add":
            element = op.args[0]
            if element in members:
                return False
            view.write(_MEMBERS, members | {element})
            return True
        if op.name == "remove":
            element = op.args[0]
            if element not in members:
                return False
            view.write(_MEMBERS, members - {element})
            return True
        if op.name == "contains":
            return op.args[0] in members
        if op.name == "elements":
            return tuple(sorted(members, key=repr))
        if op.name == "size":
            return len(members)
        raise UnknownOperationError(f"SetType has no operation {op.name!r}")
