"""A replicated set.

Sequentially specified (the arbitration order linearises adds and removes;
the paper's framework resolves what OR-set semantics would resolve with
concurrency-aware specs). ``add`` returns whether the element was newly
inserted — order-sensitive, like ``putIfAbsent``.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.datatypes.base import DataType, DbView, Operation, UnknownOperationError

_MEMBERS = "set:members"


class SetType(DataType):
    """A replicated set of hashable elements."""

    READONLY = frozenset({"contains", "elements", "size"})

    @staticmethod
    def add(element: Hashable) -> Operation:
        """Insert ``element``; returns True if it was not already present."""
        return Operation("add", (element,))

    @staticmethod
    def remove(element: Hashable) -> Operation:
        """Remove ``element``; returns True if it was present."""
        return Operation("remove", (element,))

    @staticmethod
    def contains(element: Hashable) -> Operation:
        """Return membership of ``element``."""
        return Operation("contains", (element,))

    @staticmethod
    def elements() -> Operation:
        """Return the sorted tuple of elements."""
        return Operation("elements")

    @staticmethod
    def size() -> Operation:
        """Return the cardinality."""
        return Operation("size")

    def operations(self) -> frozenset:
        return frozenset({"add", "remove", "contains", "elements", "size"})

    def execute(self, op: Operation, view: DbView) -> Any:
        members: frozenset = view.read(_MEMBERS) or frozenset()
        if op.name == "add":
            element = op.args[0]
            if element in members:
                return False
            view.write(_MEMBERS, members | {element})
            return True
        if op.name == "remove":
            element = op.args[0]
            if element not in members:
                return False
            view.write(_MEMBERS, members - {element})
            return True
        if op.name == "contains":
            return op.args[0] in members
        if op.name == "elements":
            return tuple(sorted(members, key=repr))
        if op.name == "size":
            return len(members)
        raise UnknownOperationError(f"SetType has no operation {op.name!r}")
