"""A single read/write register.

The simplest data type in the paper: blind writes commute with nothing but
expose no return-value dependence, so — as noted after Theorem 1 — a single
register *can* achieve ``BEC(weak) ∧ Seq(strong)``. The guarantee-matrix
experiment (E7) uses it as the positive control.
"""

from __future__ import annotations

from typing import Any

from repro.datatypes.base import (
    DataType,
    DbView,
    Operation,
    UnknownOperationError,
    operation,
)

_VALUE = "register:value"


class Register(DataType):
    """A replicated register with ``read``, ``write`` and ``swap``."""

    @operation(readonly=True)
    def read() -> Operation:
        """Return the current value."""
        return Operation("read")

    @operation
    def write(value: Any) -> Operation:
        """Blindly overwrite the register; returns None (a true blind write)."""
        return Operation("write", (value,))

    @operation
    def swap(value: Any) -> Operation:
        """Overwrite the register and return the *previous* value."""
        return Operation("swap", (value,))

    def execute(self, op: Operation, view: DbView) -> Any:
        if op.name == "read":
            return view.read(_VALUE)
        if op.name == "write":
            view.write(_VALUE, op.args[0])
            return None
        if op.name == "swap":
            old = view.read(_VALUE)
            view.write(_VALUE, op.args[0])
            return old
        raise UnknownOperationError(f"Register has no operation {op.name!r}")
