"""Replicated data types (the specification ``F`` from Section 3.4).

Each data type provides:

- **operations** (constructed via classmethods, e.g. ``RList.append("x")``),
- an **instruction-level executor** ``execute(op, view)`` that expresses the
  operation as a composition of register reads/writes plus local computation
  (the model Algorithm 3 of the paper assumes), and
- a **sequential specification** ``spec_return(op, preceding)`` used by the
  formal-framework checkers to compute the correct return value of ``op``
  after an arbitrary sequence of preceding operations.

Because both the live replicas and the checkers funnel through the same
``execute`` code, the checker verifies the *protocol* (ordering, rollback,
re-execution), not a redundant re-implementation of the data type.
"""

from repro.datatypes.base import DataType, DbView, Operation, PlainDb
from repro.datatypes.bank import BankAccounts
from repro.datatypes.counter import Counter
from repro.datatypes.kvstore import KVStore
from repro.datatypes.orset import SetType
from repro.datatypes.register import Register
from repro.datatypes.scheduler import MeetingScheduler
from repro.datatypes.rlist import RList

__all__ = [
    "BankAccounts",
    "Counter",
    "DataType",
    "DbView",
    "KVStore",
    "MeetingScheduler",
    "Operation",
    "PlainDb",
    "Register",
    "RList",
    "SetType",
]
