"""The replicated list from the paper's running example (Figures 1 and 2).

``append`` and ``duplicate`` return the *modified state of the list* rendered
as a string (the paper writes ``append(x) → aax``), and ``duplicate()`` is
"equivalent to atomically executing append(read())".
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.datatypes.base import (
    DataType,
    DbView,
    Operation,
    UnknownOperationError,
    operation,
)

_ITEMS = "list:items"


def _render(items: Tuple[Any, ...]) -> str:
    """Render the list the way the paper does: concatenated elements."""
    return "".join(str(item) for item in items)


class RList(DataType):
    """A replicated list of elements with paper-style string responses."""

    @operation
    def append(element: Any) -> Operation:
        """Append ``element``; returns the modified list as a string."""
        return Operation("append", (element,))

    @operation
    def duplicate() -> Operation:
        """Append a copy of the list to itself; returns the modified list."""
        return Operation("duplicate")

    @operation(readonly=True)
    def read() -> Operation:
        """Return the list as a string."""
        return Operation("read")

    @operation(readonly=True)
    def get_first() -> Operation:
        """Return the first element, or None if empty."""
        return Operation("get_first")

    @operation(readonly=True)
    def size() -> Operation:
        """Return the number of elements."""
        return Operation("size")

    @operation
    def remove_last() -> Operation:
        """Remove and return the last element (None if empty)."""
        return Operation("remove_last")

    def execute(self, op: Operation, view: DbView) -> Any:
        items: Tuple[Any, ...] = view.read(_ITEMS) or ()
        if op.name == "append":
            items = items + (op.args[0],)
            view.write(_ITEMS, items)
            return _render(items)
        if op.name == "duplicate":
            items = items + items
            view.write(_ITEMS, items)
            return _render(items)
        if op.name == "read":
            return _render(items)
        if op.name == "get_first":
            return items[0] if items else None
        if op.name == "size":
            return len(items)
        if op.name == "remove_last":
            if not items:
                return None
            view.write(_ITEMS, items[:-1])
            return items[-1]
        raise UnknownOperationError(f"RList has no operation {op.name!r}")
