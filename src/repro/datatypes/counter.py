"""A replicated counter.

``increment``/``decrement`` return the post-operation value, which makes
them *observe* prior operations (unlike a blind register write); two
increments commute in state but not in return value, a useful middle ground
for the reordering experiments.
"""

from __future__ import annotations

from typing import Any

from repro.datatypes.base import (
    DataType,
    DbView,
    Operation,
    UnknownOperationError,
    operation,
)

_VALUE = "counter:value"


class Counter(DataType):
    """A replicated integer counter."""

    @operation(readonly=True)
    def read() -> Operation:
        """Return the current count."""
        return Operation("read")

    @operation
    def increment(amount: int = 1) -> Operation:
        """Add ``amount``; returns the new count."""
        return Operation("increment", (amount,))

    @operation
    def decrement(amount: int = 1) -> Operation:
        """Subtract ``amount``; returns the new count."""
        return Operation("decrement", (amount,))

    @operation
    def add_if_even(amount: int = 1) -> Operation:
        """Add ``amount`` only if the current count is even; returns the count.

        A deliberately order-sensitive conditional update used by tests:
        it does not commute with increments in either state or return value.
        """
        return Operation("add_if_even", (amount,))

    def execute(self, op: Operation, view: DbView) -> Any:
        current = view.read(_VALUE) or 0
        if op.name == "read":
            return current
        if op.name == "increment":
            view.write(_VALUE, current + op.args[0])
            return current + op.args[0]
        if op.name == "decrement":
            view.write(_VALUE, current - op.args[0])
            return current - op.args[0]
        if op.name == "add_if_even":
            if current % 2 == 0:
                view.write(_VALUE, current + op.args[0])
                return current + op.args[0]
            return current
        raise UnknownOperationError(f"Counter has no operation {op.name!r}")
