"""A key-value store with ``putIfAbsent``.

The paper's Section 1 names ``putIfAbsent`` as the canonical "relatively
basic operation" whose support requires solving distributed consensus: its
return value (did *I* create the key?) is order-sensitive and cannot be
resolved convergently by timestamps alone. Issued as a *strong* operation it
is the motivating workload for mixing consistency levels; the meeting
scheduler example builds directly on it.

Each key lives in its own register, so the undo log of a transaction only
captures the keys it touched.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from repro.datatypes.base import (
    CrossShardPlan,
    DataType,
    DbView,
    Operation,
    ShardedOp,
    UnknownOperationError,
    operation,
)


def _reg(key: Hashable) -> str:
    return f"kv:{key!r}"


#: Sentinel distinguishing "key absent" from "key bound to None".
_ABSENT = None


class KVStore(DataType):
    """A replicated map with conditional updates."""

    @operation
    def put(key: Hashable, value: Any) -> Operation:
        """Bind ``key`` to ``value``; returns the previous value (or None)."""
        return Operation("put", (key, value))

    @operation(readonly=True)
    def get(key: Hashable) -> Operation:
        """Return the value bound to ``key`` (or None)."""
        return Operation("get", (key,))

    @operation(readonly=True)
    def contains(key: Hashable) -> Operation:
        """Return True if ``key`` is bound."""
        return Operation("contains", (key,))

    @operation
    def put_if_absent(key: Hashable, value: Any) -> Operation:
        """Bind ``key`` only if absent; returns True if this call bound it."""
        return Operation("put_if_absent", (key, value))

    @operation
    def remove(key: Hashable) -> Operation:
        """Unbind ``key``; returns the removed value (or None)."""
        return Operation("remove", (key,))

    @operation
    def put_many(*pairs: Tuple[Hashable, Any]) -> Operation:
        """Bind every ``(key, value)`` pair; returns the number written.

        A multi-key write: on a sharded deployment its keys may live on
        different shards, in which case it must be issued strongly and is
        staged as one ``put`` per owner shard (see :meth:`cross_shard_plan`).
        """
        return Operation("put_many", tuple((k, v) for k, v in pairs))

    def execute(self, op: Operation, view: DbView) -> Any:
        if op.name == "put":
            key, value = op.args
            cell = view.read(_reg(key))
            view.write(_reg(key), ("bound", value))
            return cell[1] if cell is not None else None
        if op.name == "get":
            cell = view.read(_reg(op.args[0]))
            return cell[1] if cell is not None else None
        if op.name == "contains":
            return view.read(_reg(op.args[0])) is not None
        if op.name == "put_if_absent":
            key, value = op.args
            if view.read(_reg(key)) is not None:
                return False
            view.write(_reg(key), ("bound", value))
            return True
        if op.name == "remove":
            key = op.args[0]
            cell = view.read(_reg(key))
            view.write(_reg(key), _ABSENT)
            return cell[1] if cell is not None else None
        if op.name == "put_many":
            for key, value in op.args:
                view.write(_reg(key), ("bound", value))
            return len(op.args)
        raise UnknownOperationError(f"KVStore has no operation {op.name!r}")

    # ------------------------------------------------------------------
    # Sharding hooks
    # ------------------------------------------------------------------
    def keys_of(self, op: Operation) -> Tuple[Hashable, ...]:
        if op.name == "put_many":
            return tuple(key for key, _ in op.args)
        return (op.args[0],)

    def registers_of(self, key: Hashable) -> Tuple[Hashable, ...]:
        return (_reg(key),)

    def cross_shard_plan(self, op: Operation) -> Optional[CrossShardPlan]:
        if op.name != "put_many":
            return None
        # Unconditional writes: nothing can fail, so there is no prepare
        # phase — every put commits on its owner shard.
        commits = tuple(
            ShardedOp(key, KVStore.put(key, value)) for key, value in op.args
        )
        count = len(op.args)
        return CrossShardPlan(
            commit=commits, decide=lambda _values: (True, count)
        )
