"""Command-line interface: run any paper experiment and print its rows.

Usage::

    python -m repro list                 # available experiments
    python -m repro figure1              # one experiment
    python -m repro all                  # the full reproduction sweep
    python -m repro serve --replica 0 --config cluster.json
                                         # one real replica over TCP
    python -m repro realtime             # E15: sockets vs sim cross-check
    python -m repro obs telemetry.jsonl  # render a recorded trace file
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List


def _run_figure1() -> None:
    from repro.analysis.experiments import figure1

    figure1.main()


def _run_figure2() -> None:
    from repro.analysis.experiments import figure2

    figure2.main()


def _run_progress() -> None:
    from repro.analysis.experiments import progress

    progress.main()


def _run_theorem1() -> None:
    from repro.analysis.experiments import theorem1

    theorem1.main()


def _run_theorems() -> None:
    from repro.analysis.experiments import theorems

    theorems.main()


def _run_matrix() -> None:
    from repro.analysis.experiments import matrix

    matrix.main()


def _run_performance() -> None:
    from repro.analysis.experiments import performance

    performance.main()


def _run_reorder() -> None:
    from repro.analysis.experiments import reorder

    reorder.main()


def _run_sessions() -> None:
    from repro.analysis.experiments import sessions

    sessions.main()


def _run_recovery() -> None:
    from repro.analysis.experiments import recovery

    recovery.main([])


def _run_shard() -> None:
    from repro.analysis.experiments import sharding

    sharding.main([])


def _run_reshard() -> None:
    from repro.analysis.experiments import resharding

    resharding.main([])


def _run_rebalance() -> None:
    from repro.analysis.experiments import rebalancing

    rebalancing.main([])


def _run_realtime() -> None:
    from repro.analysis.experiments import realtime

    realtime.main([])


def _run_batch() -> None:
    from repro.analysis.experiments import batching

    batching.main([])


EXPERIMENTS: Dict[str, tuple] = {
    "figure1": ("E1: Figure 1 — temporary operation reordering", _run_figure1),
    "figure2": ("E2: Figure 2 — circular causality", _run_figure2),
    "progress": ("E3: Section 2.3 — unbounded waits, rollback storm", _run_progress),
    "theorem1": ("E4: Theorem 1 — live schedule + exhaustive search", _run_theorem1),
    "theorems": ("E5/E6: Theorems 2 & 3 — FEC ∧ Seq checked on runs", _run_theorems),
    "matrix": ("E7: guarantee matrix across systems", _run_matrix),
    "performance": ("E8: latency/throughput envelope", _run_performance),
    "sessions": ("E9: session-guarantee cost of Algorithm 2", _run_sessions),
    "reorder": ("E10: checkpointed reorder engine at scale", _run_reorder),
    "recovery": ("E11: crash-recovery — durable state, catch-up, convergence", _run_recovery),
    "shard": ("E12: sharded scaling, key skew, cross-shard strong transfers", _run_shard),
    "reshard": ("E13: live resharding — split under traffic, dip, conservation", _run_reshard),
    "rebalance": ("E14: autonomous rebalancing — controller vs oracle under a moving hotspot", _run_rebalance),
    "realtime": ("E15: realtime deployment over TCP cross-checked against the sim", _run_realtime),
    "batch": ("E16: batched pipelined Multi-Paxos — ops per message round across engines", _run_batch),
}

#: Experiments excluded from ``all``: they spawn real OS processes and bind
#: sockets, so they run only when asked for by name.
NOT_IN_ALL = {"realtime"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On mixing eventual and strong consistency: "
            "Bayou revisited' (PODC 2019). Runs the paper's experiments."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="experiment id, 'all' for the full sweep, 'list' to enumerate",
    )
    return parser


def main(argv: List[str] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # ``serve`` has its own option surface (--replica/--config), so it
        # dispatches before the experiment parser sees the argument list.
        from repro.runtime.serve import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "obs":
        # Same arrangement: ``obs`` takes a file path plus filters.
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            description, _ = EXPERIMENTS[name]
            print(f"  {name:12s} {description}")
        return 0
    selected = (
        sorted(set(EXPERIMENTS) - NOT_IN_ALL)
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in selected:
        description, runner = EXPERIMENTS[name]
        print(f"== {description} ==")
        runner()
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
