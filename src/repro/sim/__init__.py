"""Deterministic discrete-event simulation kernel.

The kernel is the substrate on which every protocol in this repository runs.
It provides:

- :class:`~repro.sim.kernel.Simulator`: a priority-queue event loop with
  deterministic tie-breaking, cancellable timers and quiescence detection.
- :class:`~repro.sim.clock.DriftingClock`: per-replica local clocks with
  configurable offset and rate, used for Bayou's timestamps.
- :class:`~repro.sim.process.Process`: a base class for protocol state
  machines that react to scheduled events.
- :class:`~repro.sim.trace.TraceLog`: structured, queryable event traces.
- :class:`~repro.sim.rng.SeededRngRegistry`: independent, reproducible random
  streams per component.

The paper reasons about *schedules* of events (delayed local execution in
Figure 1, partitions in Section 2.3); a deterministic simulator lets us
realise any such schedule reproducibly.
"""

from repro.sim.clock import DriftingClock, PerfectClock
from repro.sim.kernel import ScheduledEvent, Simulator
from repro.sim.process import Process
from repro.sim.rng import SeededRngRegistry
from repro.sim.trace import TraceEntry, TraceLog

__all__ = [
    "DriftingClock",
    "PerfectClock",
    "Process",
    "ScheduledEvent",
    "SeededRngRegistry",
    "Simulator",
    "TraceEntry",
    "TraceLog",
]
