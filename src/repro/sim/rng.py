"""Reproducible random streams.

Each simulated component (network link, workload generator, fault injector)
draws from its own :class:`random.Random` stream derived from a master seed
and a stable component name. Components therefore stay statistically
independent and the whole simulation is reproducible from a single seed,
regardless of the order in which components are created or consulted.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class SeededRngRegistry:
    """A registry of named, independently seeded random streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "SeededRngRegistry":
        """Derive a child registry whose streams are independent of ours."""
        digest = hashlib.sha256(
            f"{self.master_seed}:fork:{name}".encode("utf-8")
        ).digest()
        return SeededRngRegistry(int.from_bytes(digest[:8], "big"))
