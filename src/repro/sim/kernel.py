"""The discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of :class:`ScheduledEvent` objects.
Each event carries a zero-argument callback. Events scheduled for the same
simulated time are executed in scheduling order (a monotonically increasing
sequence number breaks ties), which makes every run fully deterministic.

The kernel knows nothing about replicas, networks, or protocols; those are
layered on top (see :mod:`repro.net` and :mod:`repro.core`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the kernel is used incorrectly (e.g. scheduling in the past)."""


@dataclass(order=True)
class ScheduledEvent:
    """A single entry in the simulator's event queue.

    Events are ordered by ``(time, seq)``; ``seq`` is assigned by the
    simulator and guarantees a deterministic total order even for events
    scheduled at identical times.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("hello at t=1"))
        sim.run()

    The simulator tracks the number of executed events and exposes
    :meth:`run_until_quiescent` which is how experiment harnesses detect that
    a protocol converged (no pending messages or timers).
    """

    def __init__(self, *, max_events: int = 10_000_000) -> None:
        #: Heap of ``(time, seq, event)`` — raw tuples keep heap comparisons
        #: in C instead of the dataclass ``__lt__`` (a hot path: every
        #: message, timer and internal step passes through here).
        self._queue: List[Tuple[float, int, ScheduledEvent]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._executed = 0
        self._max_events = max_events
        self._running = False

    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """The number of callbacks executed so far."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """The number of non-cancelled events still queued."""
        return sum(1 for _, _, event in self._queue if not event.cancelled)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns the :class:`ScheduledEvent`, which can be cancelled. A zero
        delay is allowed and means "as soon as the current callback returns",
        still respecting scheduling order among same-time events.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = ScheduledEvent(
            time=self._now + delay,
            seq=next(self._seq),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self._now}"
            )
        return self.schedule(time - self._now, callback, label=label)

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue is
        empty (the simulation is quiescent).
        """
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event queue corrupted: time went backwards")
            self._now = event.time
            self._executed += 1
            if self._executed > self._max_events:
                raise SimulationError(
                    f"exceeded max_events={self._max_events}; "
                    "likely a livelock in the simulated protocol"
                )
            event.callback()
            return True
        return False

    def run(self, *, until: Optional[float] = None) -> None:
        """Run until the queue is empty or simulated time exceeds ``until``.

        Events scheduled exactly at ``until`` are still executed; the first
        event strictly beyond it is left in the queue.
        """
        self._running = True
        try:
            while self._queue:
                head = self._queue[0][2]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self._now = max(self._now, until)
                    break
                if not self.step():
                    break
        finally:
            self._running = False

    def run_until_quiescent(self) -> float:
        """Run until no events remain; return the quiescence time."""
        self.run()
        return self._now

    def advance_to(self, time: float) -> None:
        """Advance simulated time without executing events (for tests)."""
        if time < self._now:
            raise SimulationError("cannot move time backwards")
        if self._queue and min(
            e.time for _, _, e in self._queue if not e.cancelled
        ) < time:
            raise SimulationError("cannot skip over pending events")
        self._now = time
