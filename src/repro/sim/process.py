"""Base class for simulated protocol state machines.

A :class:`Process` is a named participant that reacts to messages and timers.
It matches the paper's replica model (Appendix A.2.1): a state automaton
executing atomic steps in reaction to events. Crashing a process makes it
silently drop all subsequent events — "replicas may crash silently and cease
all communication".
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.kernel import ScheduledEvent, Simulator


class Process:
    """A crash-stop participant in the simulation.

    Subclasses implement :meth:`on_message`. Timers scheduled through
    :meth:`set_timer` are automatically suppressed once the process crashes,
    matching the crash-stop model: a crashed replica executes no further
    steps of any kind.
    """

    def __init__(self, sim: Simulator, pid: int, name: Optional[str] = None) -> None:
        self.sim = sim
        self.pid = pid
        self.name = name if name is not None else f"p{pid}"
        self.crashed = False

    def on_message(self, sender: int, message: Any) -> None:
        """Handle a message delivered by the network. Override in subclasses."""
        raise NotImplementedError

    def deliver(self, sender: int, message: Any) -> None:
        """Entry point used by the network; drops the message if crashed."""
        if self.crashed:
            return
        self.on_message(sender, message)

    def set_timer(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule a local timer that silently fires only while not crashed."""

        def guarded() -> None:
            if not self.crashed:
                callback()

        return self.sim.schedule(
            delay, guarded, label=label or f"{self.name}.timer"
        )

    def crash(self) -> None:
        """Silently stop the process; all future events are ignored."""
        self.crashed = True

    def recover(self) -> None:
        """Un-crash the process (used only by recovery experiments)."""
        self.crashed = False
