"""Base class for protocol state machines (runtime-agnostic).

A :class:`Process` is a named participant that reacts to messages and
timers. It interacts with the world only through an injected
:class:`~repro.runtime.base.Runtime`, so the same process runs on the
deterministic simulation kernel or on an asyncio event loop over real
sockets; constructing it from a bare :class:`Simulator` (the historical
signature) wraps the simulator in a timer-only
:class:`~repro.runtime.sim.SimRuntime`.

A process matches the paper's replica model (Appendix A.2.1): a state automaton
executing atomic steps in reaction to events. Crashing a process makes it
silently drop all subsequent events — "replicas may crash silently and cease
all communication".

Two crash modes are supported (:meth:`Process.crash`):

- ``"stop"`` (the paper's model): the process never executes another step.
- ``"recover"`` (the original Bayou's model, which kept its write log in
  stable storage): a later :meth:`Process.recover` brings the process back.
  Components hosted on the process register ``on_crash``/``on_recover``
  hooks (:meth:`register_crash_hooks`); a recovery hook's job is to discard
  volatile state, reload whatever the component persisted to its
  :class:`~repro.core.durability.DurableStore`, and resume periodic work.

Timer bookkeeping distinguishes three terminal fates of a timer scheduled
through :meth:`set_timer`:

- **fired**: the callback ran normally;
- **cancelled**: the owner called :meth:`ProcessTimer.cancel` — the timer is
  dead regardless of crashes;
- **suppressed**: the timer came due while the process was crashed. The
  callback did not run, but the timer is *not* forgotten: a suppressed timer
  created with ``resurrect=True`` is re-armed (with its original delay) when
  the process recovers. This is what keeps self-re-arming periodic loops
  (anti-entropy syncs, heartbeats, retransmission drives) alive across a
  crash–recovery cycle instead of dying the first time their guard swallows
  a tick.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple, Union

from repro.runtime.base import Runtime, RuntimeTimer
from repro.runtime.sim import SimRuntime
from repro.sim.kernel import Simulator

#: Crash mode constants (also accepted as plain strings).
CRASH_STOP = "stop"
CRASH_RECOVER = "recover"

CrashHook = Callable[[str], None]
RecoverHook = Callable[[], None]


class ProcessTimer:
    """Handle for a local timer; distinguishes cancelled from suppressed."""

    __slots__ = ("delay", "callback", "label", "resurrect", "cancelled",
                 "suppressed", "fired", "event")

    def __init__(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str,
        resurrect: bool,
    ) -> None:
        self.delay = delay
        self.callback = callback
        self.label = label
        self.resurrect = resurrect
        self.cancelled = False
        self.suppressed = False
        self.fired = False
        #: The backend handle this timer routes through — a runtime timer
        #: (sim event or asyncio call_later), never a sim event directly.
        self.event: Optional[RuntimeTimer] = None

    def cancel(self) -> None:
        """Kill the timer for good; it will neither fire nor resurrect.

        Cancellation is enforced twice: the backend handle is cancelled
        (so no backend needs to run the callback at all), and the guarded
        wrapper re-checks ``cancelled`` at fire time — a backend whose
        cancellation races its own dispatch (asyncio's ``call_later`` once
        the callback is already queued) still never runs a cancelled
        timer. The crash-stop regression tests pin this on both backends.
        """
        self.cancelled = True
        if self.event is not None:
            self.event.cancel()

    @property
    def pending(self) -> bool:
        """True while the timer is armed and none of its fates occurred."""
        return not (self.cancelled or self.suppressed or self.fired)


class Process:
    """A participant in the simulation, crash-stop or crash-recovery.

    Subclasses implement :meth:`on_message`. Timers scheduled through
    :meth:`set_timer` are automatically suppressed while the process is
    crashed: a crashed replica executes no further steps of any kind.
    """

    def __init__(
        self,
        runtime: Union[Runtime, Simulator],
        pid: int,
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(runtime, Runtime):
            # Legacy signature: a bare Simulator (timers + clock only).
            runtime = SimRuntime(runtime)
        self.runtime = runtime
        self.pid = pid
        self.name = name if name is not None else f"p{pid}"
        self.crashed = False
        #: The mode of the current crash (None while up).
        self.crash_mode: Optional[str] = None
        self.crash_count = 0
        self.recovery_count = 0
        self._crash_hooks: List[Tuple[Optional[CrashHook], Optional[RecoverHook]]] = []
        self._suppressed_timers: List[ProcessTimer] = []

    @property
    def now(self) -> float:
        """The runtime's current time (sim units or wall seconds)."""
        return self.runtime.now()

    @property
    def sim(self) -> Simulator:
        """The underlying simulator — sim-backend harness code only.

        Protocol components must not use this: it exists so clusters,
        scenario builders and tests that *own* the deterministic kernel
        can keep reaching it, and it raises on runtimes that have no
        simulator (the asyncio backend).
        """
        return self.runtime.sim  # type: ignore[attr-defined]

    def on_message(self, sender: int, message: Any) -> None:
        """Handle a message delivered by the network. Override in subclasses."""
        raise NotImplementedError

    def deliver(self, sender: int, message: Any) -> None:
        """Entry point used by the network; drops the message if crashed."""
        if self.crashed:
            return
        self.on_message(sender, message)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        label: str = "",
        resurrect: bool = False,
    ) -> ProcessTimer:
        """Schedule a local timer that fires only while the process is up.

        A timer coming due while the process is crashed is recorded as
        *suppressed*; with ``resurrect=True`` it is re-armed (same delay)
        when the process recovers — the contract periodic components rely
        on to survive a crash–recovery cycle.
        """
        timer = ProcessTimer(delay, callback, label or f"{self.name}.timer", resurrect)

        def guarded() -> None:
            if timer.cancelled:
                return
            if self.crashed:
                timer.suppressed = True
                self._suppressed_timers.append(timer)
                return
            timer.fired = True
            callback()

        timer.event = self.runtime.schedule(delay, guarded, label=timer.label)
        return timer

    # ------------------------------------------------------------------
    # Crash–recovery lifecycle
    # ------------------------------------------------------------------
    def register_crash_hooks(
        self,
        *,
        on_crash: Optional[CrashHook] = None,
        on_recover: Optional[RecoverHook] = None,
    ) -> None:
        """Register component hooks, run in registration order.

        ``on_crash(mode)`` runs when the process crashes; ``on_recover()``
        runs when it recovers, *before* suppressed timers are resurrected,
        so a component can rebuild its state ahead of its periodic loop
        restarting.
        """
        self._crash_hooks.append((on_crash, on_recover))

    def crash(self, mode: str = CRASH_STOP) -> None:
        """Silently stop the process; all further events are ignored.

        ``mode`` records intent only: ``"stop"`` is the paper's permanent
        silent crash, ``"recover"`` announces that :meth:`recover` will be
        called later. Either way the process executes nothing while down.
        """
        if self.crashed:
            return
        if mode not in (CRASH_STOP, CRASH_RECOVER):
            raise ValueError(f"unknown crash mode {mode!r}")
        self.crashed = True
        self.crash_mode = mode
        self.crash_count += 1
        for on_crash, _ in self._crash_hooks:
            if on_crash is not None:
                on_crash(mode)

    def recover(self) -> None:
        """Bring a crashed process back.

        Runs every registered ``on_recover`` hook (components discard
        volatile state and reload from stable storage), then resurrects the
        timers that were suppressed during the downtime and asked for it.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.crash_mode = None
        self.recovery_count += 1
        suppressed, self._suppressed_timers = self._suppressed_timers, []
        for _, on_recover in self._crash_hooks:
            if on_recover is not None:
                on_recover()
        for timer in suppressed:
            if timer.resurrect and not timer.cancelled:
                self.set_timer(
                    timer.delay,
                    timer.callback,
                    label=timer.label,
                    resurrect=True,
                )
