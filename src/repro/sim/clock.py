"""Per-replica local clocks.

Bayou orders tentative requests by ``(timestamp, dot)`` where the timestamp
comes from the invoking replica's *local* clock. The paper makes no
assumption about clock drift (Appendix A.2.1, footnote 9) beyond strict
monotonicity per replica. :class:`DriftingClock` models an affine local
clock ``local = offset + rate * simulated_time`` and additionally enforces
strict monotonicity across reads, so two invoke events on the same replica
never share a timestamp even at the same simulated instant.

A deliberately slowed clock (``rate < 1``) is exactly the countermeasure
discussed in Section 2.3, which trades growing local latency for growing
rollback counts on the other replicas; experiment E3 uses it.
"""

from __future__ import annotations

from repro.sim.kernel import Simulator


class PerfectClock:
    """A clock that reads the simulator time directly (rate 1, offset 0)."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    def now(self) -> float:
        """Return the current local time."""
        return self._sim.now


class DriftingClock:
    """An affine local clock with strict monotonicity.

    ``now()`` returns ``offset + rate * sim.now``, bumped by a tiny epsilon
    whenever two consecutive reads would otherwise be equal. The epsilon is
    deterministic, so runs remain reproducible.
    """

    #: Minimal increment between two consecutive reads of the same clock.
    EPSILON = 1e-9

    def __init__(
        self,
        sim: Simulator,
        *,
        offset: float = 0.0,
        rate: float = 1.0,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"clock rate must be positive, got {rate}")
        self._sim = sim
        self.offset = offset
        self.rate = rate
        self._last_read = float("-inf")

    def now(self) -> float:
        """Return a strictly monotonically increasing local timestamp."""
        raw = self.offset + self.rate * self._sim.now
        if raw <= self._last_read:
            raw = self._last_read + self.EPSILON
        self._last_read = raw
        return raw

    def peek(self) -> float:
        """Return the raw local time without consuming a monotonic tick."""
        return self.offset + self.rate * self._sim.now

    def set_rate(self, rate: float) -> None:
        """Change the clock rate from now on, keeping local time continuous.

        Used by experiment E3 to slow a replica's clock mid-run without the
        local time jumping backwards.
        """
        if rate <= 0:
            raise ValueError(f"clock rate must be positive, got {rate}")
        # Recompute the offset so that the local time at this instant is
        # unchanged by the rate switch.
        current = self.peek()
        self.rate = rate
        self.offset = current - rate * self._sim.now
