"""Structured simulation traces.

Protocols append :class:`TraceEntry` records to a shared :class:`TraceLog`.
The formal-framework builders (:mod:`repro.framework.builder`) and the
experiment reports consume these traces; tests use them to assert that a
specific schedule (e.g. the Figure 1 interleaving) actually occurred.

With a ``capacity`` the log becomes a ring: the oldest entries are
evicted (and counted in :attr:`TraceLog.dropped`) instead of accreting
without bound — long runs keep a sliding window of recent protocol
activity rather than the whole execution. ``BayouConfig.trace_capacity``
threads this through :class:`~repro.scenario.Scenario`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEntry:
    """One recorded occurrence: what happened, where, when, with what data."""

    time: float
    process: int
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEntry(t={self.time:.3f}, p={self.process}, {self.kind}, {self.data})"


class TraceLog:
    """An append-only log of :class:`TraceEntry` records with simple queries.

    ``capacity`` turns it into a bounded ring: the oldest entries are
    evicted and counted in :attr:`dropped`.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self._entries: Deque[TraceEntry] = deque(maxlen=capacity)
        #: Entries evicted by the ring (0 while unbounded or under capacity).
        self.dropped = 0

    def record(
        self, time: float, process: int, kind: str, **data: Any
    ) -> TraceEntry:
        """Append an entry and return it."""
        entry = TraceEntry(time=time, process=process, kind=kind, data=dict(data))
        if self.capacity is not None and len(self._entries) == self.capacity:
            self.dropped += 1
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def entries(
        self,
        *,
        kind: Optional[str] = None,
        process: Optional[int] = None,
        predicate: Optional[Callable[[TraceEntry], bool]] = None,
    ) -> List[TraceEntry]:
        """Return entries filtered by kind, process and/or a predicate."""
        result = []
        for entry in self._entries:
            if kind is not None and entry.kind != kind:
                continue
            if process is not None and entry.process != process:
                continue
            if predicate is not None and not predicate(entry):
                continue
            result.append(entry)
        return result

    def count(self, *, kind: Optional[str] = None, process: Optional[int] = None) -> int:
        """Count entries matching the filters."""
        return len(self.entries(kind=kind, process=process))

    def last(self, *, kind: Optional[str] = None) -> Optional[TraceEntry]:
        """Return the most recent entry of ``kind`` (or overall), if any."""
        for entry in reversed(self._entries):
            if kind is None or entry.kind == kind:
                return entry
        return None
