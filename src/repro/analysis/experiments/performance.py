"""Experiment E8 — the performance envelope of weak vs strong operations.

The paper's qualitative performance claims, measured:

- weak operations respond without waiting for consensus, so their latency
  tracks local processing (modified protocol: ~0) while strong operations
  pay at least a TOB round (Section 2.1);
- under a partition strong operations stall for the partition's duration
  while weak operations keep answering (Section 2.3);
- the sequencer and Paxos TOB engines order the same workload, Paxos paying
  extra rounds but tolerating sequencer/leader failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.metrics import LatencyStats
from repro.core.cluster import MODIFIED, ORIGINAL
from repro.datatypes.counter import Counter
from repro.framework.history import STRONG, WEAK
from repro.scenario import Scenario


@dataclass
class LatencySplit:
    """Latency statistics split by consistency level."""

    protocol: str
    tob_engine: str
    message_delay: float
    weak: LatencyStats
    strong: LatencyStats


def run_latency_split(
    *,
    protocol: str = MODIFIED,
    tob_engine: str = "sequencer",
    message_delay: float = 1.0,
    ops_per_session: int = 10,
    n_replicas: int = 3,
    seed: int = 1,
) -> LatencySplit:
    """Random counter workload; measure weak vs strong response latency."""
    result = (
        Scenario(Counter(), name="latency-split")
        .replicas(n_replicas)
        .protocol(protocol)
        .exec_delay(0.02)
        .message_delay(message_delay)
        .tob(tob_engine)
        .seed(seed)
        .workload(
            "counter",
            ops_per_session=ops_per_session,
            seed=seed,
            strong_probability=0.4,
        )
        .run(well_formed=False, max_time=50_000.0)
    )
    return LatencySplit(
        protocol=protocol,
        tob_engine=tob_engine,
        message_delay=message_delay,
        weak=LatencyStats.from_samples(result.weak_latencies),
        strong=LatencyStats.from_samples(result.strong_latencies),
    )


@dataclass
class PartitionSweepPoint:
    """One partition duration's impact on strong-op latency."""

    duration: float
    weak_mean: float
    strong_mean: float
    strong_max: float


def run_partition_sweep(
    durations: Optional[List[float]] = None,
    *,
    n_replicas: int = 3,
) -> List[PartitionSweepPoint]:
    """Strong-op latency grows with the partition; weak stays flat.

    A partition isolates replica 2 from the sequencer for each duration;
    replica 2 issues one weak and one strong operation mid-partition.
    """
    durations = durations if durations is not None else [0.0, 20.0, 50.0, 100.0]
    points = []
    for duration in durations:
        scenario = (
            Scenario(Counter(), name="partition-sweep")
            .replicas(n_replicas)
            .protocol(MODIFIED)
            .exec_delay(0.02)
            .message_delay(1.0)
            .invoke(1.0, 0, Counter.increment(1))
            .invoke(10.0, 2, Counter.increment(1))                       # weak
            .invoke(11.0, 2, Counter.increment(1), strong=True)
        )
        if duration > 0:
            scenario.partition(5.0, [[0, 1], [2]]).heal(5.0 + duration)
        result = scenario.run(well_formed=False)
        weak = result.latencies(WEAK, session=2)
        strong = result.latencies(STRONG)
        points.append(
            PartitionSweepPoint(
                duration=duration,
                weak_mean=sum(weak) / len(weak) if weak else float("nan"),
                strong_mean=sum(strong) / len(strong) if strong else float("nan"),
                strong_max=max(strong) if strong else float("nan"),
            )
        )
    return points


@dataclass
class ThroughputPoint:
    """Completed operations and makespan for one configuration."""

    protocol: str
    ops_completed: int
    makespan: float
    rollbacks: int

    @property
    def throughput(self) -> float:
        return self.ops_completed / self.makespan if self.makespan else 0.0


def run_throughput(
    *,
    protocol: str = ORIGINAL,
    ops_per_session: int = 20,
    n_replicas: int = 3,
    seed: int = 3,
) -> ThroughputPoint:
    """Closed-loop throughput of a mixed workload."""
    live = (
        Scenario(Counter(), name="throughput")
        .replicas(n_replicas)
        .protocol(protocol)
        .exec_delay(0.02)
        .message_delay(0.5)
        .seed(seed)
        .workload(
            "counter",
            ops_per_session=ops_per_session,
            think_time=0.1,
            seed=seed,
            strong_probability=0.25,
        )
        .build()
    )
    live.run_until_quiescent()
    return ThroughputPoint(
        protocol=protocol,
        ops_completed=sum(
            session.completed
            for workload in live.workloads
            for session in workload.sessions
        ),
        makespan=live.now,
        rollbacks=sum(r.rollback_count for r in live.cluster.replicas),
    )


def main() -> None:  # pragma: no cover - manual entry point
    for engine in ("sequencer", "paxos"):
        split = run_latency_split(tob_engine=engine)
        print(
            f"{engine:10s} weak mean={split.weak.mean:.2f} "
            f"strong mean={split.strong.mean:.2f}"
        )
    for point in run_partition_sweep():
        print(
            f"partition {point.duration:6.1f}: weak={point.weak_mean:.2f} "
            f"strong={point.strong_mean:.2f}"
        )
    for protocol in (ORIGINAL, MODIFIED):
        tp = run_throughput(protocol=protocol)
        print(
            f"{protocol:8s} throughput={tp.throughput:.2f} ops/t "
            f"rollbacks={tp.rollbacks}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
