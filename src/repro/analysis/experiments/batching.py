"""Experiment E16 — consensus amortization: ops per message round.

The seed Paxos TOB paid one full consensus round — and roughly ``3n``
messages — per operation. The batched, pipelined engine drains the
submission queue into multi-op instance values, holds the phase-1 quorum
proactively, multicasts 2B to learners and proposer alike, and pipelines up
to ``max_inflight`` instances. This experiment quantifies what that buys on
a single burst of operations submitted at the leader, across three engines:

- **paxos-seed** — the batched engine configured to reproduce the seed
  engine's message pattern exactly (``max_batch=1``, unbounded inflight,
  unicast 2B + decide broadcast);
- **paxos-batched** — the default batched/pipelined configuration;
- **sequencer** — the fixed-sequencer engine, as the protocol-free floor.

Reported per engine: consensus instances consumed, operations per
consensus round, network messages per operation, simulated completion
time, and wall-clock committed-op throughput. The delivered sequences are
asserted identical across all three engines — batching must change the
*cost* of the total order, never the order itself.

Run from the CLI (``python -m repro batch``) or directly with ``--json
FILE`` to dump the artifact CI uploads.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.analysis.report import format_table
from repro.broadcast.failure_detector import OmegaFailureDetector
from repro.broadcast.paxos import PaxosTOB
from repro.broadcast.sequencer import SequencerTOB
from repro.net.network import FixedLatency, Network
from repro.net.node import RoutingNode
from repro.sim.kernel import Simulator

N_NODES = 3
OPS = 1000
#: Simulated-time safety limit per leg (every leg finishes far earlier).
TIME_LIMIT = 400.0

#: Engine legs: name → PaxosTOB knobs (None = the sequencer engine).
LEGS: Dict[str, Optional[Dict[str, Any]]] = {
    "paxos-seed": dict(max_batch=1, max_inflight=None, dual_2b=False),
    "paxos-batched": dict(max_batch=32, max_inflight=8, dual_2b=True),
    "sequencer": None,
}


@dataclass
class EngineRun:
    """One engine's cost profile over the burst."""

    engine: str
    ops: int
    #: Consensus instances consumed (sequencer: seqno assignments).
    instances: int
    #: Operations amortized per consensus round (= ops / instances).
    ops_per_round: float
    messages: int
    messages_per_op: float
    #: Simulated time from burst to the last node's last delivery.
    sim_time: float
    wall_seconds: float
    wall_ops_per_sec: float


class _Rig:
    """A bare 3-node TOB deployment (no Bayou layer): the engine alone."""

    def __init__(self, engine: str) -> None:
        self.sim = Simulator()
        self.network = Network(self.sim, N_NODES, latency=FixedLatency(1.0))
        self.nodes = [RoutingNode(self.sim, self.network, pid) for pid in range(N_NODES)]
        self.delivered: List[List[Hashable]] = [[] for _ in range(N_NODES)]
        self.endpoints = []
        self.omegas = []
        knobs = LEGS[engine]
        for pid, node in enumerate(self.nodes):
            deliver = (lambda p: lambda key, payload: self.delivered[p].append(key))(pid)
            if knobs is None:
                self.endpoints.append(
                    SequencerTOB(node, deliver, sequencer_pid=0)
                )
            else:
                omega = OmegaFailureDetector(
                    node, heartbeat_interval=3.0, timeout=10.0
                )
                self.omegas.append(omega)
                self.endpoints.append(
                    PaxosTOB(node, deliver, omega, retry_interval=8.0, **knobs)
                )
        for omega in self.omegas:
            self.sim.schedule(0.0, omega.start)

    def run_burst(self, ops: int) -> Tuple[float, float]:
        """Cast ``ops`` keys at node 0 at t=0; run until all nodes deliver.

        Returns ``(sim_time, wall_seconds)`` for the whole run (the wall
        clock includes every simulation event the engine generates — its
        Python-work footprint is exactly what batching shrinks).
        """
        endpoint = self.endpoints[0]
        self.sim.schedule(
            0.0,
            lambda: [endpoint.tob_cast(i, ("payload", i)) for i in range(ops)],
            label="burst",
        )
        started = time.perf_counter()
        while not all(len(seq) >= ops for seq in self.delivered):
            if self.sim.now >= TIME_LIMIT:
                raise RuntimeError(
                    f"burst did not complete by t={TIME_LIMIT}: "
                    f"{[len(seq) for seq in self.delivered]}"
                )
            self.sim.run(until=self.sim.now + 5.0)
        wall = time.perf_counter() - started
        done_at = self.sim.now
        for endpoint in self.endpoints:
            endpoint.stop()
        for omega in self.omegas:
            omega.stop()
        return done_at, wall


def _instances_used(rig: _Rig, engine: str, ops: int) -> int:
    if LEGS[engine] is None:
        return ops  # one seqno assignment per op
    return rig.endpoints[0]._next_deliver


def run_leg(engine: str, ops: int = OPS) -> Tuple[EngineRun, List[Hashable]]:
    """Run one engine over the burst; returns its profile and delivered order."""
    rig = _Rig(engine)
    sim_time, wall = rig.run_burst(ops)
    sequences = [tuple(seq[:ops]) for seq in rig.delivered]
    assert all(seq == sequences[0] for seq in sequences), (
        f"{engine}: nodes disagree on the delivered order"
    )
    instances = _instances_used(rig, engine, ops)
    messages = rig.network.sent_count
    return (
        EngineRun(
            engine=engine,
            ops=ops,
            instances=instances,
            ops_per_round=ops / instances if instances else float(ops),
            messages=messages,
            messages_per_op=messages / ops,
            sim_time=sim_time,
            wall_seconds=wall,
            wall_ops_per_sec=ops / wall if wall > 0 else float("inf"),
        ),
        list(sequences[0]),
    )


def run_burst_comparison(ops: int = OPS) -> Tuple[List[EngineRun], bool]:
    """All three legs over the same burst; histories must be identical."""
    rows: List[EngineRun] = []
    histories: List[List[Hashable]] = []
    for engine in LEGS:
        row, delivered = run_leg(engine, ops)
        rows.append(row)
        histories.append(delivered)
    identical = all(history == histories[0] for history in histories)
    return rows, identical


def to_json(rows: List[EngineRun], identical: bool) -> Dict[str, Any]:
    """The amortization artifact (uploaded by CI next to E10–E15)."""
    by_engine = {row.engine: row for row in rows}
    seed = by_engine["paxos-seed"]
    batched = by_engine["paxos-batched"]
    return {
        "experiment": "E16-batching",
        "histories_identical": identical,
        "message_amortization": seed.messages_per_op / batched.messages_per_op,
        "wall_speedup": batched.wall_ops_per_sec / seed.wall_ops_per_sec,
        "runs": [asdict(row) for row in rows],
    }


def render(rows: List[EngineRun], identical: bool) -> str:
    return format_table(
        [
            "engine",
            "ops",
            "instances",
            "ops/round",
            "msgs",
            "msgs/op",
            "sim time",
            "wall ops/s",
        ],
        [
            [
                row.engine,
                row.ops,
                row.instances,
                f"{row.ops_per_round:.2f}",
                row.messages,
                f"{row.messages_per_op:.2f}",
                f"{row.sim_time:g}",
                f"{row.wall_ops_per_sec:,.0f}",
            ]
            for row in rows
        ],
        title=(
            "Consensus amortization over a "
            f"{rows[0].ops}-op burst (experiment E16) — histories "
            + ("identical" if identical else "DIVERGED")
        ),
    )


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="FILE", help="also write the amortization artifact"
    )
    args = parser.parse_args(argv)
    rows, identical = run_burst_comparison()
    print(render(rows, identical))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(to_json(rows, identical), handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")


if __name__ == "__main__":  # pragma: no cover
    main()
