"""Experiment E12 — sharded deployments: scaling, skew, cross-shard ops.

The paper studies one replicated object served by one Bayou cluster; at
production scale the keyspace is *partitioned* across many clusters
(shards) while each operation keeps its per-op consistency choice. E12
quantifies what that buys and what it costs:

**Scaling legs** — the same keyed KV workload (fixed session count, fixed
operation count, uniform or Zipf-skewed key traffic) is driven against
1 → 8 shards of 3 replicas each, on one shared simulator. Reported per
leg, all in *simulated* time (deterministic under the seed):

- **aggregate committed-op throughput**: operations whose final TOB
  position is fixed, per unit of simulated time — scale-out works when a
  shard's replicas no longer execute the whole keyspace's traffic;
- **weak-op staleness**: mean lag between a weak response (tentative,
  answered locally) and its stabilisation (TOB commit) — the window in
  which the response may still be reordered;
- **placement balance**: operations routed per shard — Zipf skew turns
  hot keys into hot shards, capping the scale-out (compare the skewed
  rows' throughput against uniform at the same shard count).

The sequencer engine sweeps 1/2/4/8 shards × uniform/zipf; the Ω/Paxos
engine runs the 1- and 4-shard uniform legs (same workload, consensus
per shard).

**Conservation legs** — `BankAccounts` across 4 shards, both TOB
engines: seeded balances, then a barrage of strong transfers whose
endpoints mostly live on *different* shards. Each cross-shard transfer
stages debit (prepare) and credit (commit) through the two owner shards'
TOBs; a failed debit aborts the plan. Asserted: no money is minted or
lost (Σ balances unchanged at quiescence), every shard's replicas
converge bit-identically, and refused transfers leave both balances
untouched.

Run from the CLI (``python -m repro shard``) or directly with ``--json
FILE`` to dump the artifact CI uploads next to E10/E11.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass
from statistics import mean
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.metrics import committed_op_rate, weak_staleness_samples
from repro.analysis.report import format_table
from repro.datatypes.bank import BankAccounts
from repro.datatypes.kvstore import KVStore
from repro.scenario import Scenario

#: The shared scaling workload (identical for every leg; only the shard
#: count, key skew and TOB engine vary).
SESSIONS = 12
OPS_PER_SESSION = 30
N_KEYS = 256
EXEC_DELAY = 0.1
MESSAGE_DELAY = 0.2
STRONG_PROBABILITY = 0.1
WORKLOAD_SEED = 3
REPLICAS_PER_SHARD = 3

SHARD_SWEEP = (1, 2, 4, 8)
PAXOS_SHARDS = (1, 4)


@dataclass
class ShardingRun:
    """One scaling leg, reduced to its throughput/staleness envelope."""

    n_shards: int
    skew: str
    tob_engine: str
    completed_ops: int
    committed_ops: int
    #: Committed (TOB-final) operations per simulated time unit.
    committed_throughput: float
    #: Mean weak-op response→stable lag (simulated time units).
    weak_staleness: float
    #: Operations routed per shard (placement balance / skew hotspots).
    routed_per_shard: List[int]
    converged: bool


@dataclass
class ConservationRun:
    """One cross-shard transfer leg: the money-conservation verdict."""

    tob_engine: str
    n_shards: int
    accounts: int
    initial_total: int
    final_total: int
    conserved: bool
    transfers: int
    cross_shard_transfers: int
    committed_transfers: int
    aborted_transfers: int
    #: Each shard's replicas bit-identical (snapshot, committed order,
    #: executed sequence).
    shards_bit_identical: bool
    converged: bool


def _keyed_scenario(n_shards: int, skew: str, tob_engine: str) -> Scenario:
    scenario = (
        Scenario(KVStore(), name=f"sharding-{n_shards}-{skew}-{tob_engine}")
        .shards(n_shards)
        .replicas(REPLICAS_PER_SHARD)
        .exec_delay(EXEC_DELAY)
        .message_delay(MESSAGE_DELAY)
        .config(record_perceived_traces=False)
        .workload(
            "kv",
            keys=[f"k{i}" for i in range(N_KEYS)],
            key_skew=skew,
            ops_per_session=OPS_PER_SESSION,
            think_time=0.0,
            seed=WORKLOAD_SEED,
            sessions=SESSIONS,
            strong_probability=STRONG_PROBABILITY,
        )
    )
    if tob_engine == "paxos":
        scenario.tob("paxos").config(
            heartbeat_interval=2.0, failure_timeout=7.0, paxos_retry_interval=4.0
        )
    return scenario


def run_scaling_case(
    n_shards: int, skew: str = "uniform", tob_engine: str = "sequencer"
) -> ShardingRun:
    """One scaling leg: fixed workload, ``n_shards`` shards."""
    live = _keyed_scenario(n_shards, skew, tob_engine).build()
    live.settle(max_time=2_000.0)
    futures = [f for s in live.workloads[0].sessions for f in s.futures]
    responded = [f for f in futures if f.response_time is not None]
    stable = [f for f in futures if f.stable_time is not None]
    staleness = weak_staleness_samples(futures)
    converged = live.converged()
    routed = list(live.router.routed_counts)
    if tob_engine == "paxos":
        live.shutdown()
        live.run_until_quiescent()
    return ShardingRun(
        n_shards=n_shards,
        skew=skew,
        tob_engine=tob_engine,
        completed_ops=len(responded),
        committed_ops=len(stable),
        committed_throughput=committed_op_rate(futures),
        weak_staleness=mean(staleness) if staleness else 0.0,
        routed_per_shard=routed,
        converged=converged,
    )


def run_scaling() -> List[ShardingRun]:
    """The full scaling sweep (sequencer matrix + Paxos legs)."""
    rows = [
        run_scaling_case(n_shards, skew, "sequencer")
        for skew in ("uniform", "zipf")
        for n_shards in SHARD_SWEEP
    ]
    rows.extend(
        run_scaling_case(n_shards, "uniform", "paxos")
        for n_shards in PAXOS_SHARDS
    )
    return rows


def speedup(rows: List[ShardingRun], n_shards: int, *, skew: str = "uniform",
            tob_engine: str = "sequencer") -> float:
    """Committed-throughput ratio of ``n_shards`` vs the 1-shard leg."""
    by_key = {
        (row.n_shards, row.skew, row.tob_engine): row.committed_throughput
        for row in rows
    }
    return by_key[(n_shards, skew, tob_engine)] / by_key[(1, skew, tob_engine)]


# ----------------------------------------------------------------------
# Conservation: cross-shard strong transfers
# ----------------------------------------------------------------------
N_ACCOUNTS = 12
INITIAL_BALANCE = 100
CONSERVATION_SHARDS = 4


def _fingerprint(replica) -> Tuple[Any, ...]:
    """Bit-identity fingerprint (as in E11): snapshot + orders."""
    return (
        tuple(sorted(replica.state.snapshot().items(), key=repr)),
        tuple(req.dot for req in replica.committed),
        tuple(req.dot for req in replica.executed),
    )


def run_conservation(tob_engine: str = "sequencer") -> ConservationRun:
    """Strong transfers across 4 shards must conserve total money."""
    accounts = [f"acct{i}" for i in range(N_ACCOUNTS)]
    scenario = (
        Scenario(BankAccounts(), name=f"conservation-{tob_engine}")
        .shards(CONSERVATION_SHARDS)
        .replicas(REPLICAS_PER_SHARD)
        .exec_delay(0.05)
        .message_delay(0.5)
    )
    if tob_engine == "paxos":
        scenario.tob("paxos").config(
            heartbeat_interval=2.0, failure_timeout=7.0, paxos_retry_interval=4.0
        )
    for index, account in enumerate(accounts):
        scenario.invoke(
            1.0 + 0.1 * index,
            index % REPLICAS_PER_SHARD,
            BankAccounts.deposit(account, INITIAL_BALANCE),
            label=f"seed-{account}",
        )
    # A barrage of strong transfers around the ring (mostly cross-shard
    # under hash placement) plus deliberately-overdrawn ones that must
    # abort without touching either balance.
    transfers = 0
    for index in range(N_ACCOUNTS):
        source = accounts[index]
        target = accounts[(index + 1) % N_ACCOUNTS]
        scenario.invoke(
            6.0 + 0.5 * index,
            index % REPLICAS_PER_SHARD,
            BankAccounts.transfer(source, target, 10 + index),
            strong=True,
            label=f"xfer-{index}",
        )
        transfers += 1
    for index in range(3):
        source = accounts[index * 3]
        target = accounts[(index * 3 + 5) % N_ACCOUNTS]
        scenario.invoke(
            14.0 + 0.5 * index,
            0,
            BankAccounts.transfer(source, target, 10_000),  # must abort
            strong=True,
            label=f"overdraw-{index}",
        )
        transfers += 1
    result = scenario.run(well_formed=False, max_time=2_000.0)

    cross = sum(
        1
        for index in range(N_ACCOUNTS)
        if result.deployment.owner_of(accounts[index])
        != result.deployment.owner_of(accounts[(index + 1) % N_ACCOUNTS])
    )
    final_total = sum(
        result.query(BankAccounts.balance(account)) for account in accounts
    )
    bit_identical = all(
        _fingerprint(replica) == _fingerprint(shard.replicas[0])
        for shard in result.deployment.shards
        for replica in shard.replicas
    )
    coordinator = result.router.coordinator
    return ConservationRun(
        tob_engine=tob_engine,
        n_shards=CONSERVATION_SHARDS,
        accounts=N_ACCOUNTS,
        initial_total=N_ACCOUNTS * INITIAL_BALANCE,
        final_total=final_total,
        conserved=final_total == N_ACCOUNTS * INITIAL_BALANCE,
        transfers=transfers,
        cross_shard_transfers=cross,
        committed_transfers=coordinator.committed_count,
        aborted_transfers=coordinator.aborted_count,
        shards_bit_identical=bit_identical,
        converged=result.converged,
    )


def run_conservation_matrix() -> List[ConservationRun]:
    return [run_conservation(engine) for engine in ("sequencer", "paxos")]


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def to_json(
    scaling: List[ShardingRun], conservation: List[ConservationRun]
) -> Dict[str, Any]:
    """The E12 artifact (uploaded by CI next to E10/E11)."""
    return {
        "experiment": "E12-sharding",
        "speedup_4_shards_uniform": speedup(scaling, 4),
        "all_converged": all(row.converged for row in scaling),
        "all_conserved": all(row.conserved for row in conservation),
        "all_bit_identical": all(
            row.shards_bit_identical for row in conservation
        ),
        "scaling": [asdict(row) for row in scaling],
        "conservation": [asdict(row) for row in conservation],
    }


def render_scaling(rows: List[ShardingRun]) -> str:
    return format_table(
        [
            "shards",
            "skew",
            "TOB",
            "committed",
            "thpt (ops/t)",
            "staleness",
            "routed/shard",
            "converged",
        ],
        [
            [
                row.n_shards,
                row.skew,
                row.tob_engine,
                row.committed_ops,
                f"{row.committed_throughput:.2f}",
                f"{row.weak_staleness:.2f}",
                str(row.routed_per_shard),
                row.converged,
            ]
            for row in rows
        ],
        title="Sharded scaling: throughput & staleness vs shard count (E12)",
    )


def render_conservation(rows: List[ConservationRun]) -> str:
    return format_table(
        [
            "TOB",
            "shards",
            "transfers",
            "cross-shard",
            "committed",
            "aborted",
            "Σ before",
            "Σ after",
            "conserved",
            "bit-identical",
        ],
        [
            [
                row.tob_engine,
                row.n_shards,
                row.transfers,
                row.cross_shard_transfers,
                row.committed_transfers,
                row.aborted_transfers,
                row.initial_total,
                row.final_total,
                row.conserved,
                row.shards_bit_identical,
            ]
            for row in rows
        ],
        title="Cross-shard strong transfers: conservation (E12)",
    )


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="FILE", help="also write the E12 artifact"
    )
    args = parser.parse_args(argv)
    scaling = run_scaling()
    conservation = run_conservation_matrix()
    print(render_scaling(scaling))
    print()
    print(render_conservation(conservation))
    print()
    print(
        f"committed-throughput speedup at 4 shards (uniform, sequencer): "
        f"{speedup(scaling, 4):.2f}x"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                to_json(scaling, conservation), handle, indent=2, sort_keys=True
            )
        print(f"wrote {args.json}")


if __name__ == "__main__":  # pragma: no cover
    main()
