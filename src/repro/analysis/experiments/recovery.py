"""Experiment E11 — crash–recovery convergence (durable replica state).

The paper's fault model is crash-stop ("replicas may crash silently and
cease all communication"), but the original Bayou design it revisits kept
its write log in stable storage precisely so a replica could come back and
catch up. This experiment exercises that crash–recovery story end to end:

**Schedule** (the sequencer matrix): a three-replica cluster appends to the
paper's replicated list; the network partitions ``{0,1} | {2}``; replica 2
crashes *mid-partition*; the partition heals while it is still down (so the
partition-buffered traffic that would have brought it up to date is flushed
into a dead process and silently lost — ``Network.suppressed_count``);
replica 2 then recovers from its durable state, pulls what it missed
through its dissemination substrate (RB recovery sync or anti-entropy
version-vector pulls) and its TOB catch-up (sequencer replay), and takes
fresh client operations. The run passes when the recovered replica is
**bit-identical** to the survivors: same register snapshot, same committed
order, same executed sequence.

The matrix covers both dissemination substrates (``rb`` /
``anti_entropy``), both reorder engines (``stepwise`` / ``batched``) and
both protocols (``original`` / ``modified``) — eight runs whose survivors
also agree *across* engines, since the engines are required to be
observably equivalent.

**Ω/Paxos leg**: the same shape with the Paxos TOB engine, crashing the
*leader* (replica 0) while it is isolated by the partition. The survivors
form a majority, elect replica 1 and keep committing; after recovery the
heartbeats of replica 0 resume, every Ω re-elects it (smallest pid), its
Paxos engine catches up through status/repair anti-entropy from its durable
acceptor state, and the cluster reconverges.

Run from the CLI (``python -m repro recovery``) or directly with ``--json
FILE`` to dump the convergence artifact CI uploads.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.report import format_table
from repro.datatypes.rlist import RList
from repro.scenario import Scenario

#: The crash-recovery timeline shared by every leg (simulated time units).
PARTITION_AT = 5.0
CRASH_AT = 12.0
HEAL_AT = 30.0
RECOVER_AT = 40.0


@dataclass
class RecoveryRun:
    """One crash–recovery run, reduced to its convergence verdict."""

    dissemination: str
    reorder_engine: str
    protocol: str
    tob_engine: str
    crashed_pid: int
    converged: bool
    #: Recovered replica bit-identical to the survivors (snapshot,
    #: committed order, executed sequence).
    recovered_matches_survivors: bool
    #: Messages silently lost into the crashed process.
    suppressed_messages: int
    #: Simulated downtime of the crashed replica.
    downtime: float
    #: Final list contents (identical on every replica when converged).
    final_value: str
    #: Committed order length at quiescence.
    committed_length: int
    #: Every node's Ω leader after recovery (Paxos leg only).
    leaders: Optional[List[int]] = None


def _fingerprint(replica) -> Tuple[Any, ...]:
    """The bit-identity fingerprint of one replica's converged state."""
    return (
        tuple(sorted(replica.state.snapshot().items(), key=repr)),
        tuple(req.dot for req in replica.committed),
        tuple(req.dot for req in replica.executed),
    )


def _populate(scenario: Scenario, crashed_pid: int) -> Scenario:
    """The shared workload around the crash window.

    Every replica appends before the partition; both sides keep appending
    during it; the crashed replica takes no operations while down (the
    cluster refuses them — a crashed replica is unreachable) and takes
    fresh ones after recovering.
    """
    survivors = [pid for pid in range(3) if pid != crashed_pid]
    for pid in range(3):
        scenario.invoke(1.0 + 0.3 * pid, pid, RList.append(f"a{pid}"))
    # Mid-partition traffic on both sides, including the soon-to-crash node.
    scenario.invoke(6.0, survivors[0], RList.append("p"))
    scenario.invoke(7.0, crashed_pid, RList.append("q"))
    scenario.invoke(8.0, survivors[1], RList.append("r"))
    # Survivors keep working while the replica is down.
    scenario.invoke(CRASH_AT + 3.0, survivors[0], RList.append("s"))
    scenario.invoke(CRASH_AT + 5.0, survivors[1], RList.append("t"))
    # Fresh operations on the recovered replica (its event numbering must
    # continue from the durable counter — a reused dot would collide).
    scenario.invoke(RECOVER_AT + 5.0, crashed_pid, RList.append("u"))
    scenario.invoke(RECOVER_AT + 6.0, survivors[0], RList.append("v"))
    return scenario


def run_recovery_case(
    dissemination: str,
    reorder_engine: str,
    protocol: str,
) -> RecoveryRun:
    """One sequencer-matrix leg: crash replica 2 mid-partition, recover it
    after heal, require bit-identical convergence."""
    crashed_pid = 2
    scenario = (
        Scenario(RList(), name=f"recovery-{dissemination}-{reorder_engine}-{protocol}")
        .replicas(3)
        .protocol(protocol)
        .dissemination(dissemination, sync_interval=1.5)
        .reorder(reorder_engine, checkpoint_interval=4)
        .durability("memory")
        .exec_delay(0.05)
        .message_delay(0.5)
        .partition(PARTITION_AT, [[0, 1], [crashed_pid]])
        .heal(HEAL_AT)
        .crash(crashed_pid, CRASH_AT, recover_at=RECOVER_AT)
    )
    _populate(scenario, crashed_pid)
    # A strong operation committed while the replica is down: recovery must
    # also restore the final (TOB) order, not just the weak updates.
    scenario.invoke(CRASH_AT + 8.0, 0, RList.duplicate(), strong=True)
    result = scenario.run(well_formed=False)
    replicas = result.cluster.replicas
    fingerprints = [_fingerprint(replica) for replica in replicas]
    return RecoveryRun(
        dissemination=dissemination,
        reorder_engine=reorder_engine,
        protocol=protocol,
        tob_engine="sequencer",
        crashed_pid=crashed_pid,
        converged=result.converged,
        recovered_matches_survivors=all(
            fingerprint == fingerprints[0] for fingerprint in fingerprints
        ),
        suppressed_messages=result.cluster.network.suppressed_count,
        downtime=replicas[crashed_pid].downtime,
        final_value=result.query(RList.read()),
        committed_length=len(replicas[0].committed),
        leaders=None,
    )


def run_recovery_omega(protocol: str = "original") -> RecoveryRun:
    """The Ω/Paxos leg: crash the isolated *leader* mid-partition.

    The surviving majority elects replica 1 and keeps committing; the
    recovered replica 0 resumes heartbeats, is re-elected by every Ω, pulls
    the decided suffix through Paxos status/repair, and reconverges.
    """
    crashed_pid = 0
    scenario = (
        Scenario(RList(), name=f"recovery-omega-{protocol}")
        .replicas(3)
        .protocol(protocol)
        .tob("paxos")
        .reorder("batched", checkpoint_interval=4)
        .durability("memory")
        .exec_delay(0.05)
        .message_delay(0.5)
        .config(heartbeat_interval=2.0, failure_timeout=7.0, paxos_retry_interval=4.0)
        .partition(PARTITION_AT, [[crashed_pid], [1, 2]])
        .heal(HEAL_AT)
        .crash(crashed_pid, CRASH_AT, recover_at=RECOVER_AT)
    )
    _populate(scenario, crashed_pid)
    scenario.invoke(CRASH_AT + 8.0, 1, RList.duplicate(), strong=True)
    live = scenario.build()
    live.settle(max_time=400.0)
    # Capture the leader view while Ω is still heartbeating: the recovered
    # node (smallest pid) must have been re-elected everywhere.
    leaders = [omega.leader() for omega in live.cluster.omegas]
    result = live.finish(well_formed=False)
    replicas = result.cluster.replicas
    fingerprints = [_fingerprint(replica) for replica in replicas]
    return RecoveryRun(
        dissemination="rb",
        reorder_engine="batched",
        protocol=protocol,
        tob_engine="paxos",
        crashed_pid=crashed_pid,
        converged=result.converged,
        recovered_matches_survivors=all(
            fingerprint == fingerprints[0] for fingerprint in fingerprints
        ),
        suppressed_messages=result.cluster.network.suppressed_count,
        downtime=replicas[crashed_pid].downtime,
        final_value=result.query(RList.read()),
        committed_length=len(replicas[0].committed),
        leaders=leaders,
    )


def run_recovery() -> List[RecoveryRun]:
    """The full E11 matrix: 8 sequencer legs + the Ω/Paxos leg."""
    rows: List[RecoveryRun] = []
    for dissemination in ("rb", "anti_entropy"):
        for reorder_engine in ("stepwise", "batched"):
            for protocol in ("original", "modified"):
                rows.append(
                    run_recovery_case(dissemination, reorder_engine, protocol)
                )
    rows.append(run_recovery_omega())
    return rows


def cross_engine_identical(rows: List[RecoveryRun]) -> bool:
    """Engines must also agree with *each other*: same final value and
    committed length for every (dissemination, protocol) pair."""
    by_key: Dict[Tuple[str, str], set] = {}
    for row in rows:
        if row.tob_engine != "sequencer":
            continue
        by_key.setdefault((row.dissemination, row.protocol), set()).add(
            (row.final_value, row.committed_length)
        )
    return all(len(values) == 1 for values in by_key.values())


def to_json(rows: List[RecoveryRun]) -> Dict[str, Any]:
    """The convergence artifact (uploaded by CI next to the benchmarks)."""
    return {
        "experiment": "E11-recovery",
        "all_converged": all(row.converged for row in rows),
        "all_bit_identical": all(row.recovered_matches_survivors for row in rows),
        "cross_engine_identical": cross_engine_identical(rows),
        "omega_reelected_recovered_leader": all(
            leader == row.crashed_pid
            for row in rows
            if row.leaders is not None
            for leader in row.leaders
        ),
        "runs": [asdict(row) for row in rows],
    }


def render_recovery(rows: List[RecoveryRun]) -> str:
    """The matrix as an ASCII table."""
    return format_table(
        [
            "dissemination",
            "engine",
            "protocol",
            "TOB",
            "converged",
            "bit-identical",
            "suppressed",
            "downtime",
            "leaders",
        ],
        [
            [
                row.dissemination,
                row.reorder_engine,
                row.protocol,
                row.tob_engine,
                row.converged,
                row.recovered_matches_survivors,
                row.suppressed_messages,
                f"{row.downtime:g}",
                "-" if row.leaders is None else str(row.leaders),
            ]
            for row in rows
        ],
        title="Crash-recovery convergence (experiment E11)",
    )


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="FILE", help="also write the convergence artifact"
    )
    args = parser.parse_args(argv)
    rows = run_recovery()
    print(render_recovery(rows))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(to_json(rows), handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")


if __name__ == "__main__":  # pragma: no cover
    main()
