"""Experiment E15 — the same protocol on real sockets, cross-checked.

The runtime seam (:mod:`repro.runtime`) claims that the protocol stack is
backend-agnostic: the code that runs deterministically on the simulation
kernel is byte-for-byte the code a real deployment runs over asyncio TCP.
This experiment puts the claim on the line.

**Cross-check leg.** A scripted key-value workload is driven *closed-loop*
(each operation waits until it is committed at its origin replica before
the next is submitted) against two deployments of the identical stack:

- a 3-replica **realtime** cluster — three operating-system processes
  speaking length-prefixed frames over localhost TCP
  (:class:`~repro.runtime.launcher.RealtimeCluster`), and
- a 3-replica **simulated** cluster with the same configuration
  (:class:`~repro.core.cluster.BayouCluster`).

Closed-loop driving pins the committed order to the submission order on
*both* substrates — the sequencer numbers operation *k* before operation
*k+1* is even cast — so the runs must agree exactly: same committed dot
sequence on every replica, same final state snapshot. Any divergence means
a backend leaked into protocol behaviour.

**Throughput leg.** A burst of commutative counter increments is fired
open-loop (no waiting) round-robin across the realtime cluster, then the
experiment waits for full convergence and reports real wall-clock
operations per second — the number the simulator, whose clock is virtual,
cannot produce. Commutativity makes the final state order-independent, so
the leg still ends with a hard correctness check (every replica's counter
equals the burst size) without constraining the race.

Run ``python -m repro realtime`` (or ``--smoke`` for the quick CI variant,
``--json FILE`` for the artifact CI uploads).
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.metrics import rate
from repro.analysis.report import format_table
from repro.core.cluster import BayouCluster
from repro.core.config import BayouConfig
from repro.datatypes import Counter, KVStore
from repro.runtime.launcher import RealtimeCluster
from repro.runtime.serve import ClusterSpec

#: Closed-loop scripted workload: (op constructor name, args) round-robin.
def _scripted_ops(n_ops: int) -> List[Any]:
    ops: List[Any] = []
    for index in range(n_ops):
        key = f"k{index % 5}"
        if index % 4 == 3:
            ops.append(KVStore.get(key))
        elif index % 7 == 5:
            ops.append(KVStore.remove(key))
        else:
            ops.append(KVStore.put(key, f"v{index}"))
    return ops


def _sim_run(
    ops: List[Any], n_replicas: int
) -> Tuple[List[List[Tuple[int, int]]], Dict[str, Any], List[Any]]:
    """Drive the scripted workload closed-loop on the simulated cluster."""
    cluster = BayouCluster(
        KVStore(),
        BayouConfig(n_replicas=n_replicas, record_perceived_traces=False),
    )
    responses: List[Any] = []
    for index, op in enumerate(ops):
        future = cluster.submit(index % n_replicas, op)
        cluster.run_until_quiescent()
        assert future.stable, f"sim op {index} did not stabilise"
        responses.append(future.value)
    cluster.shutdown()
    cluster.run_until_quiescent()
    orders = [[req.dot for req in replica.committed] for replica in cluster.replicas]
    snapshot = cluster.replicas[0].state.snapshot()
    return orders, snapshot, responses


def _realtime_run(
    ops: List[Any], n_replicas: int
) -> Tuple[List[List[Tuple[int, int]]], List[Dict[str, Any]], List[Any], float]:
    """Drive the same workload closed-loop over real sockets."""
    spec = ClusterSpec(n_replicas=n_replicas, datatype="kvstore")
    responses: List[Any] = []
    started = time.perf_counter()
    with RealtimeCluster(spec) as cluster:
        for index, op in enumerate(ops):
            reply = cluster.invoke(index % n_replicas, op, wait="stable")
            responses.append(reply["value"])
            # Full convergence between steps, mirroring the sim leg's
            # run-until-quiescent: the *next* op's tentative response is
            # computed against every prior op, on both substrates.
            cluster.await_convergence(expect_committed=index + 1)
        statuses = cluster.await_convergence(expect_committed=len(ops))
        elapsed = time.perf_counter() - started
    orders = [
        [tuple(dot) for dot in status["committed"]] for status in statuses
    ]
    snapshots = [status["state"] for status in statuses]
    return orders, snapshots, responses, elapsed


def _throughput_run(burst: int, n_replicas: int) -> Dict[str, Any]:
    """Open-loop commutative burst; report wall-clock ops/sec."""
    spec = ClusterSpec(n_replicas=n_replicas, datatype="counter")
    with RealtimeCluster(spec) as cluster:
        started = time.perf_counter()
        for index in range(burst):
            cluster.invoke(index % n_replicas, Counter.increment(), wait="none")
        statuses = cluster.await_convergence(expect_committed=burst)
        elapsed = time.perf_counter() - started
        final = cluster.invoke(0, Counter.read(), wait="stable")["value"]
    counters = [status["state"] for status in statuses]
    return {
        "burst": burst,
        "elapsed_s": elapsed,
        "ops_per_sec": rate(burst, elapsed, default=float("inf")),
        "final_value": final,
        "value_ok": final == burst
        and all(state.get("counter:value") == burst for state in counters),
    }


def run_experiment(*, smoke: bool = False) -> Dict[str, Any]:
    n_replicas = 3
    n_ops = 8 if smoke else 24
    burst = 20 if smoke else 120

    ops = _scripted_ops(n_ops)
    sim_orders, sim_snapshot, sim_responses = _sim_run(ops, n_replicas)
    rt_orders, rt_snapshots, rt_responses, rt_elapsed = _realtime_run(
        ops, n_replicas
    )

    order_match = all(order == sim_orders[0] for order in sim_orders) and all(
        order == sim_orders[0] for order in rt_orders
    )
    state_match = all(snap == sim_snapshot for snap in rt_snapshots)
    response_match = sim_responses == rt_responses
    throughput = _throughput_run(burst, n_replicas)

    return {
        "n_replicas": n_replicas,
        "n_ops": n_ops,
        "committed_order_match": order_match,
        "state_match": state_match,
        "response_match": response_match,
        "committed_order": [list(dot) for dot in sim_orders[0]],
        "final_state": {str(k): v for k, v in sim_snapshot.items()},
        "closed_loop_elapsed_s": rt_elapsed,
        "closed_loop_ops_per_sec": rate(
            n_ops, rt_elapsed, default=float("inf")
        ),
        "throughput": throughput,
        "ok": order_match
        and state_match
        and response_match
        and throughput["value_ok"],
    }


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small quick variant (CI)"
    )
    parser.add_argument(
        "--json", metavar="FILE", help="also write the result artifact"
    )
    args = parser.parse_args(argv)

    result = run_experiment(smoke=args.smoke)

    rows = [
        ["cross-check: committed order", "match" if result["committed_order_match"] else "DIVERGED"],
        ["cross-check: final state", "match" if result["state_match"] else "DIVERGED"],
        ["cross-check: responses", "match" if result["response_match"] else "DIVERGED"],
        [
            "closed-loop (stable per op)",
            f"{result['n_ops']} ops, "
            f"{result['closed_loop_ops_per_sec']:.1f} ops/s wall-clock",
        ],
        [
            "open-loop counter burst",
            f"{result['throughput']['burst']} ops, "
            f"{result['throughput']['ops_per_sec']:.1f} ops/s wall-clock, "
            f"value {'ok' if result['throughput']['value_ok'] else 'WRONG'}",
        ],
    ]
    print(format_table(["leg", "result"], rows))
    print(
        "verdict:",
        "realtime deployment matches the simulation"
        if result["ok"]
        else "DIVERGENCE between realtime and simulated runs",
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
    if not result["ok"]:
        raise SystemExit(1)


if __name__ == "__main__":  # pragma: no cover
    main()
