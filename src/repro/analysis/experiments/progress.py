"""Experiment E3 — Section 2.3: Bayou is not bounded wait-free.

Two scenarios, both with n replicas saturated by one weak request per
replica every Δt:

**Slow replica.** Replica ``Rs`` processes internal steps much slower than
the others. Under the original protocol every new operation invoked on Rs
is scheduled behind the (growing) backlog, so its response time grows with
every invocation — the paper's unbounded-wait argument. Under the modified
protocol weak responses are immediate (bounded wait-free, Appendix A.1.2).

**Slowed clock.** The counter-measure the paper discusses — artificially
slowing Rs's clock to give its operations "unfair priority" — makes every
operation issued on Rs appear to come from a distant past, so on the other
replicas it is inserted ever deeper into the tentative list and triggers a
growing number of rollbacks. We measure cumulative rollbacks on the fast
replicas with and without the slowdown (TOB is stalled during the window so
the tentative list is the live order, as in a long partition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.cluster import MODIFIED, ORIGINAL
from repro.datatypes.counter import Counter
from repro.scenario import Scenario


@dataclass
class SlowReplicaResult:
    """Latency trajectory of the slow replica's own weak operations."""

    protocol: str
    rounds: int
    delta_t: float
    latencies: List[float]
    backlog_curve: List[int] = field(default_factory=list)

    @property
    def growth(self) -> float:
        """Last-quarter mean latency minus first-quarter mean latency."""
        if len(self.latencies) < 4:
            return 0.0
        quarter = max(1, len(self.latencies) // 4)
        head = self.latencies[:quarter]
        tail = self.latencies[-quarter:]
        return sum(tail) / len(tail) - sum(head) / len(head)


def run_slow_replica(
    *,
    protocol: str = ORIGINAL,
    n_replicas: int = 3,
    rounds: int = 30,
    delta_t: float = 1.0,
    slow_pid: int = 2,
    slow_exec_delay: float = 0.6,
    fast_exec_delay: float = 0.02,
) -> SlowReplicaResult:
    """Saturate the cluster and track the slow replica's response times.

    ``slow_exec_delay`` is chosen so that Rs needs ``n_replicas *
    slow_exec_delay > delta_t`` time units of processing per round — the
    saturation condition of the paper's argument.
    """
    slow_futures = []
    backlog_curve: List[int] = []

    def one_round(run) -> None:
        for pid in range(n_replicas):
            future = run.submit(pid, Counter.increment(1))
            if pid == slow_pid:
                slow_futures.append(future)
        backlog_curve.append(run.cluster.replicas[slow_pid].backlog)

    scenario = (
        Scenario(Counter(), name="slow-replica")
        .replicas(n_replicas)
        .protocol(protocol)
        .exec_delay(fast_exec_delay, overrides={slow_pid: slow_exec_delay})
        .message_delay(0.1)
    )
    for round_index in range(rounds):
        scenario.at(1.0 + round_index * delta_t, one_round)
    live = scenario.build()
    live.run_until_quiescent()

    latencies = [
        future.latency for future in slow_futures if future.latency is not None
    ]
    return SlowReplicaResult(
        protocol=protocol,
        rounds=rounds,
        delta_t=delta_t,
        latencies=latencies,
        backlog_curve=backlog_curve,
    )


@dataclass
class ClockSlowdownResult:
    """Rollback counts on the fast replicas, with/without the slowed clock."""

    slow_rate: float
    rounds: int
    rollbacks_fast_replicas: int
    rollbacks_per_round: List[int]

    @property
    def late_vs_early_ratio(self) -> float:
        """How much rollback activity grew from the first to the last third."""
        if len(self.rollbacks_per_round) < 3:
            return 1.0
        third = max(1, len(self.rollbacks_per_round) // 3)
        early = sum(self.rollbacks_per_round[:third]) or 1
        late = sum(self.rollbacks_per_round[-third:])
        return late / early


def run_clock_slowdown(
    *,
    slow_rate: float = 0.4,
    n_replicas: int = 3,
    rounds: int = 25,
    delta_t: float = 1.0,
    slow_pid: int = 2,
) -> ClockSlowdownResult:
    """Measure the rollback storm caused by a deliberately slowed clock.

    TOB is delayed past the measurement window, so the tentative list is
    where ordering happens (the regime the paper's argument addresses).
    """
    fast_pids = [pid for pid in range(n_replicas) if pid != slow_pid]
    rollbacks_per_round: List[int] = []
    previous_total = [0]

    def one_round(run) -> None:
        for pid in range(n_replicas):
            run.submit(pid, Counter.increment(1))
        total = sum(
            run.cluster.replicas[pid].rollback_count for pid in fast_pids
        )
        rollbacks_per_round.append(total - previous_total[0])
        previous_total[0] = total

    scenario = (
        Scenario(Counter(), name="clock-slowdown")
        .replicas(n_replicas)
        .exec_delay(0.01)
        .message_delay(0.1)
        .clock_drift(slow_pid, rate=slow_rate)
        .tob_extra_delay(10_000.0)
    )
    for round_index in range(rounds):
        scenario.at(1.0 + round_index * delta_t, one_round)
    live = scenario.build()
    # Stop before the delayed TOB messages arrive: an asynchronous-run
    # window, exactly like a long-lasting partition.
    live.run(until=1.0 + rounds * delta_t + 50.0)

    return ClockSlowdownResult(
        slow_rate=slow_rate,
        rounds=rounds,
        rollbacks_fast_replicas=sum(
            live.cluster.replicas[pid].rollback_count for pid in fast_pids
        ),
        rollbacks_per_round=rollbacks_per_round,
    )


def main() -> None:  # pragma: no cover - manual entry point
    for protocol in (ORIGINAL, MODIFIED):
        result = run_slow_replica(protocol=protocol)
        print(
            f"{protocol:8s} latencies head={result.latencies[:3]} "
            f"tail={result.latencies[-3:]} growth={result.growth:.2f}"
        )
    for rate in (1.0, 0.4):
        slowdown = run_clock_slowdown(slow_rate=rate)
        print(
            f"clock rate {rate}: fast-replica rollbacks="
            f"{slowdown.rollbacks_fast_replicas} "
            f"late/early={slowdown.late_vs_early_ratio:.2f}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
