"""Experiment E1 — Figure 1: temporary operation reordering.

The schedule (two replicas, an initially empty replicated list):

1. R0 invokes weak ``append("a")``; it commits and replicates everywhere.
2. R0 invokes weak ``append("x")`` (timestamp 10); R1 invokes strong
   ``duplicate()`` slightly later in real time but with a *smaller*
   timestamp (R1's clock runs 0.5 behind), so the tentative order is
   ``duplicate, append(x)``.
3. R0's local execution is delayed (per-step processing cost 1.5) long
   enough that the RB message about ``duplicate()`` arrives first, so the
   speculative execution at R0 runs ``duplicate`` then ``append(x)`` and the
   weak ``append(x)`` returns the tentative response **aax**.
4. TOB (made slower than RB, as in the figure) establishes the final order
   ``append(a), append(x), duplicate``, so the strong ``duplicate()``
   returns **axax** — and the two clients have observed ``append(x)`` and
   ``duplicate()`` in opposite orders.

Paper-expected observables reproduced exactly:

- weak ``append(x)`` → ``aax`` (paper: ``append(x) → aax``),
- strong ``duplicate()`` → ``axax``,
- the strong-append variant returns ``ax`` (paper: ``(→ ax)``),
- both replicas converge to ``axax``,
- the framework detects the anomalies: ``BEC(weak)`` fails and (because the
  original protocol also creates circular causality here) NCC reports an
  hb-cycle between ``append(x)`` and ``duplicate()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.analysis.experiments.common import tob_delay_filter
from repro.analysis.metrics import (
    count_reordering_witnesses,
    count_trace_final_discords,
)
from repro.core.cluster import MODIFIED, ORIGINAL, BayouCluster
from repro.core.config import BayouConfig
from repro.datatypes.rlist import RList
from repro.framework.builder import build_abstract_execution
from repro.framework.guarantees import GuaranteeReport, check_bec, check_fec, check_seq
from repro.framework.history import History, WEAK, STRONG
from repro.net.faults import MessageFilter


@dataclass
class Figure1Result:
    """Everything Figure 1 shows, as measured."""

    protocol: str
    strong_append: bool
    responses: Dict[str, Any]
    final_value: str
    converged: bool
    reordering_witnesses: int
    trace_final_discords: int
    history: History = field(repr=False, default=None)
    bec_weak: GuaranteeReport = field(repr=False, default=None)
    fec_weak: GuaranteeReport = field(repr=False, default=None)
    seq_strong: GuaranteeReport = field(repr=False, default=None)


def run_figure1(
    *, protocol: str = ORIGINAL, strong_append: bool = False
) -> Figure1Result:
    """Run the Figure 1 schedule and return the measured observables."""
    config = BayouConfig(
        n_replicas=2,
        exec_delay=1.5,
        message_delay=1.0,
        clock_offsets={1: -0.5},
        sequencer_pid=0,
    )
    filters = MessageFilter()
    tob_delay_filter(filters, 10.0)
    cluster = BayouCluster(RList(), config, protocol=protocol, filters=filters)

    requests: Dict[str, Any] = {}

    def invoke(name: str, pid: int, op, strong: bool) -> None:
        requests[name] = cluster.invoke(pid, op, strong=strong)

    cluster.sim.schedule_at(1.0, lambda: invoke("append_a", 0, RList.append("a"), False))
    cluster.sim.schedule_at(
        10.0, lambda: invoke("append_x", 0, RList.append("x"), strong_append)
    )
    cluster.sim.schedule_at(
        10.2, lambda: invoke("duplicate", 1, RList.duplicate(), True)
    )
    cluster.run_until_quiescent()

    cluster.add_horizon_probes(RList.read)
    cluster.run_until_quiescent()

    history = cluster.build_history()
    responses = {
        name: history.event(req.dot).rval for name, req in requests.items()
    }
    execution = build_abstract_execution(history)
    final_value = cluster.replicas[0].state.datatype.execute(
        RList.read(), _snapshot_view(cluster)
    )
    return Figure1Result(
        protocol=protocol,
        strong_append=strong_append,
        responses=responses,
        final_value=final_value,
        converged=cluster.converged(),
        reordering_witnesses=count_reordering_witnesses(history),
        trace_final_discords=count_trace_final_discords(history),
        history=history,
        bec_weak=check_bec(execution, WEAK),
        fec_weak=check_fec(execution, WEAK),
        seq_strong=check_seq(execution, STRONG),
    )


def _snapshot_view(cluster: BayouCluster):
    """A read-only view over replica 0's converged register map."""
    from repro.datatypes.base import PlainDb

    return PlainDb(cluster.replicas[0].state.snapshot())


def main() -> None:  # pragma: no cover - manual entry point
    for protocol in (ORIGINAL, MODIFIED):
        for strong_append in (False, True):
            result = run_figure1(protocol=protocol, strong_append=strong_append)
            print(
                f"{protocol:8s} strong_append={strong_append!s:5s} "
                f"responses={result.responses} final={result.final_value!r} "
                f"reorder={result.reordering_witnesses} "
                f"BEC(weak) ok={result.bec_weak.ok} "
                f"FEC(weak) ok={result.fec_weak.ok}"
            )


if __name__ == "__main__":  # pragma: no cover
    main()
