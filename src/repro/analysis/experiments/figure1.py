"""Experiment E1 — Figure 1: temporary operation reordering.

The schedule (two replicas, an initially empty replicated list):

1. R0 invokes weak ``append("a")``; it commits and replicates everywhere.
2. R0 invokes weak ``append("x")`` (timestamp 10); R1 invokes strong
   ``duplicate()`` slightly later in real time but with a *smaller*
   timestamp (R1's clock runs 0.5 behind), so the tentative order is
   ``duplicate, append(x)``.
3. R0's local execution is delayed (per-step processing cost 1.5) long
   enough that the RB message about ``duplicate()`` arrives first, so the
   speculative execution at R0 runs ``duplicate`` then ``append(x)`` and the
   weak ``append(x)`` returns the tentative response **aax**.
4. TOB (made slower than RB, as in the figure) establishes the final order
   ``append(a), append(x), duplicate``, so the strong ``duplicate()``
   returns **axax** — and the two clients have observed ``append(x)`` and
   ``duplicate()`` in opposite orders.

Paper-expected observables reproduced exactly:

- weak ``append(x)`` → ``aax`` (paper: ``append(x) → aax``),
- strong ``duplicate()`` → ``axax``,
- the strong-append variant returns ``ax`` (paper: ``(→ ax)``),
- both replicas converge to ``axax``,
- the framework detects the anomalies: ``BEC(weak)`` fails and (because the
  original protocol also creates circular causality here) NCC reports an
  hb-cycle between ``append(x)`` and ``duplicate()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.analysis.metrics import (
    count_reordering_witnesses,
    count_trace_final_discords,
)
from repro.core.cluster import MODIFIED, ORIGINAL
from repro.datatypes.rlist import RList
from repro.framework.guarantees import GuaranteeReport
from repro.framework.history import History
from repro.scenario import Scenario


@dataclass
class Figure1Result:
    """Everything Figure 1 shows, as measured."""

    protocol: str
    strong_append: bool
    responses: Dict[str, Any]
    final_value: str
    converged: bool
    reordering_witnesses: int
    trace_final_discords: int
    history: History = field(repr=False, default=None)
    bec_weak: GuaranteeReport = field(repr=False, default=None)
    fec_weak: GuaranteeReport = field(repr=False, default=None)
    seq_strong: GuaranteeReport = field(repr=False, default=None)


def figure1_scenario(
    *, protocol: str = ORIGINAL, strong_append: bool = False
) -> Scenario:
    """The Figure 1 schedule as a declarative scenario."""
    return (
        Scenario(RList(), name="figure1")
        .replicas(2)
        .protocol(protocol)
        .exec_delay(1.5)
        .message_delay(1.0)
        .clock_drift(1, offset=-0.5)
        .tob("sequencer", sequencer=0)
        .tob_extra_delay(10.0)
        .invoke(1.0, 0, RList.append("a"), label="append_a")
        .invoke(10.0, 0, RList.append("x"), strong=strong_append, label="append_x")
        .invoke(10.2, 1, RList.duplicate(), strong=True, label="duplicate")
        .probes(RList.read)
        .checks(bec="weak", fec="weak", seq="strong")
    )


def run_figure1(
    *, protocol: str = ORIGINAL, strong_append: bool = False
) -> Figure1Result:
    """Run the Figure 1 schedule and return the measured observables."""
    result = figure1_scenario(
        protocol=protocol, strong_append=strong_append
    ).run()
    return Figure1Result(
        protocol=protocol,
        strong_append=strong_append,
        responses=result.responses,
        final_value=result.query(RList.read()),
        converged=result.converged,
        reordering_witnesses=count_reordering_witnesses(result.history),
        trace_final_discords=count_trace_final_discords(result.history),
        history=result.history,
        bec_weak=result.check("bec:weak"),
        fec_weak=result.check("fec:weak"),
        seq_strong=result.check("seq:strong"),
    )


def main() -> None:  # pragma: no cover - manual entry point
    for protocol in (ORIGINAL, MODIFIED):
        for strong_append in (False, True):
            result = run_figure1(protocol=protocol, strong_append=strong_append)
            print(
                f"{protocol:8s} strong_append={strong_append!s:5s} "
                f"responses={result.responses} final={result.final_value!r} "
                f"reorder={result.reordering_witnesses} "
                f"BEC(weak) ok={result.bec_weak.ok} "
                f"FEC(weak) ok={result.fec_weak.ok}"
            )


if __name__ == "__main__":  # pragma: no cover
    main()
