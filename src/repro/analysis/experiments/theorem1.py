"""Experiment E4 (live half) — driving a real cluster through the Theorem 1
schedule.

The proof of Theorem 1 constructs an adversarial execution; here we realise
it on the actual Bayou implementation:

- replica i (R0) invokes weak ``append("a")``; replica j (R1) invokes weak
  ``append("b")`` — two non-commuting weak updates;
- every message carrying knowledge of ``a`` into R1 is delayed past the
  interesting window (the link-level partition of the proof), while R2 (k)
  hears both;
- k invokes a weak read once passive: by Lemma 2 it must reflect both
  updates — it returns ``"ab"``;
- j invokes strong ``append("c")``; the sequencer (at k) orders it before
  the delayed ``a``, and j — non-blocking, knowing nothing of ``a`` —
  returns ``"bc"``.

The resulting four-event history is byte-for-byte the history of
:func:`repro.framework.impossibility.build_theorem1_history`; feeding it to
the exhaustive search shows *no* abstract execution satisfies
``BEC(weak) ∧ Seq(strong)``, while the run itself (checked end-to-end after
healing) satisfies ``FEC(weak) ∧ Seq(strong)`` — Bayou pays for the mix
with temporary operation reordering, exactly as the theorem mandates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.core.cluster import ORIGINAL
from repro.datatypes.rlist import RList
from repro.framework.guarantees import GuaranteeReport
from repro.framework.history import History
from repro.framework.search import SearchOutcome, find_bec_seq_execution
from repro.scenario import Scenario


@dataclass
class Theorem1LiveResult:
    """Observables of the live Theorem-1 schedule."""

    responses: Dict[str, Any]
    converged: bool
    bec_weak: GuaranteeReport = field(repr=False, default=None)
    fec_weak: GuaranteeReport = field(repr=False, default=None)
    seq_strong: GuaranteeReport = field(repr=False, default=None)
    search: SearchOutcome = field(repr=False, default=None)
    history: History = field(repr=False, default=None)
    core_history: History = field(repr=False, default=None)


def theorem1_scenario(*, protocol: str = ORIGINAL) -> Scenario:
    """The proof's adversarial schedule as a declarative scenario."""
    return (
        Scenario(RList(), name="theorem1")
        .replicas(3)
        .protocol(protocol)
        .exec_delay(0.5)
        .message_delay(1.0)
        # The sequencer lives with k (replica 2), reachable by all.
        .tob("sequencer", sequencer=2)
        # TOB is slower than RB everywhere (as in the figures), so the read
        # on k happens before anything commits and returns the tentative
        # order "ab".
        .tob_extra_delay(10.0)
        # a's dot will be (0, 1): delay all knowledge of it into replica 1.
        .quarantine_dot((0, 1), receiver=1, extra=300.0)
        # Delay only a's TOB messages at the sequencer (replica 2) so the
        # final order becomes b, r, c, a; a's RB still reaches k immediately.
        .delay_tob_for_dot((0, 1), receiver=2, extra=25.0)
        .invoke(1.0, 0, RList.append("a"), label="a")
        .invoke(2.0, 1, RList.append("b"), label="b")
        .invoke(3.6, 2, RList.read(), label="r")
        .invoke(8.0, 1, RList.append("c"), strong=True, label="c")
        .probes(RList.read)
        .checks(bec="weak", fec="weak", seq="strong")
    )


def run_theorem1_live(*, protocol: str = ORIGINAL) -> Theorem1LiveResult:
    """Drive the proof's schedule on a real 3-replica Bayou cluster.

    Works for both protocols: the modified protocol's weak read on k also
    reflects the tentative order (a, b), so the same BEC violation appears —
    Theorem 1 binds the modified protocol too, which is the whole point of
    FEC.
    """
    result = theorem1_scenario(protocol=protocol).run()
    # The four proof events, extracted for the exhaustive search.
    core_history = result.sub_history(["a", "b", "r", "c"])
    return Theorem1LiveResult(
        responses=result.responses,
        converged=result.converged,
        bec_weak=result.check("bec:weak"),
        fec_weak=result.check("fec:weak"),
        seq_strong=result.check("seq:strong"),
        search=find_bec_seq_execution(core_history),
        history=result.history,
        core_history=core_history,
    )


def main() -> None:  # pragma: no cover - manual entry point
    result = run_theorem1_live()
    print(f"responses: {result.responses}")
    print(f"converged: {result.converged}")
    print(result.bec_weak.summary())
    print(result.fec_weak.summary())
    print(result.seq_strong.summary())
    print(
        "exhaustive search:",
        "NO BEC(weak) ∧ Seq(strong) extension exists"
        if not result.search.satisfiable
        else "unexpectedly satisfiable!",
        f"({result.search.arbitrations_tried} arbitrations examined)",
    )


if __name__ == "__main__":  # pragma: no cover
    main()
