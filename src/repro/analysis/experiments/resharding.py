"""Experiment E13 — live resharding: elastic scale-out under traffic.

E12 established that a *static* sharded deployment scales committed-op
throughput; E13 measures what it costs to get from N to N+1 shards
**without stopping the world**. A 2-shard deployment runs a keyed KV
workload; mid-run, shard 0 is split (epoch barrier through its TOB,
frozen committed-prefix snapshot plus tentative-suffix handoff to the
freshly spawned shard, epoch activation) while the workload keeps
issuing operations. Reported per leg (uniform/Zipf keys × both TOB
engines, all in simulated time, deterministic under the seed):

- **migration dip** — committed-op throughput inside the handoff window
  ``[barrier staged, epoch activated]`` relative to the pre-split rate.
  Operations touching moving keys are deferred (the
  ``MigrationInProgress`` retry path), so the dip is real but bounded —
  nothing is refused and nothing is lost;
- **post-split throughput** — a second workload phase driven against the
  now-3-shard deployment, compared with the *same* phase on a fresh
  3-shard deployment: the gate is post-split throughput within 10% of
  the fresh baseline (the split deployment's placement is the epoch
  chain, the fresh one's is plain hashing, so the two are equal only up
  to placement noise);
- **weak-op staleness** through the split, plus the handoff's own
  footprint: registers moved, tentative twins transferred, duplicate
  drops, operations deferred.

A conservation leg runs `BankAccounts` through the same split while a
barrage of strong (mostly cross-shard) transfers is in flight: Σ
balances is unchanged at quiescence and every shard's replicas converge
— the epoch boundary neither mints nor loses money.

Run from the CLI (``python -m repro reshard``) or directly with
``--json FILE`` to dump the artifact CI uploads next to E10–E12.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass
from statistics import mean
from typing import Any, Dict, List, Optional

from repro.analysis.metrics import committed_op_rate, weak_staleness_samples
from repro.analysis.report import format_table
from repro.analysis.workload import RandomWorkload, kv_profile, make_sampler
from repro.datatypes.bank import BankAccounts
from repro.datatypes.kvstore import KVStore
from repro.scenario import Scenario

REPLICAS_PER_SHARD = 3
SESSIONS = 10
OPS_PER_SESSION = 24
N_KEYS = 128
EXEC_DELAY = 0.1
MESSAGE_DELAY = 0.2
STRONG_PROBABILITY = 0.1
PHASE_A_SEED = 3
PHASE_B_SEED = 11
SPLIT_AT = 6.0
TRANSFER_DELAY = 1.0

KEYS = [f"k{i}" for i in range(N_KEYS)]


@dataclass
class ReshardingRun:
    """One split leg: the dip/post-split envelope of a live migration."""

    skew: str
    tob_engine: str
    epoch: int
    #: Simulated length of the handoff window (barrier → activation).
    window: float
    moved_registers: int
    transferred_requests: int
    duplicate_drops: int
    deferred_ops: int
    forwarded_routes: int
    #: Committed-op throughput before the barrier was staged.
    pre_split_throughput: float
    #: Committed-op throughput inside the handoff window.
    window_throughput: float
    #: window / pre ratio — the migration dip (1.0 = no dip).
    dip_ratio: float
    #: Phase-B committed throughput on the split (now 3-shard) deployment.
    post_split_throughput: float
    #: The same phase B on a fresh 3-shard deployment.
    fresh_throughput: float
    #: post / fresh — the elasticity gate wants |1 - ratio| <= 0.10.
    post_split_ratio: float
    weak_staleness: float
    converged: bool


@dataclass
class ConservationSplitRun:
    """The conservation verdict of a split under a transfer barrage."""

    tob_engine: str
    accounts: int
    initial_total: int
    final_total: int
    conserved: bool
    transfers: int
    committed_transfers: int
    aborted_transfers: int
    deferred_subs: int
    epoch: int
    converged: bool


def _kv_scenario(n_shards: int, skew: str, tob_engine: str) -> Scenario:
    scenario = (
        Scenario(KVStore(), name=f"resharding-{n_shards}-{skew}-{tob_engine}")
        .shards(n_shards)
        .replicas(REPLICAS_PER_SHARD)
        .exec_delay(EXEC_DELAY)
        .message_delay(MESSAGE_DELAY)
        .config(record_perceived_traces=False)
        .workload(
            "kv",
            keys=KEYS,
            key_skew=skew,
            ops_per_session=OPS_PER_SESSION,
            think_time=0.0,
            seed=PHASE_A_SEED,
            sessions=SESSIONS,
            strong_probability=STRONG_PROBABILITY,
        )
    )
    if tob_engine == "paxos":
        scenario.tob("paxos").config(
            heartbeat_interval=2.0, failure_timeout=7.0, paxos_retry_interval=4.0
        )
    return scenario


def _phase_futures(workload: RandomWorkload):
    return [f for session in workload.sessions for f in session.futures]


def _drive_phase_b(live, skew: str) -> RandomWorkload:
    profile = kv_profile(
        STRONG_PROBABILITY, sampler=make_sampler(KEYS, skew)
    )
    workload = RandomWorkload(
        live.router,
        profile,
        ops_per_session=OPS_PER_SESSION,
        think_time=0.0,
        seed=PHASE_B_SEED,
        sessions=SESSIONS,
    )
    workload.start()
    live.settle(max_time=6_000.0)
    return workload


def _finish(live, tob_engine: str) -> None:
    if tob_engine == "paxos":
        live.shutdown()
        live.run_until_quiescent()


def run_split_case(
    skew: str = "uniform", tob_engine: str = "sequencer"
) -> ReshardingRun:
    """One live-split leg: workload on 2 shards, split shard 0 mid-run."""
    live = _kv_scenario(2, skew, tob_engine).build()
    live.run(until=SPLIT_AT)
    migration = live.deployment.split(0, transfer_delay=TRANSFER_DELAY)
    for _ in range(200):
        if migration.complete:
            break
        live.run(until=live.now + 5.0)
    assert migration.complete, "the split never activated"
    live.settle(max_time=6_000.0)

    phase_a = _phase_futures(live.workloads[0])
    first_invoke = min(
        f.invoke_time for f in phase_a if f.invoke_time is not None
    )
    pre = committed_op_rate(
        phase_a, start=first_invoke, end=migration.started_at
    )
    window = committed_op_rate(
        phase_a, start=migration.started_at, end=migration.activated_at
    )
    staleness = weak_staleness_samples(phase_a)

    phase_b = _drive_phase_b(live, skew)
    b_futures = _phase_futures(phase_b)
    b_start = min(f.invoke_time for f in b_futures if f.invoke_time is not None)
    b_end = max(f.stable_time for f in b_futures if f.stable_time is not None)
    post = committed_op_rate(b_futures, start=b_start, end=b_end + 1e-9)
    converged = live.converged()
    _finish(live, tob_engine)

    fresh = run_fresh_baseline(skew, tob_engine)
    return ReshardingRun(
        skew=skew,
        tob_engine=tob_engine,
        epoch=live.deployment.epoch,
        window=migration.activated_at - migration.started_at,
        moved_registers=migration.moved_registers,
        transferred_requests=migration.transferred_requests,
        duplicate_drops=migration.duplicate_drops,
        deferred_ops=migration.deferred_ops,
        forwarded_routes=live.router.forwarded_count,
        pre_split_throughput=pre,
        window_throughput=window,
        dip_ratio=window / pre if pre else 0.0,
        post_split_throughput=post,
        fresh_throughput=fresh,
        post_split_ratio=post / fresh if fresh else 0.0,
        weak_staleness=mean(staleness) if staleness else 0.0,
        converged=converged,
    )


def run_fresh_baseline(skew: str, tob_engine: str) -> float:
    """Phase-B committed throughput on a *fresh* 3-shard deployment.

    Same warm-up phase, same phase-B workload and seed, and — crucially
    — the *same placement* as the post-split deployment: the fresh
    deployment is born with the split's epoch already applied
    (:meth:`ShardedCluster.static_reassign`), so the comparison isolates
    the migration's residual cost (stranded source registers, the
    install in the destination's log) from placement-balance noise.
    """
    from repro.shard.partitioner import Reassignment

    live = _kv_scenario(2, skew, tob_engine).build()
    live.deployment.static_reassign(
        Reassignment("split", 0, 2, ("split-epoch1",))
    )
    live.settle(max_time=6_000.0)
    phase_b = _drive_phase_b(live, skew)
    futures = _phase_futures(phase_b)
    start = min(f.invoke_time for f in futures if f.invoke_time is not None)
    end = max(f.stable_time for f in futures if f.stable_time is not None)
    _finish(live, tob_engine)
    return committed_op_rate(futures, start=start, end=end + 1e-9)


def run_splits() -> List[ReshardingRun]:
    """The full sweep: uniform/zipf × sequencer, uniform × Paxos."""
    rows = [
        run_split_case(skew, "sequencer") for skew in ("uniform", "zipf")
    ]
    rows.append(run_split_case("uniform", "paxos"))
    rows.append(run_split_case("zipf", "paxos"))
    return rows


# ----------------------------------------------------------------------
# Conservation through the epoch boundary
# ----------------------------------------------------------------------
N_ACCOUNTS = 12
INITIAL_BALANCE = 100


def run_conservation_split(tob_engine: str = "sequencer") -> ConservationSplitRun:
    """Split mid-barrage: strong transfers must conserve across epochs."""
    accounts = [f"acct{i}" for i in range(N_ACCOUNTS)]
    scenario = (
        Scenario(BankAccounts(), name=f"conservation-split-{tob_engine}")
        .shards(2)
        .replicas(REPLICAS_PER_SHARD)
        .exec_delay(0.05)
        .message_delay(0.5)
        .resharding(8.0, split=0, transfer_delay=1.0)
    )
    if tob_engine == "paxos":
        scenario.tob("paxos").config(
            heartbeat_interval=2.0, failure_timeout=7.0, paxos_retry_interval=4.0
        )
    for index, account in enumerate(accounts):
        scenario.invoke(
            1.0 + 0.1 * index,
            index % REPLICAS_PER_SHARD,
            BankAccounts.deposit(account, INITIAL_BALANCE),
            label=f"seed-{account}",
        )
    transfers = 0
    for index in range(N_ACCOUNTS):
        scenario.invoke(
            6.0 + 0.5 * index,  # straddles the split at t=8
            index % REPLICAS_PER_SHARD,
            BankAccounts.transfer(
                accounts[index], accounts[(index + 1) % N_ACCOUNTS], 10 + index
            ),
            strong=True,
            label=f"xfer-{index}",
        )
        transfers += 1
    for index in range(3):
        scenario.invoke(
            13.0 + 0.5 * index,
            0,
            BankAccounts.transfer(
                accounts[index * 3],
                accounts[(index * 3 + 5) % N_ACCOUNTS],
                10_000,  # must abort
            ),
            strong=True,
            label=f"overdraw-{index}",
        )
        transfers += 1
    result = scenario.run(well_formed=False, max_time=4_000.0)
    final_total = sum(
        result.query(BankAccounts.balance(account)) for account in accounts
    )
    coordinator = result.router.coordinator
    return ConservationSplitRun(
        tob_engine=tob_engine,
        accounts=N_ACCOUNTS,
        initial_total=N_ACCOUNTS * INITIAL_BALANCE,
        final_total=final_total,
        conserved=final_total == N_ACCOUNTS * INITIAL_BALANCE,
        transfers=transfers,
        committed_transfers=coordinator.committed_count,
        aborted_transfers=coordinator.aborted_count,
        deferred_subs=coordinator.deferred_subs,
        epoch=result.epoch,
        converged=result.converged,
    )


def run_conservation_matrix() -> List[ConservationSplitRun]:
    return [run_conservation_split(engine) for engine in ("sequencer", "paxos")]


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def to_json(
    splits: List[ReshardingRun], conservation: List[ConservationSplitRun]
) -> Dict[str, Any]:
    """The E13 artifact (uploaded by CI next to E10–E12)."""
    return {
        "experiment": "E13-resharding",
        "all_converged": all(row.converged for row in splits),
        "all_conserved": all(row.conserved for row in conservation),
        "max_post_split_deviation": max(
            abs(1.0 - row.post_split_ratio) for row in splits
        ),
        "min_dip_ratio": min(row.dip_ratio for row in splits),
        "splits": [asdict(row) for row in splits],
        "conservation": [asdict(row) for row in conservation],
    }


def render_splits(rows: List[ReshardingRun]) -> str:
    return format_table(
        [
            "skew",
            "TOB",
            "window",
            "moved",
            "twins",
            "deferred",
            "pre thpt",
            "window thpt",
            "dip",
            "post thpt",
            "fresh-3 thpt",
            "ratio",
            "converged",
        ],
        [
            [
                row.skew,
                row.tob_engine,
                f"{row.window:.1f}",
                row.moved_registers,
                row.transferred_requests,
                row.deferred_ops,
                f"{row.pre_split_throughput:.2f}",
                f"{row.window_throughput:.2f}",
                f"{row.dip_ratio:.2f}",
                f"{row.post_split_throughput:.2f}",
                f"{row.fresh_throughput:.2f}",
                f"{row.post_split_ratio:.2f}",
                row.converged,
            ]
            for row in rows
        ],
        title="Live split under traffic: dip and post-split throughput (E13)",
    )


def render_conservation(rows: List[ConservationSplitRun]) -> str:
    return format_table(
        [
            "TOB",
            "transfers",
            "committed",
            "aborted",
            "deferred subs",
            "Σ before",
            "Σ after",
            "conserved",
            "epoch",
            "converged",
        ],
        [
            [
                row.tob_engine,
                row.transfers,
                row.committed_transfers,
                row.aborted_transfers,
                row.deferred_subs,
                row.initial_total,
                row.final_total,
                row.conserved,
                row.epoch,
                row.converged,
            ]
            for row in rows
        ],
        title="Strong transfers through a split: conservation (E13)",
    )


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="FILE", help="also write the E13 artifact"
    )
    args = parser.parse_args(argv)
    splits = run_splits()
    conservation = run_conservation_matrix()
    print(render_splits(splits))
    print()
    print(render_conservation(conservation))
    print()
    worst = max(abs(1.0 - row.post_split_ratio) for row in splits)
    print(
        f"worst post-split deviation from a fresh 3-shard deployment: "
        f"{100 * worst:.1f}%"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                to_json(splits, conservation), handle, indent=2, sort_keys=True
            )
        print(f"wrote {args.json}")


if __name__ == "__main__":  # pragma: no cover
    main()
