"""Shared fault-injection helpers for experiment scenarios.

These imperative helpers predate the :class:`repro.scenario.Scenario`
builder, which exposes the same adversarial schedules fluently
(``.tob_extra_delay``, ``.delay_tob_for_dot``, ``.quarantine_dot``). Both
delegate to the rule constructors in :mod:`repro.net.faults`; these
wrappers remain for code that assembles a
:class:`~repro.net.faults.MessageFilter` by hand.
"""

from __future__ import annotations

from typing import Any

from repro.net.faults import (
    MessageFilter,
    delay_tob_for_dot_rule,
    quarantine_dot_rule,
    tob_delay_rule,
)


def tob_delay_filter(filters: MessageFilter, extra: float, *, tag: str = "seqtob") -> None:
    """Add ``extra`` latency to every TOB-engine message."""
    filters.add(tob_delay_rule(extra, tag=tag))


def delay_tob_for_dot(
    filters: MessageFilter,
    dot: Any,
    receiver: int,
    extra: float,
    *,
    tag: str = "seqtob",
) -> None:
    """Delay only TOB-engine messages about ``dot`` into ``receiver``."""
    filters.add(delay_tob_for_dot_rule(dot, receiver=receiver, extra=extra, tag=tag))


def quarantine_dot_filter(
    filters: MessageFilter, dot: Any, receiver: int, extra: float
) -> None:
    """Delay every message carrying ``dot`` into ``receiver`` by ``extra``."""
    filters.add(quarantine_dot_rule(dot, receiver=receiver, extra=extra))
