"""Shared helpers for experiment scenarios."""

from __future__ import annotations

from typing import Any, Optional

from repro.net.faults import MessageFilter


def tob_delay_filter(filters: MessageFilter, extra: float, *, tag: str = "seqtob") -> None:
    """Add ``extra`` latency to every TOB-engine message.

    The paper's Figure 1/2 schedules rely on the final order being
    established well after the speculative executions ("message broadcast
    through TOB" arrows are long); consensus being slower than gossip is
    also the realistic regime.
    """

    def rule(_src: int, _dst: int, payload: Any, _time: float) -> Optional[Any]:
        if isinstance(payload, tuple) and payload and payload[0] == tag:
            return extra
        return None

    filters.add(rule)


def _mentions_dot(value: Any, dot: Any) -> bool:
    """Recursively search a payload structure for a request dot."""
    if value == dot:
        return True
    if isinstance(value, (tuple, list)):
        return any(_mentions_dot(item, dot) for item in value)
    if hasattr(value, "dot"):
        return value.dot == dot
    if isinstance(value, dict):  # pragma: no cover - payloads are tuples today
        return any(_mentions_dot(item, dot) for item in value.values())
    return False


def delay_tob_for_dot(
    filters: MessageFilter,
    dot: Any,
    receiver: int,
    extra: float,
    *,
    tag: str = "seqtob",
) -> None:
    """Delay only TOB-engine messages about ``dot`` into ``receiver``.

    Used to steer the final order: e.g. hold a request's proposal back from
    the sequencer so later requests commit first.
    """

    def rule(_src: int, dst: int, payload: Any, _time: float) -> Optional[Any]:
        if (
            dst == receiver
            and isinstance(payload, tuple)
            and payload
            and payload[0] == tag
            and _mentions_dot(payload, dot)
        ):
            return extra
        return None

    filters.add(rule)


def quarantine_dot_filter(
    filters: MessageFilter, dot: Any, receiver: int, extra: float
) -> None:
    """Delay every message carrying ``dot`` into ``receiver`` by ``extra``.

    Models the Theorem-1 adversary: replica j must not learn about event a
    (by any route — RB, relay, or TOB delivery) until after the strong
    operation returned.
    """

    def rule(_src: int, dst: int, payload: Any, _time: float) -> Optional[Any]:
        if dst == receiver and _mentions_dot(payload, dot):
            return extra
        return None

    filters.add(rule)
