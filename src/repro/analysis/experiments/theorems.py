"""Experiments E5/E6 — Theorems 2 and 3 checked on real runs.

**Theorem 2** (stable runs): the modified Bayou protocol satisfies
``FEC(weak, F) ∧ Seq(strong, F)``. We run randomized closed-loop workloads
over every data type, build the abstract execution with the Appendix A.2.3
construction, and check the conjunction.

**Theorem 3** (asynchronous runs): under a lasting partition the protocol
still satisfies ``FEC(weak, F)`` (safety part; EV is vacuous while the
partition lasts) but not ``Seq(strong, F)`` — strong operations invoked in
the minority partition are *pending* (∇). After the partition heals
(partitions are temporary in this model) the full conjunction holds again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.cluster import MODIFIED
from repro.datatypes.bank import BankAccounts
from repro.datatypes.counter import Counter
from repro.datatypes.kvstore import KVStore
from repro.datatypes.orset import SetType
from repro.datatypes.rlist import RList
from repro.framework.builder import build_abstract_execution
from repro.framework.guarantees import GuaranteeReport, check_fec, check_seq
from repro.framework.history import History, STRONG, WEAK
from repro.scenario import Scenario

#: The data type instance and read-only probe op per profile name.
DATATYPES: Dict[str, tuple] = {
    "counter": (Counter, Counter.read),
    "list": (RList, RList.read),
    "kv": (KVStore, lambda: KVStore.get("alpha")),
    "bank": (BankAccounts, lambda: BankAccounts.balance("checking")),
    "set": (SetType, SetType.elements),
}


@dataclass
class TheoremCheckResult:
    """Checked guarantees of one run."""

    profile: str
    protocol: str
    n_events: int
    fec_weak: GuaranteeReport
    seq_strong: GuaranteeReport
    bec_weak: GuaranteeReport
    converged: bool
    history: History = field(repr=False, default=None)

    @property
    def theorem2_holds(self) -> bool:
        return self.fec_weak.ok and self.seq_strong.ok


def run_theorem2(
    profile_name: str = "counter",
    *,
    protocol: str = MODIFIED,
    ops_per_session: int = 12,
    n_replicas: int = 3,
    seed: int = 0,
    message_delay: float = 1.0,
    latency_jitter: float = 0.5,
    exec_delay: float = 0.05,
) -> TheoremCheckResult:
    """A stable run: random workload, no partitions, full checking."""
    datatype_cls, probe = DATATYPES[profile_name]
    scenario = (
        Scenario(datatype_cls(), name=f"theorem2:{profile_name}")
        .replicas(n_replicas)
        .protocol(protocol)
        .exec_delay(exec_delay)
        .message_delay(message_delay, jitter=latency_jitter)
        .seed(seed)
        .workload(profile_name, ops_per_session=ops_per_session, seed=seed)
        .probes(probe)
        .checks(fec="weak", seq="strong", bec="weak")
    )
    live = scenario.build()
    live.run_until_quiescent()
    assert all(
        workload.all_done for workload in live.workloads
    ), "closed-loop sessions did not finish"
    result = live.finish()
    return TheoremCheckResult(
        profile=profile_name,
        protocol=protocol,
        n_events=len(result.history),
        fec_weak=result.check("fec:weak"),
        seq_strong=result.check("seq:strong"),
        bec_weak=result.check("bec:weak"),
        converged=result.converged,
        history=result.history,
    )


@dataclass
class Theorem3Result:
    """Guarantees during and after an asynchronous window."""

    pending_strong_during: int
    weak_responses_during: int
    fec_weak_during: GuaranteeReport
    seq_strong_during: GuaranteeReport
    fec_weak_after: GuaranteeReport
    seq_strong_after: GuaranteeReport
    converged_after: bool


def run_theorem3(
    *,
    n_replicas: int = 3,
    partition_heals_at: float = 500.0,
) -> Theorem3Result:
    """An asynchronous run: the minority replica's strong ops block.

    Replica 2 is cut off from {0, 1} (which hosts the sequencer). During
    the partition its weak operations respond (high availability) while its
    strong operation stays pending, so ``Seq(strong)`` fails; after healing
    everything commits and the full conjunction holds.
    """
    scenario = (
        Scenario(Counter(), name="theorem3")
        .replicas(n_replicas)
        .protocol(MODIFIED)
        .exec_delay(0.05)
        .message_delay(1.0)
        .tob("sequencer", sequencer=0)
        .partition(5.0, [[0, 1], [2]])
        .heal(partition_heals_at)
        # Scripted workload: weak ops everywhere, one strong op in the
        # minority partition.
        .invoke(1.0, 0, Counter.increment(1))
        .invoke(2.0, 1, Counter.increment(2))
        .invoke(10.0, 2, Counter.increment(4))  # during partition
        .invoke(12.0, 0, Counter.increment(8))
        .invoke(20.0, 2, Counter.read(), strong=True, label="blocked")
        .invoke(30.0, 2, Counter.increment(16))
        .probes(Counter.read)
    )
    live = scenario.build()

    # Run to the middle of the partition window and snapshot the history.
    live.run(until=partition_heals_at - 10.0)
    history_during = live.history(well_formed=False)
    execution_during = build_abstract_execution(history_during)
    pending_strong = sum(
        1
        for event in history_during.with_level(STRONG)
        if event.pending
    )
    weak_responded = sum(
        1
        for event in history_during.with_level(WEAK)
        if not event.pending
    )

    # Heal and converge; verify the temporary-partition model's promise.
    live.run_until_quiescent()
    live.add_probes()
    history_after = live.history(well_formed=False)
    execution_after = build_abstract_execution(history_after)

    return Theorem3Result(
        pending_strong_during=pending_strong,
        weak_responses_during=weak_responded,
        fec_weak_during=check_fec(execution_during, WEAK),
        seq_strong_during=check_seq(execution_during, STRONG),
        fec_weak_after=check_fec(execution_after, WEAK),
        seq_strong_after=check_seq(execution_after, STRONG),
        converged_after=live.converged(),
    )


def main() -> None:  # pragma: no cover - manual entry point
    for profile_name in DATATYPES:
        result = run_theorem2(profile_name)
        print(
            f"theorem2 {profile_name:8s} events={result.n_events:3d} "
            f"FEC(weak)={result.fec_weak.ok} Seq(strong)={result.seq_strong.ok} "
            f"BEC(weak)={result.bec_weak.ok} converged={result.converged}"
        )
    result3 = run_theorem3()
    print(
        f"theorem3 during: pending strong={result3.pending_strong_during} "
        f"weak answered={result3.weak_responses_during} "
        f"Seq(strong)={result3.seq_strong_during.ok} "
        f"FEC(weak)={result3.fec_weak_during.ok}"
    )
    print(
        f"theorem3 after heal: Seq(strong)={result3.seq_strong_after.ok} "
        f"FEC(weak)={result3.fec_weak_after.ok} "
        f"converged={result3.converged_after}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
