"""Experiment runners — one module per paper artifact (see DESIGN.md)."""

from repro.analysis.experiments.figure1 import run_figure1
from repro.analysis.experiments.figure2 import run_figure2
from repro.analysis.experiments.matrix import run_matrix
from repro.analysis.experiments.sessions import run_session_guarantees
from repro.analysis.experiments.progress import (
    run_clock_slowdown,
    run_slow_replica,
)
from repro.analysis.experiments.recovery import (
    run_recovery,
    run_recovery_case,
    run_recovery_omega,
)
from repro.analysis.experiments.reorder import (
    run_divergent_suffix,
    run_drifting_clock,
)
from repro.analysis.experiments.theorem1 import run_theorem1_live
from repro.analysis.experiments.theorems import run_theorem2, run_theorem3

__all__ = [
    "run_clock_slowdown",
    "run_divergent_suffix",
    "run_drifting_clock",
    "run_figure1",
    "run_figure2",
    "run_matrix",
    "run_recovery",
    "run_recovery_case",
    "run_recovery_omega",
    "run_session_guarantees",
    "run_slow_replica",
    "run_theorem1_live",
    "run_theorem2",
    "run_theorem3",
]
