"""Experiment E10 — the rollback–replay reorder engine at scale.

The paper's slow-replica and partition scenarios (Section 2.3) are exactly
the executions where a Bayou replica accumulates a long *tentative* log and
must repeatedly roll it back when the total order disagrees with the local
speculation. This module builds the two canonical stress schedules and runs
them under a configurable reorder engine so the benchmark suite
(``benchmarks/test_bench_reorder.py``) can compare:

- ``stepwise`` (the seed semantics): one simulation event per rollback or
  (re-)execution, per-request undo-log unwinding;
- ``batched``: the whole backlog drained in one event after
  ``backlog × exec_delay`` simulated time, with ``checkpoint_interval``
  letting :meth:`StateObject.revert_to` restore the divergence point from a
  full-state checkpoint instead of unwinding the undo log request-by-
  request.

Both engines are required to produce **bit-identical observables** on these
schedules — the same history events (responses, return times, stability
flags, TOB positions), final snapshots, committed orders and rollback/
execution counts. :meth:`ReorderRun.observables` distils a run into a
comparable fingerprint.

Schedules:

- :func:`build_divergent_suffix` — replica 0 builds an ``n``-request
  tentative log while its outbound messages are held (a silent uplink: the
  sequencer cannot commit its requests). Replica 1 — whose clock reads
  ``~-10⁶`` — then invokes ``waves`` increments, one per replay window:
  each commits ahead of replica 0's entire log, so the whole suffix rolls
  back and replays, ``waves × n`` rollbacks in total. The benchmark times
  *only* the wave window (:meth:`DivergentSuffixRig.run_waves`); setup and
  the final commit flood are excluded.
- :func:`run_drifting_clock` — a replica with a half-speed clock keeps
  injecting requests that sort into the *middle* of the other replica's
  tentative order, causing many partial rollbacks near the tail (the
  steady-state regime the checkpoint interval is tuned for).

Scenario invariants worth knowing before editing:

- the network is FIFO **per link**, so fault injection must delay a link
  uniformly (here: everything replica 0 sends) — delaying one component's
  messages would stall every later message on the same link behind them;
- every awaited response lands in an uncontested window (replica 0's
  requests respond during setup; wave requests execute on a log of waves
  only), which is what makes return times identical across engines. A
  response computed mid-backlog would return at its own step under
  ``stepwise`` but at the batch deadline under ``batched``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import BayouConfig
from repro.core.cluster import BayouCluster, ORIGINAL
from repro.datatypes.counter import Counter
from repro.net.faults import MessageFilter

#: Clock offset making wave requests older than any setup request.
_ANCIENT = -1.0e6


@dataclass
class ReorderRun:
    """Everything a reorder-engine comparison needs from one run."""

    schedule: str
    engine: str
    checkpoint_interval: Optional[int]
    log_length: int
    #: Sorted per-event observable tuples — the bit-identity fingerprint.
    history_fingerprint: Tuple[Tuple[Any, ...], ...]
    final_snapshot: Dict[Any, Any]
    committed_order: Tuple[Any, ...]
    rollbacks: List[int]
    executions: List[int]
    quiescence_time: float
    checkpoint_restores: List[int]
    undo_unwinds: List[int]

    def observables(self) -> Tuple[Any, ...]:
        """The fields that must be identical across engines."""
        return (
            self.history_fingerprint,
            tuple(sorted(self.final_snapshot.items())),
            self.committed_order,
            tuple(self.rollbacks),
            tuple(self.executions),
            round(self.quiescence_time, 9),
        )


def _fingerprint(cluster: BayouCluster) -> Tuple[Tuple[Any, ...], ...]:
    history = cluster.build_history(well_formed=False)
    return tuple(
        sorted(
            (
                event.eid,
                event.session,
                event.level,
                event.invoke_time,
                event.return_time,
                event.rval,
                event.timestamp,
                event.stable,
                event.tob_no,
            )
            for event in history.events
        )
    )


def _finish(cluster: BayouCluster, *, schedule: str, log_length: int) -> ReorderRun:
    quiescence = cluster.run_until_quiescent()
    assert cluster.converged(), f"{schedule} run did not converge"
    return ReorderRun(
        schedule=schedule,
        engine=cluster.config.reorder_engine,
        checkpoint_interval=cluster.config.checkpoint_interval,
        log_length=log_length,
        history_fingerprint=_fingerprint(cluster),
        final_snapshot=cluster.replicas[0].state.snapshot(),
        committed_order=tuple(r.dot for r in cluster.replicas[0].committed),
        rollbacks=[r.rollback_count for r in cluster.replicas],
        executions=[r.execution_count for r in cluster.replicas],
        quiescence_time=quiescence,
        checkpoint_restores=[r.state.checkpoint_restores for r in cluster.replicas],
        undo_unwinds=[r.state.undo_unwinds for r in cluster.replicas],
    )


def _hold_sender_rule(sender: int, extra: float):
    """Delay *everything* ``sender`` sends by ``extra`` (a silent uplink).

    The network is FIFO per link, so the hold must be uniform per sender:
    delaying only one component's messages would stall every later message
    on the same link behind them.
    """

    def rule(src: int, _dst: int, _payload: Any, _time: float) -> Optional[float]:
        return extra if src == sender else None

    return rule


@dataclass
class DivergentSuffixRig:
    """A compiled divergent-suffix run, split so benchmarks can time the
    rollback–replay window in isolation."""

    cluster: BayouCluster
    log_length: int
    waves: int
    #: Simulated time right before the first wave request is invoked.
    t_setup_end: float
    #: Simulated time after the last wave's replay, before the held
    #: messages arrive and the commit flood begins.
    t_waves_end: float

    def settle_setup(self) -> "DivergentSuffixRig":
        """Run the untimed setup: build the tentative log on replica 0."""
        self.cluster.run(until=self.t_setup_end)
        replica = self.cluster.replicas[0]
        assert len(replica.tentative) == self.log_length
        assert replica.backlog == 0, "setup did not drain"
        return self

    def run_waves(self) -> None:
        """The measured region: ``waves`` full-suffix rollback–replays."""
        self.cluster.run(until=self.t_waves_end)

    def finish(self) -> ReorderRun:
        """Untimed: release held messages, flood commits, check and distil."""
        return _finish(
            self.cluster,
            schedule="divergent_suffix",
            log_length=self.log_length,
        )


def build_divergent_suffix(
    log_length: int,
    *,
    reorder_engine: str = "stepwise",
    checkpoint_interval: Optional[int] = None,
    exec_delay: float = 0.001,
    waves: int = 1,
    record_perceived_traces: bool = True,
    enable_trace: bool = True,
    telemetry: Optional[Any] = None,
) -> DivergentSuffixRig:
    """Compile the divergent-suffix schedule; nothing has run yet.

    Three replicas; the sequencer is replica 2. Replica 0 invokes
    ``log_length`` weak increments whose outbound messages (dissemination
    *and* proposals) are held until after the last wave, so they execute
    tentatively everywhere... nowhere but locally, in fact: replicas 1 and
    2 first hear of them at the very end. Replica 1 — its clock reading
    ``~-10⁶`` — invokes one increment per wave; each commits immediately
    through the sequencer and reaches replica 0 with a timestamp older
    than its whole log: divergence at the committed prefix, full rollback,
    full replay. After the final wave the held messages arrive and the
    commit flood confirms replica 0's tentative order head-by-head.

    ``rollbacks == [waves * log_length, 0, 0]`` by construction.
    """
    invoke_spacing = 0.01
    t_setup_end = 1.0 + log_length * invoke_spacing + 2.0
    #: One full rollback+replay of the log, with slack for message hops.
    wave_spacing = 2.0 * (log_length + waves) * exec_delay + 8.0
    t_waves_end = t_setup_end + waves * wave_spacing + 4.0
    hold = t_waves_end + 2.0
    config = BayouConfig(
        n_replicas=3,
        exec_delay=exec_delay,
        message_delay=1.0,
        sequencer_pid=2,
        clock_offsets={1: _ANCIENT},
        reorder_engine=reorder_engine,
        checkpoint_interval=checkpoint_interval,
        record_perceived_traces=record_perceived_traces,
        enable_trace=enable_trace,
    )
    filters = MessageFilter()
    filters.add(_hold_sender_rule(0, hold))
    cluster = BayouCluster(
        Counter(), config, protocol=ORIGINAL, filters=filters,
        telemetry=telemetry,
    )
    for index in range(log_length):
        cluster.schedule_invoke(
            1.0 + index * invoke_spacing, 0, Counter.increment(1)
        )
    for wave in range(waves):
        cluster.schedule_invoke(
            t_setup_end + 2.0 + wave * wave_spacing, 1, Counter.increment(1)
        )
    return DivergentSuffixRig(
        cluster=cluster,
        log_length=log_length,
        waves=waves,
        t_setup_end=t_setup_end,
        t_waves_end=t_waves_end,
    )


def run_divergent_suffix(
    log_length: int,
    *,
    reorder_engine: str = "stepwise",
    checkpoint_interval: Optional[int] = None,
    exec_delay: float = 0.001,
    waves: int = 1,
    record_perceived_traces: bool = True,
    enable_trace: bool = True,
) -> ReorderRun:
    """Build, run and distil the divergent-suffix schedule in one call."""
    rig = build_divergent_suffix(
        log_length,
        reorder_engine=reorder_engine,
        checkpoint_interval=checkpoint_interval,
        exec_delay=exec_delay,
        waves=waves,
        record_perceived_traces=record_perceived_traces,
        enable_trace=enable_trace,
    ).settle_setup()
    rig.run_waves()
    return rig.finish()


def run_drifting_clock(
    log_length: int,
    *,
    reorder_engine: str = "stepwise",
    checkpoint_interval: Optional[int] = None,
    exec_delay: float = 0.001,
    drift_period: int = 20,
    record_perceived_traces: bool = True,
    enable_trace: bool = True,
) -> ReorderRun:
    """A drifting-clock schedule causing many partial rollbacks.

    Replica 0 invokes a steady stream of increments. Every
    ``drift_period`` invocations, replica 1 — whose clock runs at half
    speed — injects one increment whose stale timestamp sorts it into the
    *middle* of replica 0's tentative order, rolling back the recent
    suffix. Divergence points cluster near the tail, which is the
    steady-state regime the checkpoint interval should be tuned for.

    Responses here *do* land mid-backlog, so return times are only
    guaranteed identical across checkpoint settings of the same engine,
    not across engines (see the module docstring).
    """
    invoke_spacing = 0.01
    config = BayouConfig(
        n_replicas=2,
        exec_delay=exec_delay,
        message_delay=1.0,
        sequencer_pid=0,
        clock_rates={1: 0.5},
        reorder_engine=reorder_engine,
        checkpoint_interval=checkpoint_interval,
        record_perceived_traces=record_perceived_traces,
        enable_trace=enable_trace,
    )
    cluster = BayouCluster(Counter(), config, protocol=ORIGINAL)
    for index in range(log_length):
        cluster.schedule_invoke(
            1.0 + index * invoke_spacing, 0, Counter.increment(1)
        )
        if index and index % drift_period == 0:
            cluster.schedule_invoke(
                1.0 + index * invoke_spacing + invoke_spacing / 2,
                1,
                Counter.increment(1),
            )
    return _finish(cluster, schedule="drifting_clock", log_length=log_length)


def main() -> None:  # pragma: no cover - manual entry point
    import time as _time

    for engine, interval in (("stepwise", None), ("batched", 256)):
        started = _time.perf_counter()
        rig = build_divergent_suffix(
            5_000,
            waves=3,
            reorder_engine=engine,
            checkpoint_interval=interval,
            record_perceived_traces=False,
        ).settle_setup()
        wave_started = _time.perf_counter()
        rig.run_waves()
        wave_elapsed = _time.perf_counter() - wave_started
        result = rig.finish()
        total = _time.perf_counter() - started
        print(
            f"{engine:8s} ckpt={interval!s:5s} waves={wave_elapsed:.3f}s "
            f"total={total:.3f}s rollbacks={result.rollbacks[0]} "
            f"restores={result.checkpoint_restores[0]}"
        )
    drift = run_drifting_clock(500, reorder_engine="batched", checkpoint_interval=64)
    print(
        f"drifting  rollbacks={drift.rollbacks} restores={drift.checkpoint_restores}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
