"""Experiment E7 — the guarantee matrix across systems.

The paper situates Bayou among eventually consistent stores (no anomalies,
limited semantics), strongly consistent replication (no availability) and
GSP (no inter-client speculation). This experiment makes the comparison
executable: each system runs a scenario on the shared substrate and we
record which guarantees its history satisfies and which anomalies occurred.

Rows reproduce the paper's qualitative claims (Sections 1, 2.2 and 6):

====================  ==========  ==========  ============  ===========
system                reordering  circular    weak avail.   strong ops
                                  causality   (partition)
====================  ==========  ==========  ============  ===========
Bayou (original)      yes         yes         yes           yes
Bayou (modified)      yes         no          yes           yes
EC store (LWW)        no          no          yes           no
SMR                   no          no          no            yes (all)
GSP                   no          no          yes (local)   no
====================  ==========  ==========  ============  ===========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.experiments.figure1 import run_figure1
from repro.analysis.experiments.figure2 import run_figure2
from repro.analysis.experiments.theorem1 import run_theorem1_live
from repro.analysis.metrics import count_reordering_witnesses
from repro.analysis.report import format_table
from repro.baselines.ec_store import ECStoreCluster
from repro.baselines.gsp import GSPCluster
from repro.baselines.smr import SMRCluster
from repro.core.cluster import MODIFIED, ORIGINAL, BayouCluster
from repro.core.config import BayouConfig
from repro.datatypes.counter import Counter
from repro.datatypes.register import Register
from repro.framework.builder import build_abstract_execution
from repro.framework.guarantees import check_bec, check_seq
from repro.framework.history import STRONG, WEAK
from repro.framework.predicates import check_ncc
from repro.net.partition import PartitionSchedule


@dataclass
class MatrixRow:
    """One system's measured row in the guarantee matrix."""

    system: str
    temporary_reordering: bool
    circular_causality: bool
    weak_available_under_partition: bool
    strong_ops: bool
    bec_weak: Optional[bool]
    seq_strong: Optional[bool]
    notes: str = ""


def _bayou_rows() -> List[MatrixRow]:
    rows = []
    for protocol, label in ((ORIGINAL, "Bayou (original)"), (MODIFIED, "Bayou (modified)")):
        figure1 = run_figure1(protocol=protocol)
        figure2 = run_figure2(protocol=protocol)
        theorem1 = run_theorem1_live(protocol=protocol)
        reordering = (
            figure1.reordering_witnesses > 0
            or figure1.trace_final_discords > 0
            or not theorem1.bec_weak.ok
        )
        rows.append(
            MatrixRow(
                system=label,
                temporary_reordering=reordering,
                circular_causality=figure2.circular_causality
                or not figure1.fec_weak.results[1].ok,  # NCC slot
                weak_available_under_partition=True,
                strong_ops=True,
                bec_weak=figure1.bec_weak.ok and theorem1.bec_weak.ok,
                seq_strong=figure1.seq_strong.ok,
                notes="speculative tentative order + TOB",
            )
        )
    return rows


def _ec_row() -> MatrixRow:
    cluster = ECStoreCluster(Register(), n_replicas=3)
    for index in range(6):
        cluster.schedule_invoke(
            1.0 + index, index % 3, Register.write(f"v{index}")
        )
        cluster.schedule_invoke(1.5 + index, (index + 1) % 3, Register.read())
    cluster.run_until_quiescent()
    cluster.mark_horizon()
    for pid in range(3):
        cluster.schedule_invoke(cluster.sim.now + 1.0 + pid, pid, Register.read())
    cluster.run_until_quiescent()
    history = cluster.build_history()
    execution = build_abstract_execution(history)
    return MatrixRow(
        system="EC store (LWW)",
        temporary_reordering=count_reordering_witnesses(history) > 0,
        circular_causality=not check_ncc(execution).ok,
        weak_available_under_partition=True,
        strong_ops=False,
        bec_weak=check_bec(execution, WEAK).ok,
        seq_strong=None,
        notes="blind writes only (limited semantics)",
    )


def _smr_row() -> MatrixRow:
    # Part 1: a normal run, checked for Seq.
    cluster = SMRCluster(Counter(), n_replicas=3)
    for index in range(6):
        cluster.schedule_invoke(1.0 + index, index % 3, Counter.increment(1))
    cluster.run_until_quiescent()
    cluster.mark_horizon()
    history = cluster.build_history()
    execution = build_abstract_execution(history)
    seq_ok = check_seq(execution, STRONG).ok

    # Part 2: a partitioned run — the minority gets no responses.
    partitions = PartitionSchedule(3)
    partitions.split(0.5, [[0, 1], [2]])
    blocked = SMRCluster(Counter(), n_replicas=3, partitions=partitions)
    blocked.schedule_invoke(1.0, 2, Counter.increment(1))
    blocked.run(until=200.0)
    minority_answered = any(
        record.responded for record in blocked._staged.values()
    )
    return MatrixRow(
        system="SMR",
        temporary_reordering=count_reordering_witnesses(history) > 0,
        circular_causality=not check_ncc(execution).ok,
        weak_available_under_partition=minority_answered,
        strong_ops=True,
        bec_weak=None,
        seq_strong=seq_ok,
        notes="all ops via TOB; minority partition blocks",
    )


def _gsp_row() -> MatrixRow:
    cluster = GSPCluster(Counter(), n_replicas=3)
    for index in range(6):
        cluster.schedule_invoke(1.0 + index * 0.4, index % 3, Counter.increment(1))
    cluster.run_until_quiescent()
    cluster.mark_horizon()
    # GSP probes go through the cloud; space them beyond the commit
    # round-trip so each probe observes the previous one.
    for pid in range(3):
        cluster.schedule_invoke(cluster.sim.now + 1.0 + pid * 5.0, pid, Counter.read())
    cluster.run_until_quiescent()
    history = cluster.build_history()
    execution = build_abstract_execution(history)
    return MatrixRow(
        system="GSP",
        temporary_reordering=count_reordering_witnesses(history) > 0,
        circular_causality=not check_ncc(execution).ok,
        weak_available_under_partition=True,
        strong_ops=False,
        bec_weak=check_bec(execution, WEAK).ok,
        seq_strong=None,
        notes="no mutual visibility while cloud is unreachable",
    )


def run_matrix() -> List[MatrixRow]:
    """Compute the full guarantee matrix."""
    rows = _bayou_rows()
    rows.append(_ec_row())
    rows.append(_smr_row())
    rows.append(_gsp_row())
    return rows


def render_matrix(rows: List[MatrixRow]) -> str:
    """The matrix as an ASCII table."""
    return format_table(
        [
            "system",
            "reordering",
            "circular",
            "weak-avail",
            "strong-ops",
            "BEC(weak)",
            "Seq(strong)",
        ],
        [
            [
                row.system,
                row.temporary_reordering,
                row.circular_causality,
                row.weak_available_under_partition,
                row.strong_ops,
                "n/a" if row.bec_weak is None else row.bec_weak,
                "n/a" if row.seq_strong is None else row.seq_strong,
            ]
            for row in rows
        ],
        title="Guarantee matrix (experiment E7)",
    )


def main() -> None:  # pragma: no cover - manual entry point
    print(render_matrix(run_matrix()))


if __name__ == "__main__":  # pragma: no cover
    main()
