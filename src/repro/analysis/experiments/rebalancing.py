"""Experiment E14 — autonomous rebalancing: self-healing under a moving hotspot.

E13 measured what one *operator-triggered* live migration costs; E14
closes the loop: nobody calls ``split``/``move`` — a
:class:`~repro.shard.control.controller.PlacementController` watches the
metrics plane the router exports (per-shard routed-op counters plus a
space-saving hot-key sketch) and drives migrations itself.

The adversary is a **shifting Zipf hotspot**
(:class:`~repro.analysis.workload.ShiftingHotspotSampler`): the hot key
rotates at scheduled simulated times through keys that all hash to the
*same* shard, so a static hash placement serves every phase from one
queue — and no single manual migration fixes it, because the hotspot
moves again. Three legs, same seeded workload:

- **baseline** — the deployment as born, no controller: the hot shard's
  backlog grows (``exec_delay`` is charged per queued request, so the
  closed-loop clients stall behind it);
- **controlled** — the same deployment with ``autoscale()`` armed, one
  leg per policy (``power-of-two`` spreads the hot key to the coldest
  shard; ``hot-key-isolation`` spawns a fresh shard for it);
- **oracle** — a *clairvoyant static* placement: every key that will
  ever be hot is isolated onto its own shard **before traffic starts**
  (:meth:`ShardedCluster.static_reassign` — placement without handoff).
  The oracle pays no migration cost and never mis-detects — the bar the
  25% gate measures the controllers against.

Gates (enforced as CI benchmark gates in
``benchmarks/test_bench_rebalancing.py``):

- each controlled leg triggers **at least one** automatic migration and
  every migration completes (epoch activated, bit-identical per-shard
  convergence);
- controlled committed-op throughput is within **25% of the oracle**;
- controlled **strictly beats** the no-controller baseline.

Run from the CLI (``python -m repro rebalance``) or directly with
``--json FILE`` to dump the artifact CI uploads next to E10–E13.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from repro.analysis.metrics import committed_op_rate, weak_staleness_samples
from repro.analysis.report import format_table
from repro.analysis.workload import RandomWorkload
from repro.datatypes.kvstore import KVStore
from repro.scenario import Scenario
from repro.shard.control.strategy import single_key_range
from repro.shard.partitioner import Reassignment, ShardMap

N_SHARDS = 2
REPLICAS_PER_SHARD = 2
SESSIONS = 8
OPS_PER_SESSION = 36
N_KEYS = 64
N_PHASES = 3
EXEC_DELAY = 0.4
MESSAGE_DELAY = 0.2
ZIPF_S = 1.8
STRONG_PROBABILITY = 0.05
THINK_TIME = 0.1
SEED = 5
#: When the hot key rotates (two shifts → three phases).
SHIFT_TIMES = (40.0, 80.0)

#: Controller knobs shared by the controlled legs.
CONTROLLER = dict(
    threshold=1.3,
    cooldown=10.0,
    interval=2.5,
    min_window_ops=6,
)


def _build_keys() -> List[str]:
    """The key universe, ordered so the rotation is adversarial.

    The first ``N_PHASES`` keys — the hotspot rotation — are chosen to
    all hash to shard 0 of the *base* ``N_SHARDS``-way placement: a
    static deployment serves every phase of the hotspot from the same
    queue. The tail fills up with the remaining keys in probe order.
    """
    probe = ShardMap(N_SHARDS)
    hot = [k for k in (f"k{i:03d}" for i in range(200)) if probe.owner(k) == 0]
    cold = [k for k in (f"k{i:03d}" for i in range(200)) if probe.owner(k) != 0]
    keys = hot[:N_PHASES] + (hot[N_PHASES:] + cold)[: N_KEYS - N_PHASES]
    assert len(keys) == N_KEYS
    return keys


KEYS = _build_keys()


@dataclass
class RebalancingRun:
    """One leg of E14: who placed the keys, and what it bought."""

    leg: str              # "baseline" | policy name | "oracle"
    #: Automatic controller actions (0 for baseline/oracle).
    actions: int
    #: Controller ticks evaluated / held back (diagnostics).
    ticks: int
    held_back: int
    epoch: int
    n_shards: int
    migrations: int
    migrations_complete: bool
    deferred_ops: int
    #: Committed (TOB-final) operations per simulated time unit over the
    #: whole run — the headline number the gates compare.
    committed_throughput: float
    #: Mean closed-loop response latency (the clients' view of the queue).
    mean_latency: float
    weak_staleness: float
    converged: bool
    hot_keys: List[str]


def _scenario(name: str) -> Scenario:
    return (
        Scenario(KVStore(), name=f"rebalancing-{name}")
        .shards(N_SHARDS)
        .replicas(REPLICAS_PER_SHARD)
        .exec_delay(EXEC_DELAY)
        .message_delay(MESSAGE_DELAY)
        .config(record_perceived_traces=False)
        .workload(
            "kv",
            keys=KEYS,
            zipf_s=ZIPF_S,
            hotspot_shift=list(SHIFT_TIMES),
            ops_per_session=OPS_PER_SESSION,
            think_time=THINK_TIME,
            seed=SEED,
            sessions=SESSIONS,
            strong_probability=STRONG_PROBABILITY,
        )
    )


def _futures(workload: RandomWorkload):
    return [f for session in workload.sessions for f in session.futures]


def _finish_leg(leg: str, live) -> RebalancingRun:
    live.settle(max_time=20_000.0)
    futures = _futures(live.workloads[0])
    latencies = [f.latency for f in futures if f.latency is not None]
    staleness = weak_staleness_samples(futures)
    controller = live.controller
    if controller is not None:
        controller.stop()
    migrations = live.deployment.migrations
    return RebalancingRun(
        leg=leg,
        actions=len(controller.actions) if controller else 0,
        ticks=controller.ticks if controller else 0,
        held_back=controller.held_back if controller else 0,
        epoch=live.deployment.epoch,
        n_shards=len(live.deployment.live_shard_indexes()),
        migrations=len(migrations),
        migrations_complete=all(m.complete for m in migrations),
        deferred_ops=live.router.deferred_count,
        committed_throughput=committed_op_rate(futures),
        mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        weak_staleness=sum(staleness) / len(staleness) if staleness else 0.0,
        converged=live.converged(),
        hot_keys=[
            str(key) for key, _count in (
                controller.stats.hot_keys(3) if controller else []
            )
        ],
    )


def run_baseline() -> RebalancingRun:
    """The deployment as born: the hotspot lands where the hash says."""
    live = _scenario("baseline").build()
    return _finish_leg("baseline", live)


def run_controlled(policy: str) -> RebalancingRun:
    """The same run with the placement controller driving migrations."""
    live = _scenario(policy).autoscale(policy, **CONTROLLER).build()
    return _finish_leg(policy, live)


def run_oracle() -> RebalancingRun:
    """Clairvoyant static placement: the whole rotation pre-isolated.

    Placement deltas are applied *before any traffic*, via
    ``static_reassign`` (no handoff — there is nothing to hand off yet):
    every key the hotspot will ever visit moves to one dedicated hot
    shard. Only one of them is hot at a time, so that shard serves each
    phase's hot key with no tail contention — the placement a
    hot-key-isolation controller with one extra shard converges to,
    minus detection lag and migration cost. The 25% gate measures the
    live controllers against this bar.
    """
    live = _scenario("oracle").build()
    for index in range(N_PHASES):
        lo, hi = single_key_range(KEYS[index])
        src = live.deployment.shard_map.owner(KEYS[index])
        live.deployment.static_reassign(
            Reassignment("move", src, N_SHARDS, (lo, hi))
        )
    return _finish_leg("oracle", live)


def run_all() -> List[RebalancingRun]:
    rows = [run_baseline()]
    rows.extend(run_controlled(p) for p in ("power-of-two", "hot-key-isolation"))
    rows.append(run_oracle())
    return rows


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def to_json(rows: List[RebalancingRun]) -> Dict[str, Any]:
    """The E14 artifact (uploaded by CI next to E10–E13)."""
    by_leg = {row.leg: row for row in rows}
    oracle = by_leg["oracle"].committed_throughput
    baseline = by_leg["baseline"].committed_throughput
    controlled = [
        row for row in rows if row.leg not in ("baseline", "oracle")
    ]
    return {
        "experiment": "E14-rebalancing",
        "all_converged": all(row.converged for row in rows),
        "all_migrations_complete": all(row.migrations_complete for row in rows),
        "every_controller_acted": all(row.actions >= 1 for row in controlled),
        "worst_oracle_gap": max(
            1.0 - row.committed_throughput / oracle for row in controlled
        ) if oracle else 1.0,
        "every_policy_beats_baseline": all(
            row.committed_throughput > baseline for row in controlled
        ),
        "legs": [asdict(row) for row in rows],
    }


def render(rows: List[RebalancingRun]) -> str:
    return format_table(
        [
            "leg",
            "actions",
            "migrations",
            "shards",
            "epoch",
            "deferred",
            "thpt",
            "latency",
            "staleness",
            "converged",
        ],
        [
            [
                row.leg,
                row.actions,
                row.migrations,
                row.n_shards,
                row.epoch,
                row.deferred_ops,
                f"{row.committed_throughput:.2f}",
                f"{row.mean_latency:.2f}",
                f"{row.weak_staleness:.2f}",
                row.converged,
            ]
            for row in rows
        ],
        title="Self-healing under a shifting Zipf hotspot (E14)",
    )


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="FILE", help="also write the E14 artifact"
    )
    args = parser.parse_args(argv)
    rows = run_all()
    print(render(rows))
    print()
    artifact = to_json(rows)
    print(
        f"oracle gap: {100 * artifact['worst_oracle_gap']:.1f}%  "
        f"(gate: <= 25%); beats baseline: "
        f"{artifact['every_policy_beats_baseline']}"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")


if __name__ == "__main__":  # pragma: no cover
    main()
