"""Experiment E9 (extension) — the session-guarantee cost of Algorithm 2.

Appendix A.1.2: making weak operations bounded wait-free "comes at the cost
of losing some session guarantees, such as read-your-writes". We measure it
with a schedule designed to expose the trade-off:

- a replica is made slow (large per-step cost);
- a client writes and then immediately reads on that replica.

Under the *original* protocol the read waits in the execution queue behind
the write (paying the unbounded-latency price of Section 2.3) and therefore
sees it: read-your-writes holds. Under the *modified* protocol the read
returns immediately from the current state, which does not yet include the
write: read-your-writes is violated — but the response was instant.

Latency and RYW are two sides of the same coin; this experiment reports
both per protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.core.cluster import MODIFIED, ORIGINAL
from repro.datatypes.rlist import RList
from repro.framework.predicates import CheckResult
from repro.scenario import Scenario


@dataclass
class SessionGuaranteeResult:
    """RYW/MR/WFR/MW verdicts plus the read's latency and value."""

    protocol: str
    read_value: Any
    read_latency: float
    guarantees: Dict[str, CheckResult] = field(repr=False, default=None)

    @property
    def read_your_writes(self) -> bool:
        return self.guarantees["RYW"].ok


def run_session_guarantees(*, protocol: str = MODIFIED) -> SessionGuaranteeResult:
    """Write-then-read on a slow replica; check the session guarantees."""
    scenario = (
        Scenario(RList(), name="session-guarantees")
        .replicas(2)
        .protocol(protocol)
        # The client's replica is slow.
        .exec_delay(0.05, overrides={0: 5.0})
        .message_delay(1.0)
        .probes(RList.read)
        .checks(session_guarantees=True)
    )
    # A closed-loop client: the read is issued as soon as the write's
    # response arrives (plus a small think time). Under the original
    # protocol that is *after* the slow replica executed the write (~5s);
    # under the modified protocol it is immediate — and the read misses
    # the still-tentative write.
    scenario.client(0, think_time=1.0).append("w").read(label="ryw-read")
    result = scenario.run()
    read_event = result.event("ryw-read")
    return SessionGuaranteeResult(
        protocol=protocol,
        read_value=read_event.rval,
        read_latency=read_event.return_time - read_event.invoke_time,
        guarantees=result.session_guarantees,
    )


def main() -> None:  # pragma: no cover - manual entry point
    for protocol in (ORIGINAL, MODIFIED):
        result = run_session_guarantees(protocol=protocol)
        verdicts = ", ".join(
            f"{name}={'ok' if check.ok else 'FAIL'}"
            for name, check in result.guarantees.items()
        )
        print(
            f"{protocol:8s} read -> {result.read_value!r} "
            f"(latency {result.read_latency:.2f})  [{verdicts}]"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
