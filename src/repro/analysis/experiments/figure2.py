"""Experiment E2 — Figure 2: circular causality between two weak appends.

Schedule (two replicas, list initially holding the committed ``a``):

- R0 invokes weak ``append("x")`` (timestamp 10); R1 invokes weak
  ``append("y")`` slightly later in real time with a *smaller* timestamp
  (clock offset −0.5), so the tentative order is ``y, x``.
- R0 executes speculatively before TOB settles: ``append(x)`` returns
  **ayx** — evidence that x observed y.
- R1 is slow (per-step cost 30), so by the time it first executes
  ``append(y)`` the TOB order ``a, x, y`` is already committed there:
  ``append(y)`` returns **axy** — evidence that y observed x.

Each return value claims the *other* operation happened first: circular
causality, detected by the NCC checker as an hb-cycle. Under the modified
protocol (Algorithm 2) the same schedule is cycle-free: each weak append
executes immediately at invocation, so its response can only reflect
operations that were already in the replica's state (x → ``ax``; y → ``y``,
since the slow R1 has not even executed ``a`` yet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.analysis.experiments.common import tob_delay_filter
from repro.core.cluster import MODIFIED, ORIGINAL, BayouCluster
from repro.core.config import BayouConfig
from repro.datatypes.rlist import RList
from repro.framework.builder import build_abstract_execution
from repro.framework.guarantees import GuaranteeReport, check_fec
from repro.framework.history import History, WEAK
from repro.framework.predicates import CheckResult, check_ncc
from repro.net.faults import MessageFilter


@dataclass
class Figure2Result:
    """The Figure 2 observables."""

    protocol: str
    responses: Dict[str, Any]
    circular_causality: bool
    cycle_description: str
    converged: bool
    ncc: CheckResult = field(repr=False, default=None)
    fec_weak: GuaranteeReport = field(repr=False, default=None)
    history: History = field(repr=False, default=None)


def run_figure2(*, protocol: str = ORIGINAL) -> Figure2Result:
    """Run the Figure 2 schedule under the chosen protocol."""
    config = BayouConfig(
        n_replicas=2,
        exec_delay=1.5,
        exec_delay_overrides={1: 30.0},
        message_delay=1.0,
        clock_offsets={1: -0.5},
        sequencer_pid=0,
    )
    filters = MessageFilter()
    tob_delay_filter(filters, 10.0)
    cluster = BayouCluster(RList(), config, protocol=protocol, filters=filters)

    requests: Dict[str, Any] = {}

    def invoke(name: str, pid: int, op) -> None:
        requests[name] = cluster.invoke(pid, op, strong=False)

    cluster.sim.schedule_at(1.0, lambda: invoke("append_a", 0, RList.append("a")))
    cluster.sim.schedule_at(10.0, lambda: invoke("append_x", 0, RList.append("x")))
    cluster.sim.schedule_at(10.2, lambda: invoke("append_y", 1, RList.append("y")))
    cluster.run_until_quiescent()
    cluster.add_horizon_probes(RList.read)
    cluster.run_until_quiescent()

    history = cluster.build_history()
    responses = {
        name: history.event(req.dot).rval for name, req in requests.items()
    }
    execution = build_abstract_execution(history)
    ncc = check_ncc(execution)
    return Figure2Result(
        protocol=protocol,
        responses=responses,
        circular_causality=not ncc.ok,
        cycle_description=ncc.violations[0] if ncc.violations else "",
        converged=cluster.converged(),
        ncc=ncc,
        fec_weak=check_fec(execution, WEAK),
        history=history,
    )


def main() -> None:  # pragma: no cover - manual entry point
    for protocol in (ORIGINAL, MODIFIED):
        result = run_figure2(protocol=protocol)
        print(
            f"{protocol:8s} responses={result.responses} "
            f"circular={result.circular_causality} "
            f"({result.cycle_description}) converged={result.converged}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
