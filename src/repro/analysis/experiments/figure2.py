"""Experiment E2 — Figure 2: circular causality between two weak appends.

Schedule (two replicas, list initially holding the committed ``a``):

- R0 invokes weak ``append("x")`` (timestamp 10); R1 invokes weak
  ``append("y")`` slightly later in real time with a *smaller* timestamp
  (clock offset −0.5), so the tentative order is ``y, x``.
- R0 executes speculatively before TOB settles: ``append(x)`` returns
  **ayx** — evidence that x observed y.
- R1 is slow (per-step cost 30), so by the time it first executes
  ``append(y)`` the TOB order ``a, x, y`` is already committed there:
  ``append(y)`` returns **axy** — evidence that y observed x.

Each return value claims the *other* operation happened first: circular
causality, detected by the NCC checker as an hb-cycle. Under the modified
protocol (Algorithm 2) the same schedule is cycle-free: each weak append
executes immediately at invocation, so its response can only reflect
operations that were already in the replica's state (x → ``ax``; y → ``y``,
since the slow R1 has not even executed ``a`` yet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.core.cluster import MODIFIED, ORIGINAL
from repro.datatypes.rlist import RList
from repro.framework.guarantees import GuaranteeReport
from repro.framework.history import History
from repro.framework.predicates import CheckResult
from repro.scenario import Scenario


@dataclass
class Figure2Result:
    """The Figure 2 observables."""

    protocol: str
    responses: Dict[str, Any]
    circular_causality: bool
    cycle_description: str
    converged: bool
    ncc: CheckResult = field(repr=False, default=None)
    fec_weak: GuaranteeReport = field(repr=False, default=None)
    history: History = field(repr=False, default=None)


def figure2_scenario(*, protocol: str = ORIGINAL) -> Scenario:
    """The Figure 2 schedule as a declarative scenario."""
    return (
        Scenario(RList(), name="figure2")
        .replicas(2)
        .protocol(protocol)
        .exec_delay(1.5, overrides={1: 30.0})
        .message_delay(1.0)
        .clock_drift(1, offset=-0.5)
        .tob("sequencer", sequencer=0)
        .tob_extra_delay(10.0)
        .invoke(1.0, 0, RList.append("a"), label="append_a")
        .invoke(10.0, 0, RList.append("x"), label="append_x")
        .invoke(10.2, 1, RList.append("y"), label="append_y")
        .probes(RList.read)
        .checks(fec="weak", ncc=True)
    )


def run_figure2(*, protocol: str = ORIGINAL) -> Figure2Result:
    """Run the Figure 2 schedule under the chosen protocol."""
    result = figure2_scenario(protocol=protocol).run()
    ncc = result.check("ncc")
    return Figure2Result(
        protocol=protocol,
        responses=result.responses,
        circular_causality=not ncc.ok,
        cycle_description=ncc.violations[0] if ncc.violations else "",
        converged=result.converged,
        ncc=ncc,
        fec_weak=result.check("fec:weak"),
        history=result.history,
    )


def main() -> None:  # pragma: no cover - manual entry point
    for protocol in (ORIGINAL, MODIFIED):
        result = run_figure2(protocol=protocol)
        print(
            f"{protocol:8s} responses={result.responses} "
            f"circular={result.circular_causality} "
            f"({result.cycle_description}) converged={result.converged}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
