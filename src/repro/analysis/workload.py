"""Random workload generation over the replicated data types.

A :class:`WorkloadProfile` is a weighted set of operation factories plus a
probability of issuing an operation as strong. :class:`RandomWorkload`
drives closed-loop :class:`~repro.core.session.Session` clients (one per
replica by default) so the resulting history is well-formed, which the
checking experiments (Theorems 2/3) require. ``Scenario.workload(...)`` is
the fluent entry point.

Keyed workloads: a :class:`KeySampler` draws keys from a finite universe
under a configurable skew (uniform, or Zipf with exponent ``s``), and the
``kv``/``bank`` profiles accept one so the *same* generator drives
single-cluster runs and sharded deployments (experiment E12 sweeps shard
counts under uniform vs skewed key traffic). On a sharded deployment the
cluster argument is a :class:`~repro.shard.router.ShardRouter`; the
sessions it opens route each operation to the key's owner shard, and
operations a profile marks *always-strong* (``strong_ops`` — e.g. the
bank's potentially cross-shard ``transfer``) go through the cross-shard
coordinator.
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.session import Session
from repro.datatypes.base import Operation
from repro.datatypes.bank import BankAccounts
from repro.datatypes.counter import Counter
from repro.datatypes.kvstore import KVStore
from repro.datatypes.orset import SetType
from repro.datatypes.rlist import RList
from repro.sim.rng import SeededRngRegistry

OpFactory = Callable[[random.Random], Operation]


def _cumulative_weights(weights, *, label: str) -> List[float]:
    """Validated running sums — the one-time cost of bisect sampling."""
    cumulative: List[float] = []
    total = 0.0
    for weight in weights:
        if weight <= 0:
            raise ValueError(f"{label} weights must be positive, got {weight!r}")
        total += weight
        cumulative.append(total)
    return cumulative


def _weighted_index(cumulative: List[float], rng: random.Random) -> int:
    """One weighted draw: a uniform pick located by bisect, O(log n).

    The ``min`` clamp covers the float edge where ``uniform`` returns its
    upper bound exactly.
    """
    pick = rng.uniform(0.0, cumulative[-1])
    return min(bisect_left(cumulative, pick), len(cumulative) - 1)


class KeySampler:
    """Draws keys from a finite universe under a fixed skew.

    Cumulative weights are precomputed once; each draw is one uniform
    sample plus a :func:`bisect.bisect_left` — O(log n) per key.
    """

    #: Whether the skew depends on simulated time (see
    #: :class:`ShiftingHotspotSampler`); fixed-skew samplers pre-sample
    #: eagerly, time-varying ones force the workload into lazy mode.
    time_varying = False

    def __init__(self, keys: Sequence, weights: Optional[Sequence[float]] = None):
        self.keys = list(keys)
        if not self.keys:
            raise ValueError("KeySampler needs at least one key")
        if weights is None:
            weights = [1.0] * len(self.keys)
        if len(weights) != len(self.keys):
            raise ValueError("weights must match keys one-to-one")
        self._cumulative = _cumulative_weights(weights, label="key")

    @classmethod
    def uniform(cls, keys: Sequence) -> "KeySampler":
        """Every key equally likely."""
        return cls(keys)

    @classmethod
    def zipf(cls, keys: Sequence, s: float = 1.1) -> "KeySampler":
        """Zipf-skewed: the i-th key (1-based) has weight ``1 / i**s``.

        The canonical hot-key model — a handful of keys take most of the
        traffic, so on a sharded deployment the shards owning them become
        hotspots (E12's skewed legs measure exactly that).
        """
        if s <= 0:
            raise ValueError(f"zipf exponent must be positive, got {s!r}")
        weights = [1.0 / (rank**s) for rank in range(1, len(keys) + 1)]
        return cls(keys, weights)

    def set_now(self, now: float) -> None:
        """Advance the sampler's clock (no-op for fixed skews)."""

    def sample(self, rng: random.Random):
        """Draw one key."""
        return self.keys[_weighted_index(self._cumulative, rng)]


class ShiftingHotspotSampler(KeySampler):
    """Zipf skew whose *hottest key rotates* at scheduled simulated times.

    Phase ``p`` holds between ``shift_times[p-1]`` and ``shift_times[p]``;
    in phase ``p`` the Zipf ranks are rotated by ``p`` positions over the
    key list, so ``keys[p % len(keys)]`` is the hottest key, the next key
    second-hottest, and so on. The *shape* of the skew never changes —
    only which keys carry it — which is exactly the adversary a static
    placement cannot follow and a placement controller must chase (E14).

    The sampler is clocked externally: :class:`RandomWorkload` calls
    :meth:`set_now` with the simulated time before each draw (lazy
    submission mode, forced by ``time_varying``). Draw-count determinism
    is unchanged — one weighted draw per key, same as the base class.
    """

    time_varying = True

    def __init__(self, keys: Sequence, shift_times: Sequence[float], *, s: float = 1.1):
        if s <= 0:
            raise ValueError(f"zipf exponent must be positive, got {s!r}")
        weights = [1.0 / (rank**s) for rank in range(1, len(keys) + 1)]
        super().__init__(keys, weights)
        self.shift_times = tuple(sorted(shift_times))
        self._now = 0.0

    def set_now(self, now: float) -> None:
        self._now = now

    def phase(self, now: Optional[float] = None) -> int:
        """How many shifts have happened by ``now`` (default: the clock)."""
        at = self._now if now is None else now
        return bisect_right(self.shift_times, at)

    def sample(self, rng: random.Random):
        rank = _weighted_index(self._cumulative, rng)
        return self.keys[(rank + self.phase()) % len(self.keys)]


def make_sampler(
    keys: Sequence, skew: str = "uniform", *, zipf_s: float = 1.1
) -> KeySampler:
    """A :class:`KeySampler` from a skew name (``"uniform"``/``"zipf"``)."""
    if skew == "uniform":
        return KeySampler.uniform(keys)
    if skew == "zipf":
        return KeySampler.zipf(keys, s=zipf_s)
    raise ValueError(f"unknown key skew {skew!r} (use 'uniform' or 'zipf')")


@dataclass
class WorkloadProfile:
    """Weighted operation mix for one data type.

    ``strong_ops`` names operations that are *always* issued strongly,
    regardless of ``strong_probability`` — order-sensitive multi-key
    operations (the bank's ``transfer``) must be strong on sharded
    deployments, where they may span shards.
    """

    name: str
    factories: List[Tuple[float, OpFactory]]
    strong_probability: float = 0.2
    strong_ops: frozenset = frozenset()
    #: The key sampler the factories close over (keyed profiles only);
    #: carried so the workload can clock a time-varying skew.
    sampler: Optional[KeySampler] = None
    #: Cumulative factory weights, precomputed once (sampling is O(log n)).
    _cumulative: List[float] = field(
        init=False, repr=False, compare=False, default_factory=list
    )

    def __post_init__(self) -> None:
        self._cumulative = _cumulative_weights(
            (weight for weight, _ in self.factories), label="factory"
        )

    @property
    def time_varying(self) -> bool:
        """Whether key choice depends on simulated time (lazy sampling)."""
        return self.sampler is not None and self.sampler.time_varying

    def set_time(self, now: float) -> None:
        """Clock the profile's sampler before a draw (lazy mode)."""
        if self.sampler is not None:
            self.sampler.set_now(now)

    def sample(self, rng: random.Random) -> Tuple[Operation, bool]:
        """Draw one (operation, strong?) pair."""
        op = self.factories[_weighted_index(self._cumulative, rng)][1](rng)
        # Drawn unconditionally so the stream of random values — and hence
        # every seeded workload — is identical whether or not the op is
        # forced strong.
        strong = rng.random() < self.strong_probability
        if op.name in self.strong_ops:
            strong = True
        return op, strong


def counter_profile(strong_probability: float = 0.2) -> WorkloadProfile:
    """Increments, decrements, conditional adds and reads on a counter."""
    return WorkloadProfile(
        name="counter",
        factories=[
            (4.0, lambda rng: Counter.increment(rng.randint(1, 5))),
            (2.0, lambda rng: Counter.decrement(rng.randint(1, 3))),
            (1.0, lambda rng: Counter.add_if_even(rng.randint(1, 3))),
            (2.0, lambda rng: Counter.read()),
        ],
        strong_probability=strong_probability,
    )


def list_profile(strong_probability: float = 0.2) -> WorkloadProfile:
    """The paper's list: appends, duplicates and reads."""
    alphabet = "abcdefgh"
    return WorkloadProfile(
        name="list",
        factories=[
            (5.0, lambda rng: RList.append(rng.choice(alphabet))),
            (1.0, lambda rng: RList.duplicate()),
            (2.0, lambda rng: RList.read()),
            (1.0, lambda rng: RList.size()),
        ],
        strong_probability=strong_probability,
    )


#: Default key universe of the keyed profiles (kept at the historical four
#: keys so existing seeded runs reproduce bit-identically).
DEFAULT_KV_KEYS = ("alpha", "beta", "gamma", "delta")
DEFAULT_ACCOUNTS = ("checking", "savings", "escrow")


def kv_profile(
    strong_probability: float = 0.25,
    *,
    sampler: Optional[KeySampler] = None,
) -> WorkloadProfile:
    """Puts, conditional puts (the consensus-requiring op), gets, removes.

    ``sampler`` controls key choice (default: uniform over the four
    historical keys); pass a skewed/bigger :class:`KeySampler` for E12's
    sharded sweeps.
    """
    keys = sampler if sampler is not None else KeySampler.uniform(DEFAULT_KV_KEYS)
    return WorkloadProfile(
        name="kv",
        factories=[
            (3.0, lambda rng: KVStore.put(keys.sample(rng), rng.randint(0, 99))),
            (2.0, lambda rng: KVStore.put_if_absent(keys.sample(rng), rng.randint(0, 99))),
            (3.0, lambda rng: KVStore.get(keys.sample(rng))),
            (1.0, lambda rng: KVStore.remove(keys.sample(rng))),
        ],
        strong_probability=strong_probability,
        sampler=keys,
    )


def bank_profile(
    strong_probability: float = 0.3,
    *,
    sampler: Optional[KeySampler] = None,
) -> WorkloadProfile:
    """Deposits, guarded withdrawals and transfers over a few accounts.

    Transfers are always issued strongly: on a sharded deployment the two
    accounts may live on different shards, and only strong operations may
    cross shards (they stage through each owner's TOB).
    """
    accounts = (
        sampler if sampler is not None else KeySampler.uniform(DEFAULT_ACCOUNTS)
    )
    return WorkloadProfile(
        name="bank",
        factories=[
            (3.0, lambda rng: BankAccounts.deposit(accounts.sample(rng), rng.randint(1, 50))),
            (2.0, lambda rng: BankAccounts.withdraw(accounts.sample(rng), rng.randint(1, 60))),
            (1.0, lambda rng: BankAccounts.transfer(
                accounts.sample(rng), accounts.sample(rng), rng.randint(1, 30))),
            (2.0, lambda rng: BankAccounts.balance(accounts.sample(rng))),
        ],
        strong_probability=strong_probability,
        strong_ops=frozenset({"transfer"}),
        sampler=accounts,
    )


def set_profile(strong_probability: float = 0.2) -> WorkloadProfile:
    """Adds, removes and membership checks over a small element space."""
    elements = list(range(6))
    return WorkloadProfile(
        name="set",
        factories=[
            (3.0, lambda rng: SetType.add(rng.choice(elements))),
            (2.0, lambda rng: SetType.remove(rng.choice(elements))),
            (2.0, lambda rng: SetType.contains(rng.choice(elements))),
            (1.0, lambda rng: SetType.elements()),
        ],
        strong_probability=strong_probability,
    )


PROFILES = {
    "counter": counter_profile,
    "list": list_profile,
    "kv": kv_profile,
    "bank": bank_profile,
    "set": set_profile,
}

#: Profiles accepting a ``sampler=`` keyword (keyed types).
KEYED_PROFILES = frozenset({"kv", "bank"})


class RandomWorkload:
    """Drives closed-loop sessions against a cluster (or shard router).

    ``cluster`` is anything exposing ``connect(pid, think_time=...)`` and
    ``config.n_replicas`` — a :class:`~repro.core.cluster.BayouCluster`
    or a :class:`~repro.shard.router.ShardRouter` (whose sessions route
    every operation to its key's owner shard). ``sessions`` overrides the
    client count (default: one per replica index), so a sharded sweep can
    hold the offered load constant while the shard count varies.
    """

    def __init__(
        self,
        cluster,
        profile: WorkloadProfile,
        *,
        ops_per_session: int = 10,
        think_time: float = 0.5,
        seed: int = 0,
        sessions: Optional[int] = None,
    ) -> None:
        self.cluster = cluster
        self.profile = profile
        self.ops_per_session = ops_per_session
        self.think_time = think_time
        self.rngs = SeededRngRegistry(seed)
        self.n_sessions = (
            sessions if sessions is not None else cluster.config.n_replicas
        )
        if self.n_sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.n_sessions}")
        self.sessions: List[Session] = []

    def start(self) -> None:
        """Create the sessions and queue their operations.

        Session ``i`` binds to replica index ``i mod n_replicas`` — with
        the default count that is exactly one session per replica, the
        historical behaviour.

        Fixed-skew profiles pre-sample every operation here (the
        historical behaviour, byte-identical streams under a seed). A
        *time-varying* profile (:attr:`WorkloadProfile.time_varying`)
        cannot: the key skew at simulated time ``t`` is unknowable at
        time 0, so each session samples lazily — the next operation is
        drawn when the previous one responds, with the sampler clocked
        to the response's simulated time. Draw order per session rng is
        identical in both modes.
        """
        n_replicas = self.cluster.config.n_replicas
        lazy = self.profile.time_varying
        for index in range(self.n_sessions):
            session = self.cluster.connect(
                index % n_replicas, think_time=self.think_time
            )
            rng = self.rngs.stream(f"session.{index}")
            self.sessions.append(session)
            if lazy:
                self._submit_next(session, rng, self.ops_per_session)
            else:
                for _ in range(self.ops_per_session):
                    op, strong = self.profile.sample(rng)
                    session.submit(op, strong)

    def _submit_next(
        self, session: Session, rng: random.Random, remaining: int
    ) -> None:
        """Lazy closed-loop submission: one draw per response."""
        self.profile.set_time(self.cluster.sim.now)
        op, strong = self.profile.sample(rng)
        future = session.submit(op, strong)
        if remaining > 1:
            future.add_done_callback(
                lambda _future: self._submit_next(session, rng, remaining - 1)
            )

    @property
    def all_done(self) -> bool:
        return all(session.idle for session in self.sessions)

    def latencies(self) -> List[float]:
        samples: List[float] = []
        for session in self.sessions:
            samples.extend(session.latencies)
        return samples
