"""Random workload generation over the replicated data types.

A :class:`WorkloadProfile` is a weighted set of operation factories plus a
probability of issuing an operation as strong. :class:`RandomWorkload`
drives closed-loop :class:`~repro.core.session.Session` clients (one per
replica) so the resulting history is well-formed, which the checking
experiments (Theorems 2/3) require. ``Scenario.workload(...)`` is the
fluent entry point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.session import Session
from repro.datatypes.base import Operation
from repro.datatypes.bank import BankAccounts
from repro.datatypes.counter import Counter
from repro.datatypes.kvstore import KVStore
from repro.datatypes.orset import SetType
from repro.datatypes.rlist import RList
from repro.sim.rng import SeededRngRegistry

OpFactory = Callable[[random.Random], Operation]


@dataclass
class WorkloadProfile:
    """Weighted operation mix for one data type."""

    name: str
    factories: List[Tuple[float, OpFactory]]
    strong_probability: float = 0.2

    def sample(self, rng: random.Random) -> Tuple[Operation, bool]:
        """Draw one (operation, strong?) pair."""
        total = sum(weight for weight, _ in self.factories)
        pick = rng.uniform(0, total)
        accumulated = 0.0
        for weight, factory in self.factories:
            accumulated += weight
            if pick <= accumulated:
                op = factory(rng)
                break
        else:  # pragma: no cover - float edge
            op = self.factories[-1][1](rng)
        strong = rng.random() < self.strong_probability
        return op, strong


def counter_profile(strong_probability: float = 0.2) -> WorkloadProfile:
    """Increments, decrements, conditional adds and reads on a counter."""
    return WorkloadProfile(
        name="counter",
        factories=[
            (4.0, lambda rng: Counter.increment(rng.randint(1, 5))),
            (2.0, lambda rng: Counter.decrement(rng.randint(1, 3))),
            (1.0, lambda rng: Counter.add_if_even(rng.randint(1, 3))),
            (2.0, lambda rng: Counter.read()),
        ],
        strong_probability=strong_probability,
    )


def list_profile(strong_probability: float = 0.2) -> WorkloadProfile:
    """The paper's list: appends, duplicates and reads."""
    alphabet = "abcdefgh"
    return WorkloadProfile(
        name="list",
        factories=[
            (5.0, lambda rng: RList.append(rng.choice(alphabet))),
            (1.0, lambda rng: RList.duplicate()),
            (2.0, lambda rng: RList.read()),
            (1.0, lambda rng: RList.size()),
        ],
        strong_probability=strong_probability,
    )


def kv_profile(strong_probability: float = 0.25) -> WorkloadProfile:
    """Puts, conditional puts (the consensus-requiring op), gets, removes."""
    keys = ["alpha", "beta", "gamma", "delta"]
    return WorkloadProfile(
        name="kv",
        factories=[
            (3.0, lambda rng: KVStore.put(rng.choice(keys), rng.randint(0, 99))),
            (2.0, lambda rng: KVStore.put_if_absent(rng.choice(keys), rng.randint(0, 99))),
            (3.0, lambda rng: KVStore.get(rng.choice(keys))),
            (1.0, lambda rng: KVStore.remove(rng.choice(keys))),
        ],
        strong_probability=strong_probability,
    )


def bank_profile(strong_probability: float = 0.3) -> WorkloadProfile:
    """Deposits, guarded withdrawals and transfers over a few accounts."""
    accounts = ["checking", "savings", "escrow"]
    return WorkloadProfile(
        name="bank",
        factories=[
            (3.0, lambda rng: BankAccounts.deposit(rng.choice(accounts), rng.randint(1, 50))),
            (2.0, lambda rng: BankAccounts.withdraw(rng.choice(accounts), rng.randint(1, 60))),
            (1.0, lambda rng: BankAccounts.transfer(
                rng.choice(accounts), rng.choice(accounts), rng.randint(1, 30))),
            (2.0, lambda rng: BankAccounts.balance(rng.choice(accounts))),
        ],
        strong_probability=strong_probability,
    )


def set_profile(strong_probability: float = 0.2) -> WorkloadProfile:
    """Adds, removes and membership checks over a small element space."""
    elements = list(range(6))
    return WorkloadProfile(
        name="set",
        factories=[
            (3.0, lambda rng: SetType.add(rng.choice(elements))),
            (2.0, lambda rng: SetType.remove(rng.choice(elements))),
            (2.0, lambda rng: SetType.contains(rng.choice(elements))),
            (1.0, lambda rng: SetType.elements()),
        ],
        strong_probability=strong_probability,
    )


PROFILES = {
    "counter": counter_profile,
    "list": list_profile,
    "kv": kv_profile,
    "bank": bank_profile,
    "set": set_profile,
}


class RandomWorkload:
    """Drives closed-loop sessions against a cluster."""

    def __init__(
        self,
        cluster,
        profile: WorkloadProfile,
        *,
        ops_per_session: int = 10,
        think_time: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.profile = profile
        self.ops_per_session = ops_per_session
        self.think_time = think_time
        self.rngs = SeededRngRegistry(seed)
        self.sessions: List[Session] = []

    def start(self) -> None:
        """Create one session per replica and queue its operations."""
        for pid in range(self.cluster.config.n_replicas):
            session = self.cluster.connect(pid, think_time=self.think_time)
            rng = self.rngs.stream(f"session.{pid}")
            for _ in range(self.ops_per_session):
                op, strong = self.profile.sample(rng)
                session.submit(op, strong)
            self.sessions.append(session)

    @property
    def all_done(self) -> bool:
        return all(session.idle for session in self.sessions)

    def latencies(self) -> List[float]:
        samples: List[float] = []
        for session in self.sessions:
            samples.extend(session.latencies)
        return samples
