"""Plain-text tables for experiment output (paper-style rows)."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], *, title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    for row in rendered_rows:
        parts.append(line(row))
    return "\n".join(parts)


def _render(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    return str(cell)
