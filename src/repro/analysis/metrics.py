"""Metrics extracted from runs and histories.

Two quantifications of *temporary operation reordering*:

- :func:`count_reordering_witnesses` — pairs of operations that two
  different observers perceived in opposite relative orders (the clients of
  Figure 1 "observe append(x) and duplicate() in a different order");
- :func:`count_trace_final_discords` — pairs inside a single perceived
  trace whose order contradicts the final TOB order (the observer saw a
  state the final serialisation never passes through).

Plus the shared throughput/staleness folds every sharded experiment
(E12–E15) reduces its futures with: :func:`rate`,
:func:`committed_op_rate` and :func:`weak_staleness_samples`. One
definition, one set of edge-case conventions (empty window → the
caller's default; half-open ``start <= t < end`` windows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.framework.history import History


@dataclass
class LatencyStats:
    """Summary statistics over a set of response latencies."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, maximum=0.0)
        ordered = sorted(samples)

        def percentile(fraction: float) -> float:
            index = min(len(ordered) - 1, int(fraction * len(ordered)))
            return ordered[index]

        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(0.50),
            p95=percentile(0.95),
            maximum=ordered[-1],
        )

    def __repr__(self) -> str:
        return (
            f"LatencyStats(n={self.count}, mean={self.mean:.3f}, "
            f"p50={self.p50:.3f}, p95={self.p95:.3f}, max={self.maximum:.3f})"
        )


# ----------------------------------------------------------------------
# Shared throughput / staleness folds (E12–E15)
# ----------------------------------------------------------------------
def rate(count: float, span: float, *, default: float = 0.0) -> float:
    """``count`` per unit ``span``; ``default`` when the span is empty.

    Wall-clock callers (E15) pass ``default=float("inf")`` — a burst
    measured over zero elapsed time is *fast*, not absent.
    """
    return count / span if span > 0 else default


def committed_op_rate(
    futures: Iterable,
    *,
    start: Optional[float] = None,
    end: Optional[float] = None,
    default: float = 0.0,
) -> float:
    """Committed (stable) operations per time unit.

    Without a window: every stable future counts, over the span from the
    first invoke to the last stabilisation. With ``start``/``end``: only
    futures that stabilised inside the half-open window
    ``start <= stable_time < end``, over ``end - start``.
    """
    if start is not None and end is not None:
        stable = [
            f for f in futures
            if f.stable_time is not None and start <= f.stable_time < end
        ]
        return rate(len(stable), end - start, default=default)
    futures = list(futures)
    stable = [f.stable_time for f in futures if f.stable_time is not None]
    invoked = [f.invoke_time for f in futures if f.invoke_time is not None]
    if not stable or not invoked:
        return default
    return rate(len(stable), max(stable) - min(invoked), default=default)


def weak_staleness_samples(futures: Iterable) -> List[float]:
    """``stable − response`` of every weak op holding both timestamps.

    The freshness price of tentative responses: how long a client
    acting on a weak response waited before that response became final.
    """
    return [
        f.stable_time - f.response_time
        for f in futures
        if not f.strong
        and f.stable_time is not None
        and f.response_time is not None
    ]


def _pair_orders(trace: Sequence) -> Dict[Tuple, bool]:
    """Map each unordered pair in ``trace`` to whether (a, b) appear a-first.

    Keys are normalised (min, max) by repr; the value records whether the
    smaller-keyed element came first.
    """
    orders: Dict[Tuple, bool] = {}
    for i, a in enumerate(trace):
        for b in trace[i + 1:]:
            key = (a, b) if repr(a) <= repr(b) else (b, a)
            orders[key] = key == (a, b)
    return orders


def _extended_trace(event) -> List:
    """``exec'(e)`` — the perceived trace with the observer appended.

    Including the observer is essential: in Figure 1 the weak ``append(x)``
    perceives ``duplicate`` *before itself* while ``duplicate`` perceives
    ``append(x)`` before itself; neither bare trace contains both events.
    """
    trace = list(event.perceived_trace or ())
    if event.eid not in trace:
        trace.append(event.eid)
    return trace


def count_reordering_witnesses(history: History) -> int:
    """Pairs perceived in opposite orders by two different events."""
    seen: Dict[Tuple, bool] = {}
    discordant = set()
    for event in history.events:
        if event.perceived_trace is None:
            continue
        for key, a_first in _pair_orders(_extended_trace(event)).items():
            if key in seen and seen[key] != a_first:
                discordant.add(key)
            else:
                seen.setdefault(key, a_first)
    return len(discordant)


def count_trace_final_discords(history: History) -> int:
    """(observer, pair) occurrences where a trace contradicts the TOB order."""
    final_rank = {
        event.eid: event.tob_no
        for event in history.events
        if event.tob_no is not None
    }
    discords = 0
    for event in history.events:
        if event.perceived_trace is None:
            continue
        trace = _extended_trace(event)
        for i, a in enumerate(trace):
            for b in trace[i + 1:]:
                rank_a, rank_b = final_rank.get(a), final_rank.get(b)
                if rank_a is not None and rank_b is not None and rank_a > rank_b:
                    discords += 1
    return discords


def stable_vs_tentative_mismatches(history: History) -> int:
    """Events whose tentative return value differs from the final-order value.

    For every completed non-read-only event, recompute the value the
    operation *would* return in the final arbitration order (its committed
    prefix) and compare with the actually returned (possibly tentative)
    value. This is the client-facing impact of temporary reordering.
    """
    ordered = sorted(
        (event for event in history.events if event.tob_no is not None),
        key=lambda event: event.tob_no,
    )
    mismatches = 0
    for index, event in enumerate(ordered):
        if event.pending:
            continue
        preceding = [prior.op for prior in ordered[:index] if not prior.readonly]
        final_value = history.datatype.spec_return(event.op, preceding)
        if final_value != event.rval:
            mismatches += 1
    return mismatches
