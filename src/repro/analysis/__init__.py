"""Workloads, metrics and the experiment runners for every paper artifact.

The experiment index (see DESIGN.md):

====  ==========================  ==========================================
id    paper artifact              module
====  ==========================  ==========================================
E1    Figure 1                    repro.analysis.experiments.figure1
E2    Figure 2                    repro.analysis.experiments.figure2
E3    Section 2.3 (progress)      repro.analysis.experiments.progress
E4    Theorem 1                   repro.analysis.experiments.theorem1
E5    Theorem 2                   repro.analysis.experiments.theorems
E6    Theorem 3                   repro.analysis.experiments.theorems
E7    guarantee matrix            repro.analysis.experiments.matrix
E8    performance envelope        repro.analysis.experiments.performance
====  ==========================  ==========================================
"""

from repro.analysis.metrics import (
    LatencyStats,
    count_reordering_witnesses,
    count_trace_final_discords,
)
from repro.analysis.report import format_table
from repro.analysis.workload import RandomWorkload, WorkloadProfile

__all__ = [
    "LatencyStats",
    "RandomWorkload",
    "WorkloadProfile",
    "count_reordering_witnesses",
    "count_trace_final_discords",
    "format_table",
]
