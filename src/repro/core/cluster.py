"""The Bayou cluster harness.

Wires together the full stack — simulator, drifting clocks, network with
partitions and fault filters, reliable broadcast, a TOB engine (sequencer or
Multi-Paxos with Ω), and one Bayou replica per node — and records the
history of every invocation with the instrumentation the formal framework
needs (request timestamps, TOB order, perceived execution traces).

Typical experiment shape::

    cluster = BayouCluster(RList(), BayouConfig(n_replicas=2))
    cluster.schedule_invoke(1.0, 0, RList.append("a"))
    cluster.run_until_quiescent()
    history = cluster.build_history()
    execution = build_abstract_execution(history)
    assert check_fec(execution, "weak").ok
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.broadcast.failure_detector import OmegaFailureDetector
from repro.broadcast.paxos import PaxosTOB
from repro.broadcast.anti_entropy import AntiEntropy
from repro.broadcast.reliable import ReliableBroadcast
from repro.broadcast.sequencer import SequencerTOB
from repro.core.config import BayouConfig
from repro.core.durability import DurableStore, open_store
from repro.core.modified_replica import ModifiedBayouReplica
from repro.core.replica import BayouReplica
from repro.core.request import Dot, Req
from repro.core.session import OpFuture, ResponseCallback, Session
from repro.datatypes.base import DataType, Operation
from repro.errors import DivergedOrderError, ReplicaUnavailableError
from repro.framework.history import PENDING, STRONG, WEAK, History, HistoryEvent
from repro.net.faults import CrashSchedule, MessageFilter
from repro.net.network import FixedLatency, Network, UniformLatency
from repro.net.node import RoutingNode
from repro.net.partition import PartitionSchedule
from repro.obs import Telemetry, TelemetryScope
from repro.runtime.sim import SimRuntime
from repro.sim.clock import DriftingClock
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRngRegistry
from repro.sim.trace import TraceLog

#: Protocol selector values.
ORIGINAL = "original"
MODIFIED = "modified"


@dataclass
class _StagedEvent:
    """Mutable per-request record, frozen into a HistoryEvent at the end."""

    dot: Dot
    session: int
    op: Operation
    level: str
    timestamp: float
    invoke_time: float
    readonly: bool
    tob_cast: bool
    rval: Any = PENDING
    return_time: Optional[float] = None
    perceived: Optional[Tuple[Dot, ...]] = None
    stable: bool = False
    responded: bool = False
    seq: int = 0


class BayouCluster:
    """A simulated deployment of the (original or modified) Bayou protocol."""

    def __init__(
        self,
        datatype: DataType,
        config: Optional[BayouConfig] = None,
        *,
        protocol: str = ORIGINAL,
        partitions: Optional[PartitionSchedule] = None,
        filters: Optional[MessageFilter] = None,
        crashes: Optional[CrashSchedule] = None,
        sim: Optional[Simulator] = None,
        name: str = "",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or BayouConfig()
        self.config.validate()
        if protocol not in (ORIGINAL, MODIFIED):
            raise ValueError(f"unknown protocol {protocol!r}")
        self.protocol = protocol
        self.datatype = datatype
        #: Deployment name; prefixes node names (sharded deployments run
        #: several clusters side by side on one shared simulator).
        self.name = name

        self.sim = sim if sim is not None else Simulator()
        self.trace = (
            TraceLog(capacity=self.config.trace_capacity)
            if self.config.enable_trace
            else None
        )
        #: The deployment's telemetry plane. Sharded deployments pass one
        #: shared plane into every shard; standalone clusters build their
        #: own when ``config.enable_telemetry`` is set.
        if telemetry is None and self.config.enable_telemetry:
            telemetry = Telemetry(trace_capacity=self.config.trace_capacity)
        self.telemetry = telemetry
        #: The cluster's scoped view (prefixes op trace ids with the
        #: deployment name, labels instruments with the shard).
        self._tscope: Optional[TelemetryScope] = (
            telemetry.scoped(self.name) if telemetry is not None else None
        )
        if self._tscope:
            self._h_commit_latency = self._tscope.histogram(
                "repro_op_commit_latency"
            )
            self._h_weak_staleness = self._tscope.histogram(
                "repro_weak_staleness"
            )
            self._c_submitted = self._tscope.counter("repro_ops_submitted")
        self.rngs = SeededRngRegistry(self.config.seed)
        self.partitions = partitions or PartitionSchedule(self.config.n_replicas)
        self.filters = filters or MessageFilter()
        if self.config.latency_jitter > 0:
            latency = UniformLatency(
                self.config.message_delay,
                self.config.message_delay + self.config.latency_jitter,
                self.rngs,
            )
        else:
            latency = FixedLatency(self.config.message_delay)
        self.network = Network(
            self.sim,
            self.config.n_replicas,
            latency=latency,
            partitions=self.partitions,
            filters=self.filters,
            trace=self.trace,
        )
        #: The execution runtime every node and component runs against.
        #: Here it is always the deterministic backend; the same stack runs
        #: over :class:`~repro.runtime.asyncio_net.AsyncioRuntime` in
        #: ``python -m repro serve`` (see :mod:`repro.runtime.serve`).
        self.runtime = SimRuntime(self.sim, self.network)

        self.nodes: List[RoutingNode] = []
        self.clocks: List[DriftingClock] = []
        self.replicas: List[BayouReplica] = []
        self.omegas: List[OmegaFailureDetector] = []
        #: Per-replica stable storage (None entries when durability="none").
        self.stores: List[Optional[DurableStore]] = []
        self.crashes = crashes
        self._staged: Dict[Dot, _StagedEvent] = {}
        self._futures: Dict[Dot, OpFuture] = {}
        self._invocation_seq = 0
        self._build()
        if crashes is not None:
            crashes.arm(self.sim, {node.pid: node for node in self.nodes})

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _make_store(self, pid: int) -> Optional[DurableStore]:
        """One replica's stable storage, per the configured backend."""
        if self.config.durability == "jsonl":
            if self._durability_root is None:
                self._durability_root = (
                    self.config.durability_dir
                    or tempfile.mkdtemp(prefix="repro-durable-")
                )
            return open_store(
                "jsonl",
                directory=os.path.join(self._durability_root, f"node{pid}"),
            )
        return open_store(self.config.durability)

    def _build(self) -> None:
        config = self.config
        replica_class = (
            ModifiedBayouReplica if self.protocol == MODIFIED else BayouReplica
        )
        self._durability_root: Optional[str] = None
        for pid in range(config.n_replicas):
            node = RoutingNode(self.runtime, pid, name=f"{self.name}R{pid}")
            store = self._make_store(pid)
            clock = DriftingClock(
                self.sim,
                offset=config.clock_offsets.get(pid, 0.0),
                rate=config.clock_rates.get(pid, 1.0),
            )
            replica = replica_class(
                node,
                clock,
                self.datatype,
                config,
                trace=self.trace,
                responder=self._make_responder(pid),
                store=store,
                telemetry=self._tscope,
            )
            if config.dissemination == "anti_entropy":
                replica.rb = AntiEntropy(
                    node,
                    replica.on_rb_deliver,
                    deliver_batch=replica.on_rb_deliver_batch,
                    sync_interval=config.ae_sync_interval,
                    trace=self.trace,
                    store=store,
                    telemetry=self._tscope,
                )
            else:
                replica.rb = ReliableBroadcast(
                    node, replica.on_rb_deliver, trace=self.trace, store=store
                )
            if config.tob_engine == "sequencer":
                replica.tob = SequencerTOB(
                    node,
                    replica.on_tob_deliver,
                    sequencer_pid=config.sequencer_pid,
                    trace=self.trace,
                    store=store,
                    telemetry=self._tscope,
                )
            else:
                omega = OmegaFailureDetector(
                    node,
                    heartbeat_interval=config.heartbeat_interval,
                    timeout=config.failure_timeout,
                    trace=self.trace,
                )
                self.omegas.append(omega)
                replica.tob = PaxosTOB(
                    node,
                    replica.on_tob_deliver,
                    omega,
                    retry_interval=config.paxos_retry_interval,
                    max_batch=config.paxos_max_batch,
                    max_inflight=config.paxos_max_inflight,
                    dual_2b=config.paxos_dual_2b,
                    max_gap=config.paxos_max_gap,
                    catchup_batch=config.paxos_catchup_batch,
                    catchup_rate=config.paxos_catchup_rate,
                    catchup_burst=config.paxos_catchup_burst,
                    deliver_batch=replica.on_tob_deliver_batch,
                    trace=self.trace,
                    store=store,
                    telemetry=self._tscope,
                )
                self.sim.schedule(0.0, omega.start, label=f"omega start {pid}")
            replica.commit_listener = self._on_commit
            # Registered last, so it runs after every component on this node
            # rebuilt its own state: the replica's uncommitted requests are
            # re-advertised only once the endpoints can carry them.
            node.register_crash_hooks(
                on_recover=lambda r=replica: r.reannounce()
            )
            if replica.restored_from_store:
                # Rebuilt over a previous incarnation's disk: re-advertise
                # uncommitted requests once the simulation starts (the
                # endpoints above are wired by then).
                self.sim.schedule(
                    0.0, replica.reannounce, label=f"reannounce R{pid}"
                )
            self.nodes.append(node)
            self.clocks.append(clock)
            self.replicas.append(replica)
            self.stores.append(store)

    def _make_responder(self, pid: int):
        def responder(
            req: Req, response: Any, perceived: Tuple[Dot, ...], stable: bool
        ) -> None:
            staged = self._staged.get(req.dot)
            if staged is not None and not staged.responded:
                staged.responded = True
                staged.rval = response
                staged.return_time = self.sim.now
                staged.perceived = perceived
                staged.stable = stable
            future = self._futures.get(req.dot)
            if future is not None:
                future._resolve(req, response, self.sim.now, stable=stable)

        return responder

    def _on_commit(self, req: Req) -> None:
        """First TOB delivery of a request fixes its final position."""
        future = self._futures.get(req.dot)
        if future is not None:
            future._mark_stable(self.sim.now)

    # ------------------------------------------------------------------
    # Invocation API
    # ------------------------------------------------------------------
    def submit(
        self,
        pid: int,
        op: Operation,
        *,
        strong: bool = False,
        future: Optional[OpFuture] = None,
    ) -> OpFuture:
        """Invoke ``op`` on replica ``pid`` right now; returns its future.

        The single response pipeline behind every client style: sessions
        pass their own pre-created future, open-loop callers get a fresh
        one. The future may already be resolved when this returns — the
        modified protocol answers weak operations synchronously inside
        ``invoke()``.
        """
        replica = self.replicas[pid]
        if replica.node.crashed:
            # Name the deployment (the shard, in sharded runs) as well as
            # the replica index: migration/crash interleavings are debugged
            # from this message, and "replica 1" alone does not say *which*
            # shard's replica 1 refused the submission.
            shard_tag = f" of shard {self.name}" if self.name else ""
            raise ReplicaUnavailableError(
                f"replica {pid}{shard_tag} is crashed at t={self.sim.now:g}; "
                "a crashed replica ceases all communication, so clients "
                "cannot reach it"
            )
        invoke_time = self.sim.now
        # Stage the history record *before* invoking: the modified protocol
        # responds to weak operations synchronously inside invoke().
        placeholder_dot = (pid, replica.curr_event_no + 1)
        self._invocation_seq += 1
        staged = _StagedEvent(
            dot=placeholder_dot,
            session=pid,
            op=op,
            level=STRONG if strong else WEAK,
            timestamp=0.0,  # patched below once the request exists
            invoke_time=invoke_time,
            readonly=self.datatype.is_readonly(op),
            tob_cast=True,  # patched below for modified-protocol weak reads
            seq=self._invocation_seq,
        )
        self._staged[placeholder_dot] = staged
        if future is None:
            future = OpFuture(op, strong=strong, pid=pid)
        future._mark_invoked(placeholder_dot, invoke_time)
        self._futures[placeholder_dot] = future
        req = replica.invoke(op, strong=strong)
        assert req.dot == placeholder_dot, "event numbering out of sync"
        if future.request is None:
            future.request = req
        staged.timestamp = req.timestamp
        staged.tob_cast = self._was_tob_cast(req)
        if self._tscope:
            self._instrument_submit(staged, future, req, pid)
        if not staged.tob_cast and future.done:
            # Never-broadcast operations (the modified protocol's invisible
            # reads) hold no position in the final order; their synchronous
            # response is as final as it will ever be.
            future._mark_stable(self.sim.now)
        return future

    def _instrument_submit(
        self, staged: _StagedEvent, future: OpFuture, req: Req, pid: int
    ) -> None:
        """Record the op's client-side spans and lifecycle histograms.

        The respond/stable spans ride the future's callbacks: those fire
        exactly once at the actual transition regardless of which path
        resolved the future (async responder, synchronous modified-weak
        response, origin commit fast path). Registered *after*
        ``staged.tob_cast`` is patched, so a never-broadcast op that is
        already done stabilises with its span parented on the root rather
        than a commit span that will never exist.
        """
        tscope = self._tscope
        assert tscope is not None
        dot = req.dot
        self._c_submitted.inc()
        tscope.op_span(
            staged.invoke_time,
            pid,
            "submit",
            dot,
            "submit",
            "root",
            strong=req.strong,
        )

        def on_respond(f: OpFuture) -> None:
            tscope.op_span(
                self.sim.now, pid, "respond", dot, "respond", "root",
                stable=f.stable,
            )

        def on_stable(f: OpFuture) -> None:
            parent = "commit" if staged.tob_cast else "root"
            tscope.op_span(
                self.sim.now, pid, "stable", dot, "stable", parent
            )
            latency = f.commit_latency
            if latency is not None:
                self._h_commit_latency.observe(latency)
            if not f.strong:
                staleness = f.staleness
                if staleness is not None:
                    self._h_weak_staleness.observe(staleness)

        future.add_done_callback(on_respond)
        future.add_stable_callback(on_stable)

    def invoke(self, pid: int, op: Operation, *, strong: bool = False) -> Req:
        """Invoke ``op`` on replica ``pid`` right now; returns the request."""
        request = self.submit(pid, op, strong=strong).request
        assert request is not None
        return request

    def connect(
        self,
        pid: int,
        *,
        think_time: float = 0.0,
        on_response: Optional[ResponseCallback] = None,
    ) -> Session:
        """Open a closed-loop :class:`Session` against replica ``pid``."""
        return Session(
            self, pid, think_time=think_time, on_response=on_response
        )

    def _was_tob_cast(self, req: Req) -> bool:
        """Whether the request was disseminated through TOB at all."""
        if self.protocol == MODIFIED and not req.strong:
            return not self.datatype.is_readonly(req.op)
        return True

    def schedule_invoke(
        self, at: float, pid: int, op: Operation, *, strong: bool = False
    ) -> None:
        """Plan an invocation at absolute simulated time ``at``."""
        self.sim.schedule_at(
            at,
            lambda: self.invoke(pid, op, strong=strong),
            label=f"invoke R{pid} {op}",
        )

    # ------------------------------------------------------------------
    # Crash control
    # ------------------------------------------------------------------
    def crash_replica(self, pid: int, mode: str = "recover") -> None:
        """Crash replica ``pid`` right now (``mode``: "stop" or "recover")."""
        self.nodes[pid].crash(mode)

    def recover_replica(self, pid: int) -> None:
        """Recover a crashed replica: every component reloads its durable
        state, catches up with peers and resumes periodic work."""
        self.nodes[pid].recover()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation (optionally up to an absolute time)."""
        self.sim.run(until=until)

    def run_until_quiescent(self) -> float:
        """Run until no events remain (natural with the sequencer engine)."""
        return self.sim.run_until_quiescent()

    def run_until_stable(
        self, *, max_time: float = 100_000.0, check_every: float = 50.0
    ) -> bool:
        """Run until converged-and-idle or ``max_time`` (for Paxos runs).

        Returns True if the cluster converged: every non-pending staged
        request answered, replicas agree on ``committed · tentative`` and
        have empty backlogs.
        """
        while self.sim.now < max_time:
            self.sim.run(until=self.sim.now + check_every)
            if self.converged() and self.sim.pending_events == 0:
                return True
            if self.converged() and self._only_periodic_work_left():
                return True
        return self.converged()

    def _only_periodic_work_left(self) -> bool:
        """Heuristic: all client requests answered and replicas drained."""
        unanswered = [
            staged
            for staged in self._staged.values()
            if not staged.responded and not self._response_lost(staged)
        ]
        backlogs = any(
            replica.backlog
            for replica in self.replicas
            if not replica.node.crashed
        )
        return not unanswered and not backlogs

    def _response_lost(self, staged: _StagedEvent) -> bool:
        """Whether a crash made this request permanently unanswerable.

        With stable storage, a replica that crashes drops its volatile
        response bookkeeping at recovery, so any request invoked on it
        before the crash that had not responded yet never will (even if
        the request itself survives in the durable write-ahead log and
        still commits). Without stable storage the in-memory bookkeeping
        survives recovery — a pending response can still arrive — so only
        a *permanent* (crash-stop) outage writes the request off. Either
        way such events stay PENDING in the history; stability detection
        must not wait for them.
        """
        replica = self.replicas[staged.session]
        crashed_after_invoke = any(
            at >= staged.invoke_time for at in replica.crash_times
        )
        if replica.store is not None:
            return crashed_after_invoke
        return (
            crashed_after_invoke
            and replica.node.crashed
            and replica.node.crash_mode == "stop"
        )

    def shutdown(self) -> None:
        """Stop all periodic activity so in-flight events can drain."""
        for replica in self.replicas:
            replica.stop()
            if replica.tob is not None:
                replica.tob.stop()
            if isinstance(replica.rb, AntiEntropy):
                replica.rb.stop()
        for omega in self.omegas:
            omega.stop()

    # ------------------------------------------------------------------
    # Probing and history construction
    # ------------------------------------------------------------------
    def add_horizon_probes(
        self,
        make_op: Callable[[], Operation],
        *,
        spacing: Optional[float] = None,
    ) -> float:
        """Mark the stabilisation horizon and issue one probe per replica.

        The probes are weak operations invoked after the horizon; the EV and
        CPar finite-run checks quantify over them. Probes are spaced widely
        enough that clock *offsets* cannot reverse their timestamp order
        (the paper's visibility rule for never-broadcast read-only events
        compares request timestamps). Runs with differing clock *rates*
        should not rely on EV probes. Returns the horizon time.
        """
        horizon = self.sim.now
        self._horizon = horizon
        if spacing is None:
            offsets = [
                self.config.clock_offsets.get(pid, 0.0)
                for pid in range(self.config.n_replicas)
            ]
            spacing = 1.0 + 2.0 * (max(offsets) - min(offsets))
        for pid in range(self.config.n_replicas):
            self.schedule_invoke(horizon + 1.0 + pid * spacing, pid, make_op())
        return horizon

    def build_history(
        self, *, horizon: Optional[float] = None, well_formed: bool = True
    ) -> History:
        """Freeze the staged records into a checkable History."""
        tob_order = self._consistent_tob_order()
        tob_index = {dot: index for index, dot in enumerate(tob_order)}
        events = []
        for staged in self._staged.values():
            events.append(
                HistoryEvent(
                    eid=staged.dot,
                    session=staged.session,
                    op=staged.op,
                    level=staged.level,
                    invoke_time=staged.invoke_time,
                    return_time=staged.return_time,
                    rval=staged.rval if staged.responded else PENDING,
                    timestamp=staged.timestamp,
                    readonly=staged.readonly,
                    tob_cast=staged.tob_cast,
                    tob_no=tob_index.get(staged.dot),
                    perceived_trace=staged.perceived,
                    stable=staged.stable,
                    seq=staged.seq,
                )
            )
        effective_horizon = horizon if horizon is not None else getattr(
            self, "_horizon", None
        )
        return History(
            events,
            self.datatype,
            horizon=effective_horizon,
            well_formed=well_formed,
        )

    def _consistent_tob_order(self) -> List[Dot]:
        """The TOB delivery order; checks replicas saw consistent prefixes.

        Raises :class:`DivergedOrderError` (with a readable diff of the two
        sequences) if any replica's delivered sequence is not a prefix of
        the longest one — a violation of TOB's total-order property.
        """
        sequences = [
            replica.tob.delivered_sequence
            for replica in self.replicas
            if replica.tob is not None
        ]
        longest: List[Dot] = max(sequences, key=len, default=[])
        for sequence in sequences:
            if sequence != longest[: len(sequence)]:
                raise DivergedOrderError.from_sequences(sequence, longest)
        return longest

    # ------------------------------------------------------------------
    # Convergence diagnostics
    # ------------------------------------------------------------------
    def converged(self) -> bool:
        """All live replicas agree on the order and have fully executed it.

        Crashed replicas are excluded: a crash-stop replica can never catch
        up (by definition), and a crash–recovery replica rejoins the check
        the moment it recovers — E11's convergence criterion is exactly
        that a *recovered* replica is indistinguishable from a survivor
        here.
        """
        live = [
            replica for replica in self.replicas if not replica.node.crashed
        ]
        if not live:
            return False
        orders = [[r.dot for r in replica.current_order()] for replica in live]
        if any(order != orders[0] for order in orders[1:]):
            return False
        if any(replica.backlog for replica in live):
            return False
        snapshots = [replica.state.snapshot() for replica in live]
        return all(snapshot == snapshots[0] for snapshot in snapshots[1:])

    def convergence_report(self) -> Dict[str, Any]:
        """Structured convergence diagnostics for experiment reports."""
        return {
            "converged": self.converged(),
            "crashed": [r.node.crashed for r in self.replicas],
            "committed_lengths": [len(r.committed) for r in self.replicas],
            "tentative_lengths": [len(r.tentative) for r in self.replicas],
            "backlogs": [r.backlog for r in self.replicas],
            "executions": [r.execution_count for r in self.replicas],
            "rollbacks": [r.rollback_count for r in self.replicas],
            "downtimes": [r.downtime for r in self.replicas],
        }
