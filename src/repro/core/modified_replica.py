"""The modified Bayou replica — Algorithm 2 and Appendix A.1.

Three changes relative to Algorithm 1, each with a stated purpose:

1. **Strong operations are broadcast through TOB only** (never RB, never
   placed on the tentative list), so any operation that observes a strong
   operation observes it in its final, committed position — the first half
   of the circular-causality fix.
2. **Weak operations execute immediately on the current state at invocation
   and are then rolled back**; the response is returned from that immediate
   execution. No concurrent operation can slip in front of the first
   (response-generating) execution — the second half of the fix — and weak
   operations become *bounded wait-free* (Appendix A.1.2), at the price of
   losing session guarantees such as read-your-writes.
3. **Weak read-only operations run locally only** (invisible reads): they
   are neither RB- nor TOB-cast and never enter the tentative list.

Footnote 8's optimisation — skip the immediate rollback when the request
lands at the tail of the current order and the engine is idle — is
available via ``BayouConfig.optimize_tail_execution``.
"""

from __future__ import annotations

from repro.core.replica import BayouReplica
from repro.core.request import Req
from repro.datatypes.base import Operation


class ModifiedBayouReplica(BayouReplica):
    """A Bayou replica running Algorithm 2 (circular-causality-free)."""

    def invoke(self, op: Operation, strong: bool = False) -> Req:
        """Submit an operation per Algorithm 2."""
        assert self.rb is not None and self.tob is not None, "endpoints not attached"
        self.curr_event_no += 1
        req = Req(
            timestamp=self.clock.now(),
            dot=(self.pid, self.curr_event_no),
            strong=strong,
            op=op,
        )
        if self.trace is not None:
            self.trace.record(
                self.node.now,
                self.pid,
                "bayou.invoke",
                dot=req.dot,
                op=str(op),
            )
        if self.telemetry:
            self.telemetry.op_span(
                self.node.now,
                self.pid,
                "op",
                req.dot,
                "root",
                None,
                op=str(op),
                strong=strong,
            )
        if strong:
            # Lines 13-14: await the committed execution; TOB only.
            self._awaiting[req.dot] = self._no_response_sentinel()
            self._persist_invoke(req)
            self.tob.tob_cast(req.dot, req)
            return req

        # Lines 4-7: immediate execution on the current state, immediate
        # (tentative) response, then rollback. Whether footnote 8 keeps the
        # execution is decided *before* executing: a kept execution takes
        # its due checkpoint, while one about to be reverted suppresses the
        # capture — a snapshot of a state about to be undone is wasted work
        # under BayouConfig.checkpoint_interval.
        readonly = self.datatype.is_readonly(op)
        if readonly and self.store is not None:
            # Invisible reads leave no replicated state, but their event
            # numbers must still survive a crash: dots key the history, so
            # a recovered replica may never mint a dot twice.
            self.store.put("replica.curr_event_no", self.curr_event_no)
        keep = not readonly and self._may_keep_execution(req)
        perceived = self._capture_perceived()
        response = self.state.execute(req, checkpoint=keep)
        self.execution_count += 1
        if self.telemetry:
            self._m_execs.inc()
            self.telemetry.op_span(
                self.node.now,
                self.pid,
                "exec.tentative",
                req.dot,
                "exec.tentative",
                "root",
            )
        if self.trace is not None:
            self.trace.record(
                self.node.now, self.pid, "bayou.execute", dot=req.dot
            )
        self._respond(req, response, perceived, stable=False)

        if keep:
            # Footnote 8: the request would be re-executed at the very same
            # position; keep it and skip the rollback/re-execution churn.
            self._append_executed(req)
        else:
            self.state.rollback(req)
            self.rollback_count += 1
            if self.telemetry:
                self._m_rollbacks.inc()

        if not readonly:
            # Lines 8-11: disseminate and speculate only updating requests.
            # (Invisible weak reads are never persisted either: they leave
            # no replicated state for a recovery to rebuild.)
            self._persist_invoke(req)
            self.rb.rb_cast(req.dot, req)
            self.tob.tob_cast(req.dot, req)
            self.adjust_tentative_order(req)
            self._arm_retransmit()
        return req

    def _joins_tentative(self, req: Req) -> bool:
        """Strong requests never join the tentative list in Algorithm 2, so
        a recovery rebuild must keep them off it too (they are re-announced
        through TOB instead)."""
        return not req.strong

    def _may_keep_execution(self, req: Req) -> bool:
        """True when the immediate execution already sits at the tail."""
        if not self.config.optimize_tail_execution:
            return False
        if self.to_be_rolled_back or self.to_be_executed:
            return False
        return all(r < req for r in self.tentative)

    @staticmethod
    def _no_response_sentinel():
        # Reuse the parent's private sentinel without re-exporting it.
        from repro.core.replica import _NO_RESPONSE

        return _NO_RESPONSE
