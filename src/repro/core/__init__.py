"""The Bayou protocol — the paper's primary contribution.

- :class:`~repro.core.request.Req`: timestamped, dotted client requests with
  the paper's ``(timestamp, dot)`` total order.
- :class:`~repro.core.state_object.StateObject`: Algorithm 3 — execute /
  rollback over a register map with per-request undo logs.
- :class:`~repro.core.replica.BayouReplica`: Algorithm 1 — speculative
  timestamp ordering (tentative list) reconciled against TOB (committed
  list), with rollback and re-execution as schedulable internal steps.
- :class:`~repro.core.modified_replica.ModifiedBayouReplica`: Algorithm 2 —
  the paper's improved protocol that avoids circular causality and makes
  weak operations bounded wait-free.
- :class:`~repro.core.cluster.BayouCluster`: the end-to-end harness gluing
  simulator, network, broadcast stack, replicas and history recording.
- :class:`~repro.core.session.Session` and
  :class:`~repro.core.session.OpFuture`: the futures-based client pipeline
  (``ClientSession`` is its backwards-compatible alias).
"""

from repro.core.client import ClientSession
from repro.core.cluster import BayouCluster
from repro.core.config import BayouConfig
from repro.core.modified_replica import ModifiedBayouReplica
from repro.core.replica import BayouReplica
from repro.core.request import Dot, Req
from repro.core.session import OpFuture, Session
from repro.core.state_object import StateObject

__all__ = [
    "BayouCluster",
    "BayouConfig",
    "BayouReplica",
    "ClientSession",
    "Dot",
    "ModifiedBayouReplica",
    "OpFuture",
    "Req",
    "Session",
    "StateObject",
]
