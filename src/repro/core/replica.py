"""The Bayou replica — Algorithm 1 of the paper.

Every structure and handler below maps line-for-line onto the pseudocode:

- ``invoke`` (lines 9–15): stamp the operation with the local clock and a
  fresh dot, RB-cast and TOB-cast it, simulate immediate local RB-delivery
  by inserting it into the tentative order, and register it as awaiting a
  response.
- ``adjust_tentative_order`` (lines 16–21): keep ``tentative`` sorted by
  ``(timestamp, dot)`` and recompute the execution schedule.
- ``on_rb_deliver`` (lines 22–26) and ``on_tob_deliver`` (lines 27–34).
- ``adjust_execution`` (lines 35–40): diff the executed prefix against the
  new order; everything after the longest common prefix is rolled back (in
  reverse) and re-executed.
- the two ``upon`` internal events (lines 41–55) run as *schedulable
  simulation steps* with a per-replica processing delay, which is what makes
  the paper's "local execution is for some reason delayed" (Figure 1) and
  the slow replica of Section 2.3 expressible.

Responses: weak operations return at their first execution (line 50); strong
operations return once executed *and* committed (line 49 or lines 32–33).

Engine invariants (shared by both reorder engines, see ``docs/PERFORMANCE.md``):

- ``executed`` is always a *prefix* of the most recently adjusted order, and
  ``executed ++ to_be_executed`` equals that order as a sequence. This is
  what lets the hot paths below (tail insertion, head commit) skip the full
  O(n) ``adjust_execution`` diff: an insertion at the very tail of
  ``committed · tentative`` extends the schedule by exactly that request,
  and a TOB commit of the current tentative head leaves the concatenated
  sequence — and therefore the schedule — untouched.
- the state object's live trace equals ``executed ++
  reversed(to_be_rolled_back)`` at all times, so draining the rollback queue
  is equivalent to ``StateObject.revert_to(len(executed))`` — the batched
  engine uses exactly that, restoring from a checkpoint at or before the
  divergence point when one is closer than the undo-log tail.
- rollback/execution *counts* are logical: the same sequence of schedule
  adjustments produces the same ``rollback_count`` whether the work is done
  stepwise (one simulation event per request, the paper's literal reading)
  or batched (the whole backlog in one event). The *schedules themselves*
  can differ across engines under backlog: the batched engine executes
  later, so overlapping reorder storms can coalesce — never more logical
  rollbacks than stepwise, sometimes fewer (see ``docs/PERFORMANCE.md``);
  checkpointing, by contrast, never changes any count.
"""

from __future__ import annotations

from bisect import insort
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.broadcast.reliable import ReliableBroadcast
from repro.broadcast.total_order import TotalOrderBroadcast
from repro.core.config import BayouConfig
from repro.core.durability import DurableStore, from_jsonable, to_jsonable
from repro.core.request import Dot, Req
from repro.core.state_object import StateObject
from repro.datatypes.base import DataType, Operation
from repro.net.node import RoutingNode
from repro.sim.clock import DriftingClock
from repro.sim.trace import TraceLog

#: responder(req, response, perceived_trace, stable)
Responder = Callable[[Req, Any, Tuple[Dot, ...], bool], None]

#: Sentinel for "awaiting, no response computed yet" (⊥ in the paper).
_NO_RESPONSE = object()


class BayouReplica:
    """One replica of the (original) Bayou protocol."""

    def __init__(
        self,
        node: RoutingNode,
        clock: DriftingClock,
        datatype: DataType,
        config: BayouConfig,
        *,
        trace: Optional[TraceLog] = None,
        responder: Optional[Responder] = None,
        store: Optional[DurableStore] = None,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.node = node
        self.pid = node.pid
        self.clock = clock
        self.datatype = datatype
        self.config = config
        self.trace = trace
        #: Telemetry plane or scope (``None`` or disabled both short-circuit
        #: every instrumentation site to a single false branch). Hot-path
        #: instruments are resolved once here, not per event.
        self.telemetry = telemetry
        if telemetry is not None:
            self._maint_trace = telemetry.named_trace(f"maint-{self.pid}")
            self._maint_seq = 0
            self._m_execs = telemetry.counter(
                "repro_executions", replica=self.pid
            )
            self._m_rollbacks = telemetry.counter(
                "repro_rollbacks", replica=self.pid
            )
            self._m_commits = telemetry.counter(
                "repro_commits_delivered", replica=self.pid
            )
        self.responder = responder
        #: Stable storage (None = the seed's purely volatile replica). The
        #: write-ahead log, commit order, event counter and committed-prefix
        #: checkpoints live here; :meth:`_on_node_recover` reloads them.
        self.store = store

        #: Optional hook called on every TOB commit (the cluster uses it to
        #: stabilise the request's OpFuture).
        self.commit_listener: Optional[Callable[[Req], None]] = None

        self.state = StateObject(
            datatype, checkpoint_interval=config.checkpoint_interval
        )
        self.curr_event_no = 0
        self.committed: List[Req] = []
        self.tentative: List[Req] = []
        self.executed: List[Req] = []
        #: Mirror of ``[r.dot for r in executed]`` so perceived-trace capture
        #: is a C-level tuple copy instead of an O(n) comprehension per
        #: response (a hot path: every weak response snapshots the trace).
        self._executed_dots: List[Dot] = []
        self.to_be_executed: List[Req] = []
        self.to_be_rolled_back: List[Req] = []
        #: dot -> (response, trace at computation); _NO_RESPONSE if not yet.
        self._awaiting: Dict[Dot, Any] = {}
        self._committed_dots: Set[Dot] = set()
        self._tentative_dots: Set[Dot] = set()

        # Broadcast endpoints are attached by the cluster (they need our
        # delivery callbacks, which exist only once we do).
        self.rb: Optional[ReliableBroadcast] = None
        self.tob: Optional[TotalOrderBroadcast] = None

        # Engine bookkeeping.
        self._step_scheduled = False
        self._step_timer = None
        self._retransmit_armed = False
        self._retransmit_timer = None
        self._stopped = False
        self._batched = config.reorder_engine == "batched"
        #: Simulated time at which the currently armed batch drains.
        self._batch_deadline: Optional[float] = None
        #: Backlog items already charged into the armed deadline.
        self._batch_charged = 0

        # Metrics.
        self.execution_count = 0
        self.rollback_count = 0
        self.crash_time: Optional[float] = None
        self.crash_times: List[float] = []
        self.downtime = 0.0

        # Durability bookkeeping. A non-empty pre-existing store means this
        # replica is being reconstructed over an earlier incarnation's disk
        # (e.g. a new cluster on the same JSON-lines directory): reload it,
        # exactly like an in-simulation recovery, so no acknowledged state
        # — nor the event counter guarding against dot reuse — is lost.
        self._wal_dots: Set[Dot] = set()
        self._persisted_checkpoint = 0
        self.restored_from_store = False
        if store is not None and len(store.log("replica.wal")):
            self.restored_from_store = True
            self._rebuild_from_store()

        node.register_crash_hooks(
            on_crash=self._on_node_crash, on_recover=self._on_node_recover
        )

    # ------------------------------------------------------------------
    # Client API (Algorithm 1, lines 9-15)
    # ------------------------------------------------------------------
    def invoke(self, op: Operation, strong: bool = False) -> Req:
        """Submit an operation; returns the request identifying it."""
        assert self.rb is not None and self.tob is not None, "endpoints not attached"
        self.curr_event_no += 1
        req = Req(
            timestamp=self.clock.now(),
            dot=(self.pid, self.curr_event_no),
            strong=strong,
            op=op,
        )
        if self.trace is not None:
            self.trace.record(
                self.node.now, self.pid, "bayou.invoke", dot=req.dot, op=str(op)
            )
        if self.telemetry:
            # The root span of this op's trace: every invocation — client
            # submit, migration barrier/install, realtime RPC — enters here.
            self.telemetry.op_span(
                self.node.now,
                self.pid,
                "op",
                req.dot,
                "root",
                None,
                op=str(op),
                strong=strong,
            )
        self._persist_invoke(req)
        self.rb.rb_cast(req.dot, req)
        self.tob.tob_cast(req.dot, req)
        self.adjust_tentative_order(req)
        self._awaiting[req.dot] = _NO_RESPONSE
        self._arm_retransmit()
        return req

    # ------------------------------------------------------------------
    # Ordering (lines 16-21)
    # ------------------------------------------------------------------
    def adjust_tentative_order(self, req: Req) -> None:
        """Insert ``req`` into the timestamp-sorted tentative list.

        Hot path: most requests arrive in timestamp order and land at the
        very tail of ``committed · tentative``. The executed prefix is then
        untouched, nothing rolls back, and the execution schedule simply
        grows by ``req`` — no O(n) re-diff needed. Out-of-order arrivals
        (drifting clocks, healed partitions) take the full
        :meth:`adjust_execution` path.
        """
        if self._insert_tentative(req):
            self._schedule_step()
        else:
            self.adjust_execution(self.committed + self.tentative)

    def _insert_tentative(self, req: Req) -> bool:
        """Insert ``req``; True if the tail fast path applied (no re-diff)."""
        self._tentative_dots.add(req.dot)
        if not self.tentative or self.tentative[-1] < req:
            self.tentative.append(req)
            if not (self.executed and self.executed[-1].dot == req.dot):
                # Not already executed (the modified protocol's footnote-8
                # path keeps its immediate tail execution): schedule it.
                self.to_be_executed.append(req)
            return True
        insort(self.tentative, req)
        return False

    # ------------------------------------------------------------------
    # Deliveries (lines 22-34)
    # ------------------------------------------------------------------
    def on_rb_deliver(self, key: Dot, req: Req) -> None:
        """RB-delivery handler (lines 22-26)."""
        if req.dot[0] == self.pid:
            return  # issued locally; tentative insertion happened at invoke
        if req.dot in self._committed_dots or req.dot in self._tentative_dots:
            return  # already known (e.g. TOB delivered it first)
        if self.trace is not None:
            self.trace.record(
                self.node.now, self.pid, "bayou.rb_deliver", dot=req.dot
            )
        self._persist_request(req)
        self.adjust_tentative_order(req)

    def on_rb_deliver_batch(self, items: Iterable[Tuple[Dot, Req]]) -> None:
        """Deliver a batch of RB messages, recomputing the schedule once.

        Used by the anti-entropy substrate, whose sync sessions ship whole
        log suffixes in one message: inserting every request and *then*
        diffing the order once turns the O(k·n) per-request delivery into
        O(n). The resulting tentative order, execution schedule and rollback
        queue are identical to delivering the requests one at a time.
        """
        fresh: List[Req] = []
        for _, req in items:
            if req.dot[0] == self.pid:
                continue
            if req.dot in self._committed_dots or req.dot in self._tentative_dots:
                continue
            if self.trace is not None:
                self.trace.record(
                    self.node.now, self.pid, "bayou.rb_deliver", dot=req.dot
                )
            fresh.append(req)
        if not fresh:
            return
        for req in fresh:
            self._persist_request(req)
        all_tail = True
        for req in fresh:
            # Stale fast-path appends to to_be_executed are harmless: the
            # full adjust below recomputes the schedule wholesale.
            all_tail = self._insert_tentative(req) and all_tail
        if all_tail:
            self._schedule_step()
        else:
            self.adjust_execution(self.committed + self.tentative)

    def on_tob_deliver(self, key: Dot, req: Req) -> None:
        """TOB-delivery handler (lines 27-34).

        Hot paths: committing the current *tentative head* moves it across
        the ``committed · tentative`` boundary without changing the
        concatenated sequence, so the execution schedule is already correct
        and the O(n) re-diff is skipped — a healed-partition commit flood
        performs a linear number of re-diffs (zero) instead of a quadratic
        one. (The ``pop(0)`` below still shifts the tentative list — a
        C-level memmove, ~40 ms across a 10⁴-commit flood — which profiling
        shows is dwarfed by the avoided per-commit diffs.) A commit of an
        unknown request while no tentative requests exist appends to the
        order tail and extends the schedule in place.
        """
        if req.dot in self._committed_dots:
            return  # defensive: engines deliver each key once
        self.committed.append(req)
        self._committed_dots.add(req.dot)
        self._persist_request(req)
        if self.store is not None:
            self.store.log("replica.commits").append(req.dot)
        if self.trace is not None:
            self.trace.record(
                self.node.now, self.pid, "bayou.tob_deliver", dot=req.dot
            )
        if req.dot in self._tentative_dots:
            self._tentative_dots.discard(req.dot)
            if self.tentative[0].dot == req.dot:
                self.tentative.pop(0)  # head commit: order sequence unchanged
            else:
                self.tentative = [r for r in self.tentative if r.dot != req.dot]
                self.adjust_execution(self.committed + self.tentative)
        elif not self.tentative:
            # Unknown request, empty tentative list: the order grew at its
            # tail; executed stays a prefix, the schedule just gains req.
            self.to_be_executed.append(req)
            self._schedule_step()
        else:
            self.adjust_execution(self.committed + self.tentative)
        if self.telemetry:
            self._m_commits.inc()
            if req.dot[0] == self.pid:
                # One commit span per op, recorded at its origin replica
                # (every replica delivers; fanning out per-replica spans
                # would grow each op's tree with the cluster size).
                self.telemetry.op_span(
                    self.node.now,
                    self.pid,
                    "commit",
                    req.dot,
                    "commit",
                    "tob.deliver",
                )
        if req.dot in self._awaiting and any(r.dot == req.dot for r in self.executed):
            stored = self._awaiting.pop(req.dot)
            assert stored is not _NO_RESPONSE, "executed request lacks a response"
            response, perceived = stored
            self._respond(req, response, perceived, stable=True)
        if self.commit_listener is not None:
            self.commit_listener(req)
        self._maybe_persist_checkpoint()

    def on_tob_deliver_batch(self, items: Iterable[Tuple[Dot, Req]]) -> None:
        """Batched TOB delivery: strictly per-entry, in list order.

        The batched Paxos engine hands a contiguous decided run over in one
        call; commit semantics (head-commit fast path, listeners, stability
        responses) must be *identical* to one delivery per entry — that is
        the bit-identical-history contract — so this simply loops. The
        entries already share one simulation event, which is where the
        batching win (one event, one timestamp, no per-op messages) lives.
        """
        for key, req in items:
            self.on_tob_deliver(key, req)

    # ------------------------------------------------------------------
    # Execution scheduling (lines 35-40)
    # ------------------------------------------------------------------
    def adjust_execution(self, new_order: List[Req]) -> None:
        """Diff ``executed`` against ``new_order`` (lines 35-40)."""
        in_order: List[Req] = []
        for executed_req, ordered_req in zip(self.executed, new_order):
            if executed_req.dot != ordered_req.dot:
                break
            in_order.append(executed_req)
        out_of_order = self.executed[len(in_order):]
        self.executed = in_order
        self._executed_dots = [r.dot for r in in_order]
        executed_dots = set(self._executed_dots)
        self.to_be_executed = [r for r in new_order if r.dot not in executed_dots]
        self.to_be_rolled_back = self.to_be_rolled_back + list(reversed(out_of_order))
        self._schedule_step()

    # ------------------------------------------------------------------
    # Internal events (lines 41-55), as simulation steps
    # ------------------------------------------------------------------
    def _schedule_step(self) -> None:
        if self._stopped:
            return
        if not self.to_be_rolled_back and not self.to_be_executed:
            self._maybe_persist_checkpoint()
            return
        if self._batched:
            self._arm_batch()
            return
        if self._step_scheduled:
            return
        self._step_scheduled = True
        self._step_timer = self.node.set_timer(
            self.config.exec_delay_for(self.pid),
            self._step,
            label=f"bayou.step r{self.pid}",
        )

    def _step(self) -> None:
        self._step_scheduled = False
        self._step_timer = None
        if self.to_be_rolled_back:
            head = self.to_be_rolled_back.pop(0)
            self.state.rollback(head)
            self.rollback_count += 1
            if self.telemetry:
                self._m_rollbacks.inc()
            if self.trace is not None:
                self.trace.record(
                    self.node.now, self.pid, "bayou.rollback", dot=head.dot
                )
        elif self.to_be_executed:
            head = self.to_be_executed.pop(0)
            self._execute_one(head)
        self._schedule_step()

    # -- batched engine -------------------------------------------------
    def _arm_batch(self) -> None:
        """Extend the batch deadline to cover the current backlog.

        Each backlog item is charged ``exec_delay`` exactly once: a fresh
        batch drains at ``now + backlog × exec_delay`` — the same simulated
        completion time the stepwise engine reaches with one event per
        request — and new items arriving while a batch is armed extend the
        *existing* deadline by their own cost rather than re-charging the
        in-flight work from ``now``. Only the deadline moves; the armed
        timer re-arms itself for the remainder when it fires early, so a
        flood of same-time deliveries costs O(1) extra events.
        """
        backlog = len(self.to_be_rolled_back) + len(self.to_be_executed)
        fresh = backlog - self._batch_charged
        if fresh > 0:
            base = (
                self.node.now
                if self._batch_deadline is None
                else max(self._batch_deadline, self.node.now)
            )
            self._batch_deadline = base + fresh * self.config.exec_delay_for(self.pid)
            self._batch_charged = backlog
        if self._batch_deadline is not None and not self._step_scheduled:
            self._step_scheduled = True
            self._step_timer = self.node.set_timer(
                self._batch_deadline - self.node.now,
                self._batch_step,
                label=f"bayou.batch r{self.pid}",
            )

    def _batch_step(self) -> None:
        self._step_scheduled = False
        self._step_timer = None
        if self._stopped or self._batch_deadline is None:
            return
        remaining = self._batch_deadline - self.node.now
        if remaining > 1e-9:
            # The deadline moved while we were queued: re-arm for the rest.
            self._step_scheduled = True
            self._step_timer = self.node.set_timer(
                remaining, self._batch_step, label=f"bayou.batch r{self.pid}"
            )
            return
        self._batch_deadline = None
        self._batch_charged = 0
        if self.to_be_rolled_back:
            count = len(self.to_be_rolled_back)
            keep = len(self.executed)
            self.state.revert_to(keep)
            self.rollback_count += count
            self.to_be_rolled_back = []
            if self.telemetry:
                self._m_rollbacks.inc(count)
                self._record_maintenance(
                    "reorder.rollback_batch", count=count, keep=keep
                )
            if self.trace is not None:
                self.trace.record(
                    self.node.now,
                    self.pid,
                    "bayou.rollback_batch",
                    count=count,
                    keep=keep,
                )
        queue = self.to_be_executed
        #: Drain only what this deadline paid for — a reentrant responder
        #: may tail-append new requests mid-drain; those wait for their own
        #: exec_delay via the _schedule_step() at the end.
        limit = len(queue)
        index = 0
        replayed = 0
        while index < limit:
            head = queue[index]
            index += 1
            if head.dot not in self._awaiting:
                # Slim replay: no response to compute, no responder to call.
                # Per-request trace records are replaced by one aggregate
                # record below — the point of the batched engine is that a
                # 10⁴-request replay is one drain, not 10⁴ bookkept events.
                self.state.execute(head)
                self.execution_count += 1
                self._append_executed(head)
                replayed += 1
                continue
            self._execute_one(head)
            if self.to_be_executed is not queue:
                # A reentrant responder triggered a full adjust_execution:
                # the schedule was recomputed wholesale (consumed requests
                # are in ``executed`` and excluded) and a new batch armed.
                return
            if self.to_be_rolled_back:
                # A reentrant adjust queued rollbacks mid-drain: stop here
                # and let the freshly armed batch drain the remainder.
                del queue[:index]
                self._schedule_step()
                return
        del queue[:index]
        if replayed:
            if self.telemetry:
                self._m_execs.inc(replayed)
                self._record_maintenance("reorder.execute_batch", count=replayed)
            if self.trace is not None:
                self.trace.record(
                    self.node.now, self.pid, "bayou.execute_batch", count=replayed
                )
        self._schedule_step()

    def _execute_one(self, head: Req) -> None:
        """Lines 46-55: execute one request and maybe respond."""
        awaiting = head.dot in self._awaiting
        # The perceived trace is only consumed when a response is computed;
        # materialising it for re-executions would cost O(trace) per replayed
        # request — O(n²) across a long divergent suffix.
        perceived = self._capture_perceived() if awaiting else ()
        response = self.state.execute(head)
        self.execution_count += 1
        if self.telemetry:
            self._m_execs.inc()
            if awaiting:
                # First tentative execution of a locally invoked op — the
                # moment its speculative response is computed. Re-executions
                # during replay are volume (counters), not op history.
                self.telemetry.op_span(
                    self.node.now,
                    self.pid,
                    "exec.tentative",
                    head.dot,
                    "exec.tentative",
                    "root",
                )
        if self.trace is not None:
            self.trace.record(
                self.node.now, self.pid, "bayou.execute", dot=head.dot
            )
        if awaiting:
            if not head.strong or head.dot in self._committed_dots:
                del self._awaiting[head.dot]
                self._respond(
                    head,
                    response,
                    perceived,
                    stable=head.dot in self._committed_dots,
                )
            else:
                self._awaiting[head.dot] = (response, perceived)
        self._append_executed(head)

    def _record_maintenance(self, name: str, **attrs: Any) -> None:
        """One aggregated span per batch drain, on this replica's
        maintenance trace (reorder storms are replica history, not any
        single op's story). Span ids are a deterministic per-replica
        counter, so seeded runs yield identical traces."""
        self._maint_seq += 1
        self.telemetry.tracer.record(
            self.node.now,
            self.pid,
            name,
            self._maint_trace,
            f"b{self._maint_seq}",
            None,
            **attrs,
        )

    def _append_executed(self, req: Req) -> None:
        self.executed.append(req)
        self._executed_dots.append(req.dot)

    def _respond(
        self, req: Req, response: Any, perceived: Tuple[Dot, ...], stable: bool
    ) -> None:
        if self.trace is not None:
            self.trace.record(
                self.node.now,
                self.pid,
                "bayou.respond",
                dot=req.dot,
                response=response,
                stable=stable,
            )
        if self.responder is not None:
            self.responder(req, response, perceived, stable)

    # ------------------------------------------------------------------
    # Introspection and liveness helpers
    # ------------------------------------------------------------------
    def current_trace_dots(self) -> Tuple[Dot, ...]:
        """The current trace α = executed · reverse(toBeRolledBack), as dots.

        This is ``exec(e)`` from the proof of Theorem 2 when captured at the
        instant a response is computed.
        """
        if not self.to_be_rolled_back:
            return tuple(self._executed_dots)
        return tuple(self._executed_dots) + tuple(
            r.dot for r in reversed(self.to_be_rolled_back)
        )

    def _capture_perceived(self) -> Optional[Tuple[Dot, ...]]:
        """The perceived trace for a response — ``None`` when capture is off.

        ``BayouConfig.record_perceived_traces=False`` trades the formal
        framework's per-response ``exec(e)`` bookkeeping (O(trace) time and
        memory per response, O(n²) per run) for scale; histories built from
        such runs fall back to the final arbitration order in perceived-
        order checks.
        """
        if not self.config.record_perceived_traces:
            return None
        return self.current_trace_dots()

    def current_order(self) -> List[Req]:
        """The replica's current ``committed · tentative`` order."""
        return self.committed + self.tentative

    @property
    def backlog(self) -> int:
        """Requests scheduled but not yet (re-)executed — Section 2.3's lag."""
        return len(self.to_be_executed) + len(self.to_be_rolled_back)

    def stop(self) -> None:
        """Stop scheduling internal steps and retransmissions (shutdown)."""
        self._stopped = True

    def _arm_retransmit(self) -> None:
        """Periodically re-TOB-cast tentative requests (TOB requirement 4).

        Only armed when ``config.retransmit_interval`` is set; the network
        already buffers messages across partitions, so retransmission is
        needed only in lossy/filtered scenarios.
        """
        interval = self.config.retransmit_interval
        if interval is None or self._retransmit_armed or self._stopped:
            return
        self._retransmit_armed = True

        def tick() -> None:
            self._retransmit_armed = False
            self._retransmit_timer = None
            if self._stopped or not self.tentative:
                return
            assert self.tob is not None
            for req in self.tentative:
                self.tob.tob_cast(req.dot, req)
            self._arm_retransmit()

        self._retransmit_timer = self.node.set_timer(
            interval, tick, label=f"bayou.retransmit r{self.pid}"
        )

    # ------------------------------------------------------------------
    # Durability and crash recovery
    # ------------------------------------------------------------------
    def _persist_invoke(self, req: Req) -> None:
        """Write-ahead the freshly minted local request and its event number.

        Persisting ``curr_event_no`` is what stops a recovered replica from
        reusing dots: a dot collision after recovery would silently merge
        two different requests at every peer.
        """
        if self.store is None:
            return
        self.store.put("replica.curr_event_no", self.curr_event_no)
        self._persist_request(req)

    def _persist_request(self, req: Req) -> None:
        """Append ``req`` to the durable write-ahead log (once per dot)."""
        if self.store is None or req.dot in self._wal_dots:
            return
        self._wal_dots.add(req.dot)
        self.store.log("replica.wal").append(req)

    def _maybe_persist_checkpoint(self) -> None:
        """Persist the freshest committed-prefix state checkpoint.

        Only prefixes of the *committed* order are durable checkpoints: the
        committed order is final, so the snapshot can never be invalidated
        by a rollback, and recovery can restore it without undo
        information. The in-memory checkpoints PR 2 introduced are keyed by
        live-trace position; a position at or below
        ``min(len(executed), len(committed))`` is exactly such a prefix.
        """
        interval = self.config.checkpoint_interval
        if self.store is None or interval is None:
            return
        stable = min(len(self.executed), len(self.committed))
        if stable - self._persisted_checkpoint < interval:
            return
        checkpoint = self.state._nearest_checkpoint(stable)
        if checkpoint is None or checkpoint[0] <= self._persisted_checkpoint:
            return
        position, db = checkpoint
        self._persisted_checkpoint = position
        self.store.put(
            "replica.checkpoint",
            {"position": position, "db": to_jsonable(dict(db))},
        )

    def _on_node_crash(self, mode: str) -> None:
        """The host node crashed; volatile state is now garbage."""
        self.crash_time = self.node.now
        self.crash_times.append(self.node.now)
        if self.trace is not None:
            self.trace.record(
                self.node.now, self.pid, "bayou.crash", mode=mode
            )

    def _on_node_recover(self) -> None:
        """Rebuild from stable storage (or resume with amnesia without it).

        Recovery = reload the nearest committed-prefix checkpoint, rebuild
        the ``committed · tentative`` order from the write-ahead and commit
        logs, and replay the suffix through the normal execution engine (so
        replay costs ``exec_delay`` per request, like any backlog). All
        volatile state — in-flight responses, perceived traces, schedule
        caches, timers — is discarded.
        """
        if self.crash_time is not None:
            self.downtime += self.node.now - self.crash_time
            self.crash_time = None
        if self.trace is not None:
            self.trace.record(self.node.now, self.pid, "bayou.recover")
        # Engine timers and flags are volatile with or without stable
        # storage: a step/retransmit timer suppressed during the downtime
        # (resurrect=False) would otherwise leave its armed flag stuck True
        # with no timer behind it, stalling the engine forever.
        for timer in (self._step_timer, self._retransmit_timer):
            if timer is not None:
                timer.cancel()
        self._step_timer = None
        self._retransmit_timer = None
        self._step_scheduled = False
        self._retransmit_armed = False
        self._batch_deadline = None
        self._batch_charged = 0
        if self.store is None:
            # No stable storage: the seed's amnesia-free flag flip. The
            # in-memory state survives (including in-flight _awaiting
            # responses), which models a transient pause rather than a
            # real crash; experiments wanting honest crash-recovery
            # semantics configure a durability backend.
            self._schedule_step()
            self._arm_retransmit()
            return

        # Volatile client state is gone: responses in flight at the crash
        # are lost (their history events stay pending), exactly like a
        # client whose server rebooted mid-request.
        self._awaiting = {}
        self._rebuild_from_store()

    def _rebuild_from_store(self) -> None:
        """Reload the durable surface and schedule the replay.

        Shared by in-simulation recovery and by construction over a
        pre-existing store (a cluster restarted over the same JSON-lines
        directory — an operating-system-level crash–recovery).
        """
        requests: Dict[Dot, Req] = {
            record.dot: record for record in self.store.log("replica.wal").records()
        }
        commit_order: List[Dot] = list(self.store.log("replica.commits").records())
        self.curr_event_no = self.store.get("replica.curr_event_no", 0)
        self._wal_dots = set(requests)

        self.committed = [requests[dot] for dot in commit_order]
        self._committed_dots = set(commit_order)
        tentative = sorted(
            (
                req
                for dot, req in requests.items()
                if dot not in self._committed_dots and self._joins_tentative(req)
            ),
        )
        self.tentative = tentative
        self._tentative_dots = {req.dot for req in tentative}
        #: Known-but-uncommitted requests outside the tentative list (the
        #: modified protocol's strong requests); reannounce() re-casts them.
        self._recovered_nontentative = [
            req
            for dot, req in sorted(requests.items())
            if dot not in self._committed_dots and not self._joins_tentative(req)
        ]

        # Restore the nearest committed-prefix checkpoint, then schedule a
        # replay of everything after it.
        order = self.committed + self.tentative
        self.state = StateObject(
            self.datatype, checkpoint_interval=self.config.checkpoint_interval
        )
        prefix_length = 0
        persisted = self.store.get("replica.checkpoint")
        if persisted is not None and persisted["position"] <= len(self.committed):
            prefix_length = persisted["position"]
            self.state.restore(
                order[:prefix_length], from_jsonable(persisted["db"])
            )
        self._persisted_checkpoint = prefix_length
        self.executed = list(order[:prefix_length])
        self._executed_dots = [req.dot for req in self.executed]
        self.to_be_rolled_back = []
        self.to_be_executed = list(order[prefix_length:])
        if self.trace is not None:
            self.trace.record(
                self.node.now,
                self.pid,
                "bayou.replay",
                checkpoint=prefix_length,
                backlog=len(self.to_be_executed),
            )
        self._schedule_step()

    def _joins_tentative(self, req: Req) -> bool:
        """Whether an uncommitted logged request belongs on the tentative
        list when rebuilding after recovery (Algorithm 2 keeps strong
        requests off it; Algorithm 1 speculates on everything)."""
        return True

    def reannounce(self) -> None:
        """Re-advertise uncommitted requests after a recovery.

        TOB submissions that were in flight when the replica crashed may
        never have reached the orderer; re-casting is safe (every engine
        deduplicates by dot) and required for liveness. RB/anti-entropy
        dissemination needs no re-cast: the durable dissemination logs
        reloaded by the endpoints cover it, and their own recovery syncs
        exchange whatever either side is missing.
        """
        if self.tob is None:
            return
        for req in self.tentative:
            self.tob.tob_cast(req.dot, req)
        for req in getattr(self, "_recovered_nontentative", ()):
            self.tob.tob_cast(req.dot, req)
        self._arm_retransmit()
