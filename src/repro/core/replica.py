"""The Bayou replica — Algorithm 1 of the paper.

Every structure and handler below maps line-for-line onto the pseudocode:

- ``invoke`` (lines 9–15): stamp the operation with the local clock and a
  fresh dot, RB-cast and TOB-cast it, simulate immediate local RB-delivery
  by inserting it into the tentative order, and register it as awaiting a
  response.
- ``adjust_tentative_order`` (lines 16–21): keep ``tentative`` sorted by
  ``(timestamp, dot)`` and recompute the execution schedule.
- ``on_rb_deliver`` (lines 22–26) and ``on_tob_deliver`` (lines 27–34).
- ``adjust_execution`` (lines 35–40): diff the executed prefix against the
  new order; everything after the longest common prefix is rolled back (in
  reverse) and re-executed.
- the two ``upon`` internal events (lines 41–55) run as *schedulable
  simulation steps* with a per-replica processing delay, which is what makes
  the paper's "local execution is for some reason delayed" (Figure 1) and
  the slow replica of Section 2.3 expressible.

Responses: weak operations return at their first execution (line 50); strong
operations return once executed *and* committed (line 49 or lines 32–33).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.broadcast.reliable import ReliableBroadcast
from repro.broadcast.total_order import TotalOrderBroadcast
from repro.core.config import BayouConfig
from repro.core.request import Dot, Req
from repro.core.state_object import StateObject
from repro.datatypes.base import DataType, Operation
from repro.net.node import RoutingNode
from repro.sim.clock import DriftingClock
from repro.sim.trace import TraceLog

#: responder(req, response, perceived_trace, stable)
Responder = Callable[[Req, Any, Tuple[Dot, ...], bool], None]

#: Sentinel for "awaiting, no response computed yet" (⊥ in the paper).
_NO_RESPONSE = object()


class BayouReplica:
    """One replica of the (original) Bayou protocol."""

    def __init__(
        self,
        node: RoutingNode,
        clock: DriftingClock,
        datatype: DataType,
        config: BayouConfig,
        *,
        trace: Optional[TraceLog] = None,
        responder: Optional[Responder] = None,
    ) -> None:
        self.node = node
        self.pid = node.pid
        self.clock = clock
        self.datatype = datatype
        self.config = config
        self.trace = trace
        self.responder = responder

        #: Optional hook called on every TOB commit (the cluster uses it to
        #: stabilise the request's OpFuture).
        self.commit_listener: Optional[Callable[[Req], None]] = None

        self.state = StateObject(datatype)
        self.curr_event_no = 0
        self.committed: List[Req] = []
        self.tentative: List[Req] = []
        self.executed: List[Req] = []
        self.to_be_executed: List[Req] = []
        self.to_be_rolled_back: List[Req] = []
        #: dot -> (response, trace at computation); _NO_RESPONSE if not yet.
        self._awaiting: Dict[Dot, Any] = {}
        self._committed_dots: Set[Dot] = set()
        self._tentative_dots: Set[Dot] = set()

        # Broadcast endpoints are attached by the cluster (they need our
        # delivery callbacks, which exist only once we do).
        self.rb: Optional[ReliableBroadcast] = None
        self.tob: Optional[TotalOrderBroadcast] = None

        # Engine bookkeeping.
        self._step_scheduled = False
        self._retransmit_armed = False
        self._stopped = False

        # Metrics.
        self.execution_count = 0
        self.rollback_count = 0

    # ------------------------------------------------------------------
    # Client API (Algorithm 1, lines 9-15)
    # ------------------------------------------------------------------
    def invoke(self, op: Operation, strong: bool = False) -> Req:
        """Submit an operation; returns the request identifying it."""
        assert self.rb is not None and self.tob is not None, "endpoints not attached"
        self.curr_event_no += 1
        req = Req(
            timestamp=self.clock.now(),
            dot=(self.pid, self.curr_event_no),
            strong=strong,
            op=op,
        )
        if self.trace is not None:
            self.trace.record(
                self.node.sim.now, self.pid, "bayou.invoke", dot=req.dot, op=str(op)
            )
        self.rb.rb_cast(req.dot, req)
        self.tob.tob_cast(req.dot, req)
        self.adjust_tentative_order(req)
        self._awaiting[req.dot] = _NO_RESPONSE
        self._arm_retransmit()
        return req

    # ------------------------------------------------------------------
    # Ordering (lines 16-21)
    # ------------------------------------------------------------------
    def adjust_tentative_order(self, req: Req) -> None:
        """Insert ``req`` into the timestamp-sorted tentative list."""
        previous = [r for r in self.tentative if r < req]
        subsequent = [r for r in self.tentative if req < r]
        self.tentative = previous + [req] + subsequent
        self._tentative_dots.add(req.dot)
        self.adjust_execution(self.committed + self.tentative)

    # ------------------------------------------------------------------
    # Deliveries (lines 22-34)
    # ------------------------------------------------------------------
    def on_rb_deliver(self, key: Dot, req: Req) -> None:
        """RB-delivery handler (lines 22-26)."""
        if req.dot[0] == self.pid:
            return  # issued locally; tentative insertion happened at invoke
        if req.dot in self._committed_dots or req.dot in self._tentative_dots:
            return  # already known (e.g. TOB delivered it first)
        if self.trace is not None:
            self.trace.record(
                self.node.sim.now, self.pid, "bayou.rb_deliver", dot=req.dot
            )
        self.adjust_tentative_order(req)

    def on_tob_deliver(self, key: Dot, req: Req) -> None:
        """TOB-delivery handler (lines 27-34)."""
        if req.dot in self._committed_dots:
            return  # defensive: engines deliver each key once
        self.committed.append(req)
        self._committed_dots.add(req.dot)
        if req.dot in self._tentative_dots:
            self.tentative = [r for r in self.tentative if r.dot != req.dot]
            self._tentative_dots.discard(req.dot)
        if self.trace is not None:
            self.trace.record(
                self.node.sim.now, self.pid, "bayou.tob_deliver", dot=req.dot
            )
        self.adjust_execution(self.committed + self.tentative)
        if req.dot in self._awaiting and any(r.dot == req.dot for r in self.executed):
            stored = self._awaiting.pop(req.dot)
            assert stored is not _NO_RESPONSE, "executed request lacks a response"
            response, perceived = stored
            self._respond(req, response, perceived, stable=True)
        if self.commit_listener is not None:
            self.commit_listener(req)

    # ------------------------------------------------------------------
    # Execution scheduling (lines 35-40)
    # ------------------------------------------------------------------
    def adjust_execution(self, new_order: List[Req]) -> None:
        """Diff ``executed`` against ``new_order`` (lines 35-40)."""
        in_order: List[Req] = []
        for executed_req, ordered_req in zip(self.executed, new_order):
            if executed_req.dot != ordered_req.dot:
                break
            in_order.append(executed_req)
        out_of_order = self.executed[len(in_order):]
        self.executed = in_order
        executed_dots = {r.dot for r in self.executed}
        self.to_be_executed = [r for r in new_order if r.dot not in executed_dots]
        self.to_be_rolled_back = self.to_be_rolled_back + list(reversed(out_of_order))
        self._schedule_step()

    # ------------------------------------------------------------------
    # Internal events (lines 41-55), as simulation steps
    # ------------------------------------------------------------------
    def _schedule_step(self) -> None:
        if self._step_scheduled or self._stopped:
            return
        if not self.to_be_rolled_back and not self.to_be_executed:
            return
        self._step_scheduled = True
        self.node.set_timer(
            self.config.exec_delay_for(self.pid),
            self._step,
            label=f"bayou.step r{self.pid}",
        )

    def _step(self) -> None:
        self._step_scheduled = False
        if self.to_be_rolled_back:
            head = self.to_be_rolled_back.pop(0)
            self.state.rollback(head)
            self.rollback_count += 1
            if self.trace is not None:
                self.trace.record(
                    self.node.sim.now, self.pid, "bayou.rollback", dot=head.dot
                )
        elif self.to_be_executed:
            head = self.to_be_executed.pop(0)
            self._execute_one(head)
        self._schedule_step()

    def _execute_one(self, head: Req) -> None:
        """Lines 46-55: execute one request and maybe respond."""
        perceived = self.current_trace_dots()
        response = self.state.execute(head)
        self.execution_count += 1
        if self.trace is not None:
            self.trace.record(
                self.node.sim.now, self.pid, "bayou.execute", dot=head.dot
            )
        if head.dot in self._awaiting:
            if not head.strong or head.dot in self._committed_dots:
                del self._awaiting[head.dot]
                self._respond(
                    head,
                    response,
                    perceived,
                    stable=head.dot in self._committed_dots,
                )
            else:
                self._awaiting[head.dot] = (response, perceived)
        self.executed.append(head)

    def _respond(
        self, req: Req, response: Any, perceived: Tuple[Dot, ...], stable: bool
    ) -> None:
        if self.trace is not None:
            self.trace.record(
                self.node.sim.now,
                self.pid,
                "bayou.respond",
                dot=req.dot,
                response=response,
                stable=stable,
            )
        if self.responder is not None:
            self.responder(req, response, perceived, stable)

    # ------------------------------------------------------------------
    # Introspection and liveness helpers
    # ------------------------------------------------------------------
    def current_trace_dots(self) -> Tuple[Dot, ...]:
        """The current trace α = executed · reverse(toBeRolledBack), as dots.

        This is ``exec(e)`` from the proof of Theorem 2 when captured at the
        instant a response is computed.
        """
        return tuple(
            [r.dot for r in self.executed]
            + [r.dot for r in reversed(self.to_be_rolled_back)]
        )

    def current_order(self) -> List[Req]:
        """The replica's current ``committed · tentative`` order."""
        return self.committed + self.tentative

    @property
    def backlog(self) -> int:
        """Requests scheduled but not yet (re-)executed — Section 2.3's lag."""
        return len(self.to_be_executed) + len(self.to_be_rolled_back)

    def stop(self) -> None:
        """Stop scheduling internal steps and retransmissions (shutdown)."""
        self._stopped = True

    def _arm_retransmit(self) -> None:
        """Periodically re-TOB-cast tentative requests (TOB requirement 4).

        Only armed when ``config.retransmit_interval`` is set; the network
        already buffers messages across partitions, so retransmission is
        needed only in lossy/filtered scenarios.
        """
        interval = self.config.retransmit_interval
        if interval is None or self._retransmit_armed or self._stopped:
            return
        self._retransmit_armed = True

        def tick() -> None:
            self._retransmit_armed = False
            if self._stopped or not self.tentative:
                return
            assert self.tob is not None
            for req in self.tentative:
                self.tob.tob_cast(req.dot, req)
            self._arm_retransmit()

        self.node.set_timer(interval, tick, label=f"bayou.retransmit r{self.pid}")
