"""Bayou requests.

A request (Algorithm 1, line 1) is ``Req(timestamp, dot, strongOp, op)``.
The *dot* ``(replica, event_no)`` uniquely identifies the request (the
function ``req`` in the paper is a bijection), and requests are totally
ordered lexicographically by ``(timestamp, dot)`` — the speculative
tentative order. The final order is established separately by TOB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.datatypes.base import Operation

#: Unique request identity: (replica id, per-replica event number).
Dot = Tuple[int, int]


@dataclass(frozen=True)
class Req:
    """A client request as disseminated between replicas."""

    timestamp: float
    dot: Dot
    strong: bool
    op: Operation

    @property
    def order_key(self) -> Tuple[float, Dot]:
        """The paper's ``(timestamp, dot)`` lexicographic sort key."""
        return (self.timestamp, self.dot)

    @property
    def origin(self) -> int:
        """The replica on which the request was invoked."""
        return self.dot[0]

    def __lt__(self, other: "Req") -> bool:
        return self.order_key < other.order_key

    def __le__(self, other: "Req") -> bool:
        return self.order_key <= other.order_key

    def __repr__(self) -> str:
        level = "strong" if self.strong else "weak"
        return f"Req({self.op!r} {level} ts={self.timestamp:.3f} dot={self.dot})"
