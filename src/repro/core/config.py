"""Configuration for Bayou clusters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class BayouConfig:
    """Tunable parameters of a simulated Bayou deployment.

    Attributes
    ----------
    n_replicas:
        Number of replicas.
    exec_delay:
        Simulated cost of one internal step (executing or rolling back one
        request). Per-replica overrides model the paper's "slow replica" Rs
        from Section 2.3.
    message_delay:
        Default one-way network latency (see also ``latency_jitter``).
    latency_jitter:
        If positive, latency is uniform in ``[message_delay,
        message_delay + latency_jitter]``.
    tob_engine:
        ``"sequencer"`` (default) or ``"paxos"``.
    dissemination:
        Weak-update dissemination: ``"rb"`` (the paper's Reliable
        Broadcast, default) or ``"anti_entropy"`` (the original Bayou's
        pairwise sessions, syncing every ``ae_sync_interval``).
    sequencer_pid:
        The fixed sequencer for the sequencer engine.
    paxos_max_batch / paxos_max_inflight / paxos_dual_2b / paxos_max_gap /
    paxos_catchup_batch / paxos_catchup_rate / paxos_catchup_burst:
        Knobs of the batched, pipelined Multi-Paxos engine (see
        ``broadcast/paxos.py``): entries per instance, outstanding 2A
        instances (``None`` = unbounded), dual 2B multicast, concurrent
        gap NOOPs (``None`` = follow ``paxos_max_inflight``) and the
        token-bucket limits of batched catch-up repair. Setting
        ``paxos_max_batch=1, paxos_max_inflight=None, paxos_dual_2b=False``
        reproduces the seed engine's one-instance-per-op message pattern.
    clock_offsets / clock_rates:
        Per-replica local-clock parameters (Section 2.3's slowed clock).
    optimize_tail_execution:
        Modified protocol only (footnote 8): skip the immediate rollback when
        the freshly executed weak request lands at the very tail of the
        current order anyway.
    reorder_engine:
        How rollback/replay work is scheduled. ``"stepwise"`` (default, the
        paper's literal reading) processes one rollback or execution per
        internal step, each costing ``exec_delay``. ``"batched"`` drains the
        whole backlog in a single simulation event scheduled after
        ``backlog * exec_delay`` — same total simulated processing time,
        O(1) scheduler events, and rollbacks performed via
        :meth:`StateObject.revert_to` (checkpoint-aware when
        ``checkpoint_interval`` is set). See ``docs/PERFORMANCE.md``.
    checkpoint_interval:
        When set, each replica's :class:`StateObject` keeps a full-state
        checkpoint every that-many executions, letting the batched engine
        restore long divergent suffixes from the nearest checkpoint at or
        before the divergence point instead of unwinding request-by-request.
        ``None`` (default) keeps the seed's pure undo-log behaviour.
    durability:
        Stable storage backing each replica (crash–recovery support):
        ``"none"`` (default — the seed's purely volatile replicas; a
        recovered replica resumes with whatever in-memory state survived,
        which models a transient pause, not a real crash), ``"memory"``
        (perfect in-process stable storage; write-ahead logs, commit order,
        version vectors, acceptor state and committed-prefix checkpoints
        all survive a crash) or ``"jsonl"`` (the same surface as JSON-lines
        files under ``durability_dir``, also readable by a later OS
        process).
    durability_dir:
        Directory for the ``"jsonl"`` backend (one subdirectory per
        replica). When unset, a temporary directory is created per cluster.
    record_perceived_traces:
        Capture ``exec(e)`` (the perceived state trace) for every response,
        as the formal framework requires. Costs O(trace) time and memory
        per response — O(n²) over a run — so scale benchmarks turn it off;
        perceived-order checks then fall back to the final arbitration
        order.
    enable_trace:
        Attach the diagnostic :class:`TraceLog` to every component.
        Disable for scale runs where per-event trace records dominate.
    enable_telemetry:
        Attach the unified telemetry plane (:class:`repro.obs.Telemetry`):
        causal per-op span traces plus the online metrics registry.
        Off by default — instrumentation sites then cost one false branch.
        Tracing never feeds back into protocol decisions, so a seeded run
        is bit-identical with telemetry on or off.
    trace_capacity:
        When set, bounds *both* the :class:`TraceLog` and the telemetry
        span ring to this many entries (oldest dropped, drops counted) —
        the streaming-first discipline long runs need.
    seed:
        Master seed for all random streams.
    """

    n_replicas: int = 3
    exec_delay: float = 0.01
    exec_delay_overrides: Dict[int, float] = field(default_factory=dict)
    message_delay: float = 1.0
    latency_jitter: float = 0.0
    tob_engine: str = "sequencer"
    sequencer_pid: int = 0
    dissemination: str = "rb"
    ae_sync_interval: float = 2.0
    heartbeat_interval: float = 5.0
    failure_timeout: float = 20.0
    paxos_retry_interval: float = 15.0
    paxos_max_batch: int = 32
    paxos_max_inflight: Optional[int] = 8
    paxos_dual_2b: bool = True
    paxos_max_gap: Optional[int] = None
    paxos_catchup_batch: int = 64
    paxos_catchup_rate: float = 32.0
    paxos_catchup_burst: float = 64.0
    retransmit_interval: Optional[float] = None
    clock_offsets: Dict[int, float] = field(default_factory=dict)
    clock_rates: Dict[int, float] = field(default_factory=dict)
    optimize_tail_execution: bool = False
    reorder_engine: str = "stepwise"
    checkpoint_interval: Optional[int] = None
    durability: str = "none"
    durability_dir: Optional[str] = None
    record_perceived_traces: bool = True
    enable_trace: bool = True
    enable_telemetry: bool = False
    trace_capacity: Optional[int] = None
    seed: int = 0

    def exec_delay_for(self, pid: int) -> float:
        """The per-step processing delay for replica ``pid``."""
        return self.exec_delay_overrides.get(pid, self.exec_delay)

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if self.n_replicas <= 0:
            raise ValueError("n_replicas must be positive")
        if self.tob_engine not in ("sequencer", "paxos"):
            raise ValueError(f"unknown tob_engine {self.tob_engine!r}")
        if self.dissemination not in ("rb", "anti_entropy"):
            raise ValueError(f"unknown dissemination {self.dissemination!r}")
        if not (0 <= self.sequencer_pid < self.n_replicas):
            raise ValueError("sequencer_pid out of range")
        if self.exec_delay < 0 or self.message_delay < 0 or self.latency_jitter < 0:
            raise ValueError("delays must be non-negative")
        for pid, delay in self.exec_delay_overrides.items():
            if delay < 0:
                raise ValueError(
                    f"exec_delay_overrides[{pid!r}] must be non-negative, "
                    f"got {delay!r}"
                )
        for name in (
            "ae_sync_interval",
            "heartbeat_interval",
            "failure_timeout",
            "paxos_retry_interval",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if self.paxos_max_batch < 1:
            raise ValueError(
                f"paxos_max_batch must be >= 1, got {self.paxos_max_batch!r}"
            )
        for name in ("paxos_max_inflight", "paxos_max_gap"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(
                    f"{name} must be >= 1 when set, got {value!r}"
                )
        if self.paxos_catchup_batch < 1:
            raise ValueError(
                "paxos_catchup_batch must be >= 1, "
                f"got {self.paxos_catchup_batch!r}"
            )
        for name in ("paxos_catchup_rate", "paxos_catchup_burst"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if self.retransmit_interval is not None and self.retransmit_interval <= 0:
            raise ValueError(
                "retransmit_interval must be positive when set, "
                f"got {self.retransmit_interval!r}"
            )
        if self.reorder_engine not in ("stepwise", "batched"):
            raise ValueError(f"unknown reorder_engine {self.reorder_engine!r}")
        if self.durability not in ("none", "memory", "jsonl"):
            raise ValueError(f"unknown durability backend {self.durability!r}")
        if self.durability_dir is not None and self.durability != "jsonl":
            raise ValueError(
                "durability_dir only applies to the 'jsonl' backend, "
                f"got durability={self.durability!r}"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError(
                "checkpoint_interval must be a positive integer when set, "
                f"got {self.checkpoint_interval!r}"
            )
        if self.trace_capacity is not None and self.trace_capacity < 1:
            raise ValueError(
                "trace_capacity must be a positive integer when set, "
                f"got {self.trace_capacity!r}"
            )
