"""Backwards-compatible home of the closed-loop client.

The client-side API now lives in :mod:`repro.core.session`:
:class:`~repro.core.session.Session` (closed-loop, futures-based) and
:class:`~repro.core.session.OpFuture`. ``ClientSession`` is an alias of
``Session`` kept so pre-futures code and imports continue to work.
"""

from repro.core.session import (  # noqa: F401
    ClientSession,
    OpFuture,
    ResponseCallback,
    Session,
)

__all__ = ["ClientSession", "OpFuture", "ResponseCallback", "Session"]
