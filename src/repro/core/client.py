"""Closed-loop client sessions.

The paper's histories are *well-formed*: within a session a new operation is
invoked only after the previous one returned. :class:`ClientSession` drives
a replica that way — it queues submitted operations and issues the next one
when the previous response arrives (plus an optional think time). Open-loop
workloads (Section 2.3's saturation experiment) bypass sessions and call
``cluster.invoke`` directly.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.core.request import Req
from repro.datatypes.base import Operation

#: callback(op, strong, response, latency)
ResponseCallback = Callable[[Operation, bool, Any, float], None]


class ClientSession:
    """A sequential client bound to one replica of a cluster."""

    def __init__(
        self,
        cluster: "BayouCluster",  # noqa: F821 - circular typing only
        pid: int,
        *,
        think_time: float = 0.0,
        on_response: Optional[ResponseCallback] = None,
    ) -> None:
        self.cluster = cluster
        self.pid = pid
        self.think_time = think_time
        self.on_response = on_response
        self._queue: Deque[Tuple[Operation, bool]] = deque()
        self._outstanding: Optional[Req] = None
        self._invoked_at = 0.0
        #: Response that arrived synchronously, mid-invoke (the modified
        #: protocol answers weak operations inside invoke()).
        self._early_response: Optional[Tuple[Req, Any]] = None
        self._in_invoke = False
        self._pump_scheduled = False
        #: Earliest time the next invocation may run (think-time pacing).
        self._ready_at = 0.0
        self.completed = 0
        self.latencies: list = []

    def submit(self, op: Operation, strong: bool = False) -> None:
        """Queue an operation; it runs when all earlier ones have returned."""
        self._queue.append((op, strong))
        self._maybe_schedule_pump()

    @property
    def idle(self) -> bool:
        """True when nothing is queued or outstanding."""
        return self._outstanding is None and not self._queue

    def _maybe_schedule_pump(self) -> None:
        """Arrange the next invocation as a simulation event.

        Invocations always run on their own simulation step (never inline in
        submit/response handling) and never before ``think_time`` has passed
        since the previous response.
        """
        if (
            self._outstanding is not None
            or self._in_invoke
            or self._pump_scheduled
            or not self._queue
        ):
            return
        delay = max(0.0, self._ready_at - self.cluster.sim.now)
        self._pump_scheduled = True
        self.cluster.sim.schedule(
            delay, self._pump, label=f"client {self.pid} next"
        )

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self._outstanding is not None or not self._queue:
            return
        op, strong = self._queue.popleft()
        self._invoked_at = self.cluster.sim.now
        self._early_response = None
        self._in_invoke = True
        try:
            request = self.cluster.invoke(
                self.pid, op, strong=strong, _session=self
            )
        finally:
            self._in_invoke = False
        if (
            self._early_response is not None
            and self._early_response[0].dot == request.dot
        ):
            early_req, early_value = self._early_response
            self._early_response = None
            self._complete(early_req, early_value)
        else:
            self._outstanding = request

    def _handle_response(self, req: Req, response: Any) -> None:
        """Called by the cluster when our outstanding request returns."""
        if self._in_invoke:
            # Synchronous response from inside invoke(); complete after the
            # invoke returns and we know the request identity.
            self._early_response = (req, response)
            return
        if self._outstanding is None or req.dot != self._outstanding.dot:
            return  # e.g. a stale stable notification; sessions track one op
        self._outstanding = None
        self._complete(req, response)

    def _complete(self, req: Req, response: Any) -> None:
        latency = self.cluster.sim.now - self._invoked_at
        self.latencies.append(latency)
        self.completed += 1
        self._ready_at = self.cluster.sim.now + self.think_time
        if self.on_response is not None:
            self.on_response(req.op, req.strong, response, latency)
        self._maybe_schedule_pump()
