"""Durable (stable-storage) state for crash–recovery replicas.

The paper's model lets replicas "crash silently and cease all
communication"; the original 1995 Bayou kept its write log in stable
storage precisely so a crashed replica could come back and catch up. This
module is that stable storage, shared by every component living on a
:class:`~repro.net.node.RoutingNode`:

- a :class:`DurableStore` is one replica's disk. It exposes *named
  append-only logs* (``store.log("replica.wal")``) and a small *key–value
  area* (``store.put`` / ``store.get``). Component state is namespaced by
  prefixing keys/log names with the component tag, so one store serves the
  replica, the dissemination endpoint and the TOB engine at once.
- :class:`InMemoryStore` models perfect stable storage: whatever was
  written before the crash is readable after recovery, with zero I/O cost.
  It survives :meth:`Process.crash` because crashing wipes only *volatile*
  state — the store object itself plays the role of the disk.
- :class:`JsonLinesStore` actually writes JSON-lines files under a
  directory (one subdirectory per replica), so a recovery can also be
  exercised across operating-system processes. It requires records to be
  encodable by :func:`to_jsonable` (requests, operations, tuples, dicts
  and JSON scalars are supported; arbitrary objects are rejected loudly).

Writes are *write-ahead* with respect to the simulation: a component
persists a record in the same atomic simulation step that mutates its
in-memory state, so there is no window in which a crash loses
acknowledged state. Recovery (:meth:`Process.recover`) is the inverse:
each component's ``on_recover`` hook discards volatile state and reloads
from its namespace.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.request import Req
from repro.datatypes.base import Operation

__all__ = [
    "DurabilityError",
    "DurableLog",
    "DurableStore",
    "InMemoryStore",
    "JsonLinesStore",
    "from_jsonable",
    "open_store",
    "register_codec",
    "to_jsonable",
]


class DurabilityError(RuntimeError):
    """Raised when a record cannot be persisted or decoded."""


# ----------------------------------------------------------------------
# Wire encoding (JSON-lines backend)
# ----------------------------------------------------------------------
#: tag -> (class, encode, decode): extension codecs registered by higher
#: layers (e.g. the shard layer's epoch-chain records). ``encode`` maps
#: an instance to a jsonable-friendly payload, ``decode`` inverts it.
_CODECS: Dict[str, Tuple[type, Callable[[Any], Any], Callable[[Any], Any]]] = {}


def register_codec(
    tag: str,
    cls: type,
    encode: Callable[[Any], Any],
    decode: Callable[[Any], Any],
) -> None:
    """Teach the durable codec a new tagged value type.

    ``core`` must not import the layers built on top of it, yet those
    layers have state that belongs in stable storage (the shard layer
    persists its placement-epoch chain so recovery rebuilds routing).
    Registering a codec gives such a type a reversible tagged encoding
    in every store backend without inverting the dependency. Tags share
    the ``~``-prefixed namespace of the built-in tags and must be unique.
    """
    if not tag.startswith("~"):
        raise DurabilityError(f"codec tags must start with '~', got {tag!r}")
    existing = _CODECS.get(tag)
    if existing is not None and existing[0] is not cls:
        raise DurabilityError(f"codec tag {tag!r} already registered")
    _CODECS[tag] = (cls, encode, decode)


def to_jsonable(value: Any) -> Any:
    """Encode ``value`` into a JSON-serialisable structure, reversibly.

    Tuples, non-string-keyed dicts, :class:`Req` and :class:`Operation`
    are tagged so :func:`from_jsonable` restores the exact Python value —
    recovered replica state must compare equal to what survivors hold
    (bit-identical convergence is the whole point).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Req):
        return {
            "~req": [
                value.timestamp,
                to_jsonable(value.dot),
                value.strong,
                to_jsonable(value.op),
            ]
        }
    if isinstance(value, Operation):
        return {"~op": [value.name, to_jsonable(value.args)]}
    for tag, (cls, encode, _decode) in _CODECS.items():
        if isinstance(value, cls):
            return {tag: to_jsonable(encode(value))}
    if isinstance(value, tuple):
        return {"~t": [to_jsonable(item) for item in value]}
    if isinstance(value, list):
        return [to_jsonable(item) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) and not key.startswith("~") for key in value):
            return {key: to_jsonable(item) for key, item in value.items()}
        return {
            "~d": [[to_jsonable(key), to_jsonable(item)] for key, item in value.items()]
        }
    raise DurabilityError(
        f"cannot persist {value!r} of type {type(value).__name__}; the "
        "JSON-lines backend handles scalars, tuples, lists, dicts, "
        "Operation and Req only"
    )


def from_jsonable(value: Any) -> Any:
    """Invert :func:`to_jsonable`."""
    if isinstance(value, list):
        return [from_jsonable(item) for item in value]
    if isinstance(value, dict):
        if "~req" in value:
            timestamp, dot, strong, op = value["~req"]
            return Req(
                timestamp=timestamp,
                dot=from_jsonable(dot),
                strong=strong,
                op=from_jsonable(op),
            )
        if "~op" in value:
            name, args = value["~op"]
            return Operation(name=name, args=from_jsonable(args))
        if "~t" in value:
            return tuple(from_jsonable(item) for item in value["~t"])
        for tag, (_cls, _encode, decode) in _CODECS.items():
            if tag in value:
                return decode(from_jsonable(value[tag]))
        if "~d" in value:
            return {
                from_jsonable(key): from_jsonable(item) for key, item in value["~d"]
            }
        return {key: from_jsonable(item) for key, item in value.items()}
    return value


# ----------------------------------------------------------------------
# Store interfaces
# ----------------------------------------------------------------------
class DurableLog:
    """One named append-only log inside a :class:`DurableStore`."""

    def append(self, record: Any) -> None:
        raise NotImplementedError

    def records(self) -> List[Any]:
        """All records, in append order (a fresh list each call)."""
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.records())


class DurableStore:
    """A replica's stable storage: named logs plus a key–value area."""

    def log(self, name: str) -> DurableLog:
        """The (created-on-first-use) append-only log called ``name``."""
        raise NotImplementedError

    def put(self, key: str, value: Any) -> None:
        """Durably set ``key`` (last write wins)."""
        raise NotImplementedError

    def get(self, key: str, default: Any = None) -> Any:
        raise NotImplementedError


class _MemoryLog(DurableLog):
    def __init__(self) -> None:
        self._records: List[Any] = []

    def append(self, record: Any) -> None:
        self._records.append(record)

    def records(self) -> List[Any]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


class InMemoryStore(DurableStore):
    """Perfect stable storage held in the host process.

    Models a disk that never loses a completed write; records are stored
    by reference (requests and operations are immutable, and snapshot
    values are copied by the writers before they reach the store).
    """

    def __init__(self) -> None:
        self._logs: Dict[str, _MemoryLog] = {}
        self._kv: Dict[str, Any] = {}

    def log(self, name: str) -> DurableLog:
        if name not in self._logs:
            self._logs[name] = _MemoryLog()
        return self._logs[name]

    def put(self, key: str, value: Any) -> None:
        self._kv[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._kv.get(key, default)


class _JsonLinesLog(DurableLog):
    """A log backed by one ``<name>.jsonl`` file, with an in-memory cache."""

    def __init__(self, path: str) -> None:
        self._path = path
        self._records: List[Any] = []
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        self._records.append(from_jsonable(json.loads(line)))

    def append(self, record: Any) -> None:
        encoded = json.dumps(to_jsonable(record))
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(encoded + "\n")
        self._records.append(record)

    def records(self) -> List[Any]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


class JsonLinesStore(DurableStore):
    """A directory of JSON-lines files: one per log, plus ``kv.jsonl``.

    The key–value area is itself an append-only file (last write per key
    wins on reload), so every durable write is a single atomic append.
    Opening a second store over the same directory models an
    operating-system restart: everything appended before the "crash" is
    visible again.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._logs: Dict[str, _JsonLinesLog] = {}
        self._kv: Dict[str, Any] = {}
        self._kv_path = os.path.join(directory, "kv.jsonl")
        if os.path.exists(self._kv_path):
            with open(self._kv_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        key, value = json.loads(line)
                        self._kv[key] = from_jsonable(value)

    def _safe_filename(self, name: str) -> str:
        return "".join(c if (c.isalnum() or c in "._-") else "_" for c in name)

    def log(self, name: str) -> DurableLog:
        if name not in self._logs:
            path = os.path.join(self.directory, self._safe_filename(name) + ".jsonl")
            self._logs[name] = _JsonLinesLog(path)
        return self._logs[name]

    def put(self, key: str, value: Any) -> None:
        encoded = json.dumps([key, to_jsonable(value)])
        with open(self._kv_path, "a", encoding="utf-8") as handle:
            handle.write(encoded + "\n")
        self._kv[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._kv.get(key, default)


def open_store(backend: str, *, directory: Optional[str] = None) -> Optional[DurableStore]:
    """Construct the store for one replica, or None for ``"none"``."""
    if backend == "none":
        return None
    if backend == "memory":
        return InMemoryStore()
    if backend == "jsonl":
        if directory is None:
            raise DurabilityError("the jsonl durability backend needs a directory")
        return JsonLinesStore(directory)
    raise DurabilityError(f"unknown durability backend {backend!r}")
