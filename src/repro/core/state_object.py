"""StateObject — Algorithm 3 of the paper.

Encapsulates the replica's copy of the replicated object as a register map
``db`` plus an ``undoLog``. Executing a request records, per register first
written by that request, the *previous* value; rolling the request back
restores those values. Requests must be rolled back in reverse execution
order (the replica's engine guarantees this; the object enforces it).

The *current trace* of the state is the sequence of executed-and-not-rolled-
back requests; the object's responses are always consistent with a
sequential execution of the trace (verified by property tests).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional

from repro.core.request import Req
from repro.datatypes.base import DataType, DbView


class RollbackError(RuntimeError):
    """Raised on out-of-order or unknown rollbacks."""


class _Absent:
    """Sentinel distinguishing 'register never written' from 'holds None'."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<absent>"


_ABSENT = _Absent()


class _UndoTrackingView(DbView):
    """A DbView that records the pre-image of every first write."""

    def __init__(self, db: Dict[Hashable, Any]) -> None:
        self._db = db
        self.undo_map: Dict[Hashable, Any] = {}

    def read(self, register_id: Hashable) -> Any:
        return self._db.get(register_id)

    def write(self, register_id: Hashable, value: Any) -> None:
        if register_id not in self.undo_map:
            self.undo_map[register_id] = self._db.get(register_id, _ABSENT)
        self._db[register_id] = value


class StateObject:
    """Executable, rollback-able state of a replicated data type."""

    def __init__(self, datatype: DataType) -> None:
        self.datatype = datatype
        self.db: Dict[Hashable, Any] = {}
        self._undo_log: Dict[Any, Dict[Hashable, Any]] = {}
        #: Execution-ordered request dots with live undo entries; rollbacks
        #: must happen in reverse of this order.
        self._undo_order: List[Any] = []

    def execute(self, req: Req) -> Any:
        """Execute ``req`` against the db, logging undo information."""
        view = _UndoTrackingView(self.db)
        response = self.datatype.execute(req.op, view)
        self._undo_log[req.dot] = view.undo_map
        self._undo_order.append(req.dot)
        return response

    def rollback(self, req: Req) -> None:
        """Undo ``req``; it must be the most recently executed live request."""
        if req.dot not in self._undo_log:
            raise RollbackError(f"no undo entry for {req!r}")
        if not self._undo_order or self._undo_order[-1] != req.dot:
            raise RollbackError(
                f"out-of-order rollback of {req!r}; "
                f"expected {self._undo_order[-1] if self._undo_order else None!r}"
            )
        undo_map = self._undo_log.pop(req.dot)
        self._undo_order.pop()
        for register_id, previous in undo_map.items():
            if previous is _ABSENT:
                self.db.pop(register_id, None)
            else:
                self.db[register_id] = previous

    def peek(self, register_id: Hashable) -> Optional[Any]:
        """Read a register directly (test/diagnostic helper)."""
        return self.db.get(register_id)

    def snapshot(self) -> Dict[Hashable, Any]:
        """A copy of the current register map (for convergence checks)."""
        return dict(self.db)

    @property
    def live_requests(self) -> List[Any]:
        """Dots of executed-and-not-rolled-back requests, in execution order."""
        return list(self._undo_order)
