"""StateObject — Algorithm 3 of the paper, plus checkpointed restoration.

Encapsulates the replica's copy of the replicated object as a register map
``db`` plus an ``undoLog``. Executing a request records, per register first
written by that request, the *previous* value; rolling the request back
restores those values. Requests must be rolled back in reverse execution
order (the replica's engine guarantees this; the object enforces it).

Invariants (the paper's rollback discussion, Section 2.2 / Algorithm 3):

- **Trace**: the *current trace* of the state is the sequence of
  executed-and-not-rolled-back requests, available as :attr:`live_requests`.
  Responses are always consistent with a sequential execution of the trace
  (verified by the property tests in ``tests/test_properties.py``).
- **Undo log**: for every live request the object holds the pre-image of
  each register the request wrote first. Applying those pre-images in
  reverse execution order (LIFO) restores any earlier prefix of the trace
  exactly — this is what makes Bayou's *tentative* executions revocable.
- **Checkpoints** (this repository's extension, enabled via
  ``checkpoint_interval``): every ``interval`` executions the object stores
  a full copy of ``db`` keyed by the trace position. :meth:`revert_to` then
  restores a prefix of the trace either by unwinding the undo log from the
  tail or by restoring the nearest checkpoint at or before the target
  position and *replaying* the few requests between the checkpoint and the
  target — whichever touches fewer requests. Both strategies produce
  bit-identical ``db`` contents because request execution is deterministic
  (required of every :class:`~repro.datatypes.base.DataType`).
- Register values are treated as **immutable**: data types write whole new
  values instead of mutating stored ones. The undo log and the checkpoints
  both rely on this (they keep shallow references, not deep copies).

A checkpoint at position ``p`` remains valid as long as the first ``p``
live requests are untouched; any rollback below ``p`` discards it.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.request import Req
from repro.datatypes.base import (
    EPOCH_BARRIER_OP,
    MIGRATION_INSTALL_OP,
    DataType,
    DbView,
)


class RollbackError(RuntimeError):
    """Raised on out-of-order or unknown rollbacks."""


class _Absent:
    """Sentinel distinguishing 'register never written' from 'holds None'."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<absent>"


_ABSENT = _Absent()


class _LostUndo:
    """Sentinel undo entry for requests restored from a recovery checkpoint.

    A recovered prefix has no undo information (the pre-images died with
    the crashed process); it also never needs any, because recovery only
    restores *committed* prefixes and the committed order is final. The
    sentinel makes an (impossible) rollback below the restored prefix fail
    loudly instead of silently corrupting the register map.
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<undo lost at recovery>"


_LOST_UNDO = _LostUndo()


class _UndoTrackingView(DbView):
    """A DbView that records the pre-image of every first write."""

    def __init__(self, db: Dict[Hashable, Any]) -> None:
        self._db = db
        self.undo_map: Dict[Hashable, Any] = {}

    def read(self, register_id: Hashable) -> Any:
        return self._db.get(register_id)

    def write(self, register_id: Hashable, value: Any) -> None:
        if register_id not in self.undo_map:
            self.undo_map[register_id] = self._db.get(register_id, _ABSENT)
        self._db[register_id] = value


def execute_with_protocol_ops(datatype: DataType, op: Any, view: DbView) -> Any:
    """Execute ``op`` against ``view``, handling shard-migration ops.

    The two migration protocol operations are datatype-agnostic and are
    interpreted here — *below* ``DataType.execute`` — so every data type
    supports live resharding without declaring anything:

    - the **epoch barrier** writes nothing; its committed position marks
      the point in the source shard's total order at which the moving
      keys' snapshot is frozen;
    - the **install** writes the migrated ``(key, register, value)``
      triples through the normal (undo-tracked) view, so rollbacks,
      checkpoints, the write-ahead log and recovery replay all treat the
      installed snapshot like any other request's writes. The key rides
      along so a *later* migration scanning this shard's log still sees
      it as a candidate — even when the install is the key's only write.
    """
    if op.name == EPOCH_BARRIER_OP:
        return op.args
    if op.name == MIGRATION_INSTALL_OP:
        for _key, register, value in op.args[0]:
            view.write(register, value)
        return len(op.args[0])
    return datatype.execute(op, view)


class StateObject:
    """Executable, rollback-able state of a replicated data type.

    Parameters
    ----------
    datatype:
        The replicated data type executed against the register map.
    checkpoint_interval:
        When set (a positive integer), keep a full ``db`` snapshot every
        ``interval`` executions (plus one at position 0, the empty state)
        so :meth:`revert_to` can restore long prefixes in O(checkpoint)
        instead of O(suffix) undo applications. ``None`` (the default)
        disables checkpointing; :meth:`revert_to` then always unwinds the
        undo log, which is exactly the seed per-request behaviour.
    """

    def __init__(
        self, datatype: DataType, *, checkpoint_interval: Optional[int] = None
    ) -> None:
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be positive, got {checkpoint_interval!r}"
            )
        self.datatype = datatype
        self.db: Dict[Hashable, Any] = {}
        self._undo_log: Dict[Any, Dict[Hashable, Any]] = {}
        #: Execution-ordered live requests (their undo entries are live);
        #: rollbacks must happen in reverse of this order.
        self._undo_order: List[Req] = []
        self.checkpoint_interval = checkpoint_interval
        #: position (= number of live requests captured) -> db copy,
        #: ascending by position. Position 0 (empty state) is always kept
        #: when checkpointing is on.
        self._checkpoints: List[Tuple[int, Dict[Hashable, Any]]] = []
        if checkpoint_interval is not None:
            self._checkpoints.append((0, {}))
        #: Metrics: how many checkpoint restores / undo unwinds revert_to ran.
        self.checkpoint_restores = 0
        self.undo_unwinds = 0

    # ------------------------------------------------------------------
    # Algorithm 3: execute / rollback
    # ------------------------------------------------------------------
    def execute(self, req: Req, *, checkpoint: bool = True) -> Any:
        """Execute ``req`` against the db, logging undo information.

        ``checkpoint=False`` suppresses checkpoint creation for this
        execution — used by the modified protocol's execute-then-rollback
        response path, where the execution is undone immediately and a
        snapshot would be wasted work.
        """
        view = _UndoTrackingView(self.db)
        response = execute_with_protocol_ops(self.datatype, req.op, view)
        self._undo_log[req.dot] = view.undo_map
        self._undo_order.append(req)
        if checkpoint:
            self._maybe_checkpoint()
        return response

    def rollback(self, req: Req) -> None:
        """Undo ``req``; it must be the most recently executed live request."""
        if req.dot not in self._undo_log:
            raise RollbackError(
                f"no undo entry for {req.dot!r} ({req!r}); "
                f"live log holds {len(self._undo_order)} request(s)"
            )
        if not self._undo_order or self._undo_order[-1].dot != req.dot:
            position = next(
                index
                for index, live in enumerate(self._undo_order)
                if live.dot == req.dot
            )
            raise RollbackError(
                f"out-of-order rollback of {req.dot!r} at log position "
                f"{position} of {len(self._undo_order)}; expected the tail "
                f"request {self._undo_order[-1].dot!r}"
            )
        if self._undo_log[req.dot] is _LOST_UNDO:
            raise RollbackError(
                f"rollback of {req.dot!r} below the recovery checkpoint: its "
                "undo information was lost in a crash (only committed "
                "prefixes are restored, and those never roll back)"
            )
        undo_map = self._undo_log.pop(req.dot)
        self._undo_order.pop()
        for register_id, previous in undo_map.items():
            if previous is _ABSENT:
                self.db.pop(register_id, None)
            else:
                self.db[register_id] = previous
        self._drop_stale_checkpoints()

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def restore(self, prefix: List[Req], db: Dict[Hashable, Any]) -> None:
        """Reset to a recovered state: ``db`` after executing ``prefix``.

        Used by :meth:`BayouReplica` recovery to seed the object from the
        durable checkpoint nearest the committed frontier, so only the log
        suffix needs replaying. The prefix must be *stable* (a committed
        prefix of the final order): its undo information is gone, so any
        later attempt to roll back below it raises :class:`RollbackError`.
        """
        self.db = dict(db)
        self._undo_log = {req.dot: _LOST_UNDO for req in prefix}
        self._undo_order = list(prefix)
        self._checkpoints = []
        if self.checkpoint_interval is not None:
            self._checkpoints.append((len(prefix), dict(db)))
        self.checkpoint_restores = 0
        self.undo_unwinds = 0

    # ------------------------------------------------------------------
    # Checkpointed restoration
    # ------------------------------------------------------------------
    def revert_to(self, n_keep: int) -> int:
        """Shrink the trace to its first ``n_keep`` requests; return the
        number of requests reverted.

        Picks the cheaper of two strategies:

        - **undo unwind**: apply the undo log from the tail, touching
          ``len(trace) - n_keep`` requests (the only strategy when
          checkpointing is off — identical to per-request rollbacks);
        - **checkpoint restore**: reset ``db`` to the nearest checkpoint at
          or before ``n_keep`` and re-execute the ``n_keep - position``
          requests between it and the target.

        Either way the resulting ``db``, undo log and trace are identical
        (deterministic execution), so callers may treat the reverted count
        as the number of logical rollbacks performed.
        """
        length = len(self._undo_order)
        if not 0 <= n_keep <= length:
            raise RollbackError(
                f"cannot revert to position {n_keep} of a {length}-entry log"
            )
        reverted = length - n_keep
        if reverted == 0:
            return 0
        checkpoint = self._nearest_checkpoint(n_keep)
        if checkpoint is not None and (n_keep - checkpoint[0]) < reverted:
            self._restore_checkpoint(checkpoint, n_keep)
            self.checkpoint_restores += 1
        else:
            for req in reversed(self._undo_order[n_keep:]):
                self.rollback(req)
            self.undo_unwinds += 1
        return reverted

    def _maybe_checkpoint(self) -> None:
        interval = self.checkpoint_interval
        if interval is None:
            return
        position = len(self._undo_order)
        if position % interval != 0:
            return
        if self._checkpoints and self._checkpoints[-1][0] == position:
            return  # already captured (e.g. during a checkpoint replay)
        self._checkpoints.append((position, dict(self.db)))

    def _nearest_checkpoint(
        self, n_keep: int
    ) -> Optional[Tuple[int, Dict[Hashable, Any]]]:
        """The highest-position checkpoint at or before ``n_keep``."""
        best = None
        for entry in self._checkpoints:
            if entry[0] > n_keep:
                break
            best = entry
        return best

    def _restore_checkpoint(
        self, checkpoint: Tuple[int, Dict[Hashable, Any]], n_keep: int
    ) -> None:
        position, snapshot = checkpoint
        replay = self._undo_order[position:n_keep]
        for req in self._undo_order[position:]:
            del self._undo_log[req.dot]
        del self._undo_order[position:]
        self._checkpoints = [c for c in self._checkpoints if c[0] <= position]
        self.db = dict(snapshot)
        for req in replay:
            self.execute(req)

    def _drop_stale_checkpoints(self) -> None:
        if not self._checkpoints:
            return
        length = len(self._undo_order)
        while self._checkpoints and self._checkpoints[-1][0] > length:
            self._checkpoints.pop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def peek(self, register_id: Hashable) -> Optional[Any]:
        """Read a register directly (test/diagnostic helper)."""
        return self.db.get(register_id)

    def snapshot(self) -> Dict[Hashable, Any]:
        """A copy of the current register map (for convergence checks)."""
        return dict(self.db)

    @property
    def live_requests(self) -> List[Any]:
        """Dots of executed-and-not-rolled-back requests, in execution order."""
        return [req.dot for req in self._undo_order]

    @property
    def checkpoint_positions(self) -> List[int]:
        """Trace positions currently holding a checkpoint (diagnostics)."""
        return [position for position, _ in self._checkpoints]
