"""Sessions and operation futures — the unified client-side pipeline.

Every invocation on a :class:`~repro.core.cluster.BayouCluster` is
represented by an :class:`OpFuture` that moves through three states:

``pending``
    invoked (or queued by a session), no response yet — the paper's ∇;
``responded``
    the replica computed and returned a response (tentative for weak
    operations under the original protocol);
``stable``
    the request's position in the final (TOB-committed) order is fixed.
    Strong operations respond stable, and their value is computed in the
    committed order. A *weak* operation keeps its tentative response —
    Bayou never re-answers a client — so a stable weak future's value may
    still disagree with the final order (the paper's temporary operation
    reordering; measure it with ``stable_vs_tentative_mismatches``).
    Weak operations that are never broadcast at all (the modified
    protocol's invisible reads) hold no position in the final order and
    stabilise at response time.

Both client styles share this pipeline:

- **closed-loop** (:class:`Session`): operations are queued and the next is
  issued only after the previous response arrived (plus an optional think
  time) — histories stay *well-formed* (Section 3.2) by construction;
- **open-loop** (``cluster.submit`` / ``Scenario.invoke``): saturation-style
  workloads fire at will and track each returned future individually.

Sessions expose the data type's declared operations as bound proxies::

    session = cluster.connect(0)
    future = session.append("a")            # weak by default
    confirm = session.strong.read()         # consensus-backed

``ClientSession`` is a backwards-compatible alias of :class:`Session`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, TYPE_CHECKING

from repro.core.request import Dot, Req
from repro.datatypes.base import Operation
from repro.errors import PendingResponseError, SessionProtocolError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cluster import BayouCluster


def resolve_operation(datatype: Any, name: str) -> Callable[..., Operation]:
    """Look up a declared operation constructor on ``datatype``.

    The single resolver behind every typed proxy (sessions, scenario
    clients): checks the descriptor registry and raises an AttributeError
    that names the type and lists its operations.
    """
    if name not in datatype.operations():
        raise AttributeError(
            f"{datatype.type_name} declares no operation {name!r} "
            f"(available: {sorted(datatype.operations())})"
        )
    return getattr(type(datatype), name)


def _pending_sentinel() -> Any:
    """The history module's ∇ sentinel, imported lazily.

    ``repro.framework`` transitively imports ``repro.analysis`` (for table
    rendering), which imports this module for its workload sessions; a
    module-level import here would close that cycle.
    """
    from repro.framework.history import PENDING

    return PENDING

#: Legacy callback signature: callback(op, strong, response, latency).
ResponseCallback = Callable[[Operation, bool, Any, float], None]

#: OpFuture lifecycle states.
FUTURE_PENDING = "pending"
FUTURE_RESPONDED = "responded"
FUTURE_STABLE = "stable"


class OpFuture:
    """The in-flight handle of one invoked (or queued) operation."""

    def __init__(self, op: Operation, *, strong: bool = False, pid: int = -1) -> None:
        self.op = op
        self.strong = strong
        #: Replica the operation targets.
        self.pid = pid
        self.state = FUTURE_PENDING
        #: The wire request; assigned when the replica accepts the invocation.
        self.request: Optional[Req] = None
        self.dot: Optional[Dot] = None
        #: When the client handed the op over (queued by a session, or the
        #: invoke time for open-loop submissions). Precedes ``invoke_time``
        #: by the session queueing delay.
        self.submit_time: Optional[float] = None
        self.invoke_time: Optional[float] = None
        self.response_time: Optional[float] = None
        self.stable_time: Optional[float] = None
        self._value: Any = _pending_sentinel()
        self._done_callbacks: List[Callable[["OpFuture"], None]] = []
        self._stable_callbacks: List[Callable[["OpFuture"], None]] = []

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def invoked(self) -> bool:
        """True once the operation was handed to a replica."""
        return self.invoke_time is not None

    @property
    def done(self) -> bool:
        """True once a response was computed (tentative or final)."""
        return self.state in (FUTURE_RESPONDED, FUTURE_STABLE)

    @property
    def pending(self) -> bool:
        """True while no response exists (the paper's ∇)."""
        return self.state == FUTURE_PENDING

    @property
    def stable(self) -> bool:
        """True once the request's position in the final order is fixed.

        Not a guarantee that a *weak* operation's (tentative) response
        matches the final order — see the module docstring.
        """
        return self.state == FUTURE_STABLE

    @property
    def value(self) -> Any:
        """The response; raises :class:`PendingResponseError` while pending."""
        if self.pending:
            raise PendingResponseError(
                f"{self.op!r} on replica {self.pid} has not responded yet"
            )
        return self._value

    @property
    def rval(self) -> Any:
        """The response, or the ∇ sentinel while pending (history style)."""
        return self._value

    @property
    def latency(self) -> Optional[float]:
        """Response time minus invoke time; None while pending."""
        if self.response_time is None or self.invoke_time is None:
            return None
        return self.response_time - self.invoke_time

    @property
    def commit_latency(self) -> Optional[float]:
        """Stable time minus invoke time; None until stable."""
        if self.stable_time is None or self.invoke_time is None:
            return None
        return self.stable_time - self.invoke_time

    @property
    def staleness(self) -> Optional[float]:
        """Stable time minus response time — how long a weak response
        floated tentatively; None until both exist."""
        if self.stable_time is None or self.response_time is None:
            return None
        return self.stable_time - self.response_time

    def timestamps(self) -> Dict[str, Optional[float]]:
        """The full lifecycle timeline as a dict (JSON-able)."""
        return {
            "submit": self.submit_time,
            "invoke": self.invoke_time,
            "response": self.response_time,
            "stable": self.stable_time,
        }

    def __repr__(self) -> str:
        level = "strong" if self.strong else "weak"
        tail = "∇" if self.pending else repr(self._value)
        return f"OpFuture({self.op!r} {level} R{self.pid} [{self.state}] -> {tail})"

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------
    def add_done_callback(self, callback: Callable[["OpFuture"], None]) -> None:
        """Run ``callback(future)`` when the response arrives (or now)."""
        if self.done:
            callback(self)
        else:
            self._done_callbacks.append(callback)

    def add_stable_callback(self, callback: Callable[["OpFuture"], None]) -> None:
        """Run ``callback(future)`` when the response stabilises (or now)."""
        if self.stable:
            callback(self)
        else:
            self._stable_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Transitions (driven by the cluster's response pipeline)
    # ------------------------------------------------------------------
    def _mark_invoked(self, dot: Dot, invoke_time: float) -> None:
        self.dot = dot
        self.invoke_time = invoke_time
        if self.submit_time is None:
            # Open-loop submissions skip the session queue entirely.
            self.submit_time = invoke_time

    def _resolve(self, req: Req, value: Any, at: float, *, stable: bool) -> None:
        """Record the response. Idempotent: later calls only upgrade state."""
        if self.done:
            if stable:
                self._mark_stable(at)
            return
        self.request = req
        self.dot = req.dot
        self._value = value
        self.response_time = at
        self.state = FUTURE_RESPONDED
        callbacks, self._done_callbacks = self._done_callbacks, []
        for callback in callbacks:
            callback(self)
        if stable:
            self._mark_stable(at)

    def _respond_value(self, value: Any, at: float) -> None:
        """Record a response that has no wire request behind it.

        Used by cross-shard futures (the parent of a staged plan holds no
        single request) and by route-forwarding adapters that mirror an
        inner future's outcome onto the one the client already holds.
        Idempotent like :meth:`_resolve`: once responded, later calls do
        nothing.
        """
        if self.done:
            return
        self._value = value
        self.response_time = at
        self.state = FUTURE_RESPONDED
        callbacks, self._done_callbacks = self._done_callbacks, []
        for callback in callbacks:
            callback(self)

    def _mark_stable(self, at: float) -> None:
        if self.stable or not self.done:
            return
        self.state = FUTURE_STABLE
        self.stable_time = at
        callbacks, self._stable_callbacks = self._stable_callbacks, []
        for callback in callbacks:
            callback(self)


class _StrongProxy:
    """``session.strong``: the same bound operations, issued strongly."""

    def __init__(self, session: "Session") -> None:
        self._session = session

    def __getattr__(self, name: str):
        return self._session._bound_operation(name, strong=True)


class Session:
    """A sequential client bound to one replica of a cluster.

    Operations are queued and issued one at a time (closed loop): a new
    invocation starts only after the previous response arrived plus an
    optional think time, which keeps the session's history well-formed.
    Each submission returns an :class:`OpFuture`.
    """

    def __init__(
        self,
        cluster: "BayouCluster",
        pid: int,
        *,
        think_time: float = 0.0,
        on_response: Optional[ResponseCallback] = None,
    ) -> None:
        self.cluster = cluster
        self.pid = pid
        self.think_time = think_time
        self.on_response = on_response
        self._queue: Deque[OpFuture] = deque()
        self._outstanding: Optional[OpFuture] = None
        self._pump_scheduled = False
        #: Earliest time the next invocation may run (think-time pacing).
        self._ready_at = 0.0
        self.completed = 0
        self.latencies: List[float] = []
        #: Every future this session ever issued, in submission order.
        self.futures: List[OpFuture] = []
        #: Futures refused because the replica crash-stopped (they are
        #: never invoked; their state stays pending forever).
        self.refused: List[OpFuture] = []
        self._resume_on_recovery_registered = False

    # ------------------------------------------------------------------
    # Typed operation proxies
    # ------------------------------------------------------------------
    @property
    def strong(self) -> _StrongProxy:
        """A view of this session that issues every operation strongly."""
        return _StrongProxy(self)

    def _bound_operation(self, name: str, *, strong: bool):
        constructor = resolve_operation(self.cluster.datatype, name)

        def bound(*args: Any, strong: bool = strong, **kwargs: Any) -> OpFuture:
            return self.submit(constructor(*args, **kwargs), strong=strong)

        bound.__name__ = name
        bound.__doc__ = constructor.__doc__
        return bound

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return self._bound_operation(name, strong=False)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, op: Operation, strong: bool = False) -> OpFuture:
        """Queue an operation; it runs when all earlier ones have returned."""
        future = OpFuture(op, strong=strong, pid=self.pid)
        future.submit_time = self.cluster.sim.now
        self._queue.append(future)
        self.futures.append(future)
        self._maybe_schedule_pump()
        return future

    def call(self, op: Operation, strong: bool = False) -> OpFuture:
        """Invoke ``op`` immediately; raises if an operation is in flight.

        The strict flavour of :meth:`submit`: instead of queueing behind
        earlier operations it demands the session be idle, enforcing the
        paper's well-formedness at the call site.
        """
        if not self.idle:
            raise SessionProtocolError(
                f"session on replica {self.pid} already has an operation "
                "outstanding (well-formed histories allow one at a time); "
                "use submit() to queue instead"
            )
        future = OpFuture(op, strong=strong, pid=self.pid)
        future.submit_time = self.cluster.sim.now
        self.futures.append(future)
        self._launch(future)
        return future

    @property
    def idle(self) -> bool:
        """True when nothing is queued or outstanding."""
        return self._outstanding is None and not self._queue

    # ------------------------------------------------------------------
    # The pump: one invocation per simulation step
    # ------------------------------------------------------------------
    def _maybe_schedule_pump(self) -> None:
        """Arrange the next invocation as a simulation event.

        Invocations always run on their own simulation step (never inline in
        submit/response handling) and never before ``think_time`` has passed
        since the previous response.
        """
        if (
            self._outstanding is not None
            or self._pump_scheduled
            or not self._queue
        ):
            return
        delay = max(0.0, self._ready_at - self.cluster.sim.now)
        self._pump_scheduled = True
        self.cluster.sim.schedule(
            delay, self._pump, label=f"client {self.pid} next"
        )

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self._outstanding is not None or not self._queue:
            return
        node = self.cluster.nodes[self.pid]
        if node.crashed:
            # The server is unreachable. A crash–recovery outage pauses the
            # session (it resumes when the replica comes back); a crash-stop
            # outage refuses everything still queued — the connection is
            # gone for good, and polling would keep the simulation alive
            # forever.
            if node.crash_mode == "recover":
                if not self._resume_on_recovery_registered:
                    self._resume_on_recovery_registered = True
                    node.register_crash_hooks(
                        on_recover=self._maybe_schedule_pump
                    )
                return
            self.refused.extend(self._queue)
            self._queue.clear()
            return
        self._launch(self._queue.popleft())

    def _launch(self, future: OpFuture) -> None:
        """Hand one future to the cluster's shared response pipeline.

        The modified protocol answers weak operations synchronously inside
        ``invoke()``; registering the completion callback *before* the
        submission keeps that path and the asynchronous one identical.
        """
        self._outstanding = future
        future.add_done_callback(self._on_done)
        self.cluster.submit(self.pid, future.op, strong=future.strong, future=future)

    def _on_done(self, future: OpFuture) -> None:
        if future is not self._outstanding:
            return  # defensive: sessions track exactly one in-flight op
        self._outstanding = None
        latency = future.latency
        self.latencies.append(latency)
        self.completed += 1
        self._ready_at = self.cluster.sim.now + self.think_time
        if self.on_response is not None:
            self.on_response(future.op, future.strong, future.rval, latency)
        self._maybe_schedule_pump()


#: Backwards-compatible name: the pre-futures closed-loop client.
ClientSession = Session
