"""Fixed-sequencer Total Order Broadcast.

The simplest TOB engine from the classic taxonomy (Défago, Schiper & Urbán):
all messages are forwarded to a designated sequencer which assigns global
sequence numbers and re-broadcasts; endpoints deliver in sequence-number
order through a hold-back queue.

Properties relative to the paper's contract:

- total order and FIFO-per-sender hold because links are FIFO and the
  sequencer orders proposals in arrival order;
- in stable runs every proposal reaches the sequencer (possibly after a
  partition heals) so agreement holds;
- the engine is *not* tolerant of a sequencer crash — that is precisely the
  fault-tolerance gap the paper points out about primary-based Bayou, and
  why :mod:`repro.broadcast.paxos` exists. A sequencer isolated by a
  partition stalls TOB for everyone else, which is how experiment E6 creates
  the paper's asynchronous runs.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.broadcast.total_order import DeliverFn, TotalOrderBroadcast
from repro.net.node import RoutingNode
from repro.sim.trace import TraceLog

_TAG = "seqtob"


class SequencerTOB(TotalOrderBroadcast):
    """Per-node endpoint of the fixed-sequencer TOB."""

    def __init__(
        self,
        node: RoutingNode,
        deliver: DeliverFn,
        *,
        sequencer_pid: int = 0,
        trace: Optional[TraceLog] = None,
        tag: str = _TAG,
    ) -> None:
        self.node = node
        self._deliver = deliver
        self.sequencer_pid = sequencer_pid
        self.trace = trace
        self.tag = tag
        # Sequencer-side state.
        self._next_seqno = 0
        self._ordered_keys: Set[Hashable] = set()
        # Endpoint-side state.
        self._holdback: Dict[int, Tuple[Hashable, Any]] = {}
        self._next_to_deliver = 0
        self._delivered: List[Hashable] = []
        node.register_component(tag, self._on_message)

    @property
    def delivered_sequence(self) -> List[Hashable]:
        return list(self._delivered)

    def tob_cast(self, key: Hashable, payload: Any) -> None:
        """Forward the message to the sequencer for global ordering."""
        self.node.send_component(
            self.sequencer_pid, self.tag, ("propose", key, payload)
        )
        if self.trace is not None:
            self.trace.record(self.node.sim.now, self.node.pid, "tob.cast", key=key)

    def stop(self) -> None:
        """No periodic activity to stop in this engine."""

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _on_message(self, sender: int, message: Tuple) -> None:
        kind = message[0]
        if kind == "propose":
            self._sequencer_handle_propose(message[1], message[2])
        elif kind == "order":
            self._endpoint_handle_order(message[1], message[2], message[3])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown sequencer-TOB message {kind!r}")

    def _sequencer_handle_propose(self, key: Hashable, payload: Any) -> None:
        if self.node.pid != self.sequencer_pid:
            # A stale proposal addressed to a former sequencer; ignore.
            return
        if key in self._ordered_keys:
            return
        self._ordered_keys.add(key)
        seqno = self._next_seqno
        self._next_seqno += 1
        self.node.broadcast_component(
            self.tag, ("order", seqno, key, payload), include_self=True
        )

    def _endpoint_handle_order(self, seqno: int, key: Hashable, payload: Any) -> None:
        if seqno < self._next_to_deliver:
            return
        self._holdback[seqno] = (key, payload)
        while self._next_to_deliver in self._holdback:
            ordered_key, ordered_payload = self._holdback.pop(self._next_to_deliver)
            self._next_to_deliver += 1
            self._delivered.append(ordered_key)
            if self.trace is not None:
                self.trace.record(
                    self.node.sim.now,
                    self.node.pid,
                    "tob.deliver",
                    key=ordered_key,
                    seqno=self._next_to_deliver - 1,
                )
            self._deliver(ordered_key, ordered_payload)
