"""Fixed-sequencer Total Order Broadcast.

The simplest TOB engine from the classic taxonomy (Défago, Schiper & Urbán):
all messages are forwarded to a designated sequencer which assigns global
sequence numbers and re-broadcasts; endpoints deliver in sequence-number
order through a hold-back queue.

Properties relative to the paper's contract:

- total order and FIFO-per-sender hold because links are FIFO and the
  sequencer orders proposals in arrival order;
- in stable runs every proposal reaches the sequencer (possibly after a
  partition heals) so agreement holds;
- the engine is *not* tolerant of a sequencer crash — that is precisely the
  fault-tolerance gap the paper points out about primary-based Bayou, and
  why :mod:`repro.broadcast.paxos` exists. A sequencer isolated by a
  partition stalls TOB for everyone else, which is how experiment E6 creates
  the paper's asynchronous runs.

Crash–recovery (this repository's extension): the sequencer keeps its
assignment log, and every endpoint its delivered prefix, in the node's
:class:`~repro.core.durability.DurableStore` when one is configured. A
recovered endpoint reloads its prefix and asks the sequencer to ``replay``
everything from its first missing sequence number — order broadcasts sent
during the downtime were silently lost, and nothing else re-sends them. A
recovered *sequencer* reloads its assignment log so it neither reuses
sequence numbers nor re-orders keys it already placed (proposals lost
during its downtime still need client-level retransmission,
``BayouConfig.retransmit_interval``, to get ordered at all).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.broadcast.total_order import DeliverFn, TotalOrderBroadcast
from repro.net.node import RoutingNode
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core → broadcast)
    from repro.core.durability import DurableStore

_TAG = "seqtob"


class SequencerTOB(TotalOrderBroadcast):
    """Per-node endpoint of the fixed-sequencer TOB."""

    def __init__(
        self,
        node: RoutingNode,
        deliver: DeliverFn,
        *,
        sequencer_pid: int = 0,
        trace: Optional[TraceLog] = None,
        store: Optional["DurableStore"] = None,
        tag: str = _TAG,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.node = node
        self._deliver = deliver
        self.sequencer_pid = sequencer_pid
        self.trace = trace
        self.telemetry = telemetry
        if telemetry is not None:
            self._m_casts = telemetry.counter("repro_tob_casts", engine="sequencer")
            self._m_delivers = telemetry.counter(
                "repro_tob_delivers", engine="sequencer"
            )
        self.store = store
        self.tag = tag
        # Sequencer-side state: the assignment log, ordered by seqno.
        self._order_log: List[Tuple[Hashable, Any]] = []
        self._ordered_keys: Set[Hashable] = set()
        # Endpoint-side state.
        self._holdback: Dict[int, Tuple[Hashable, Any]] = {}
        self._next_to_deliver = 0
        self._delivered: List[Hashable] = []
        node.register_component(tag, self._on_message)
        node.register_crash_hooks(on_recover=self._on_node_recover)
        if store is not None:
            self._reload()

    @property
    def delivered_sequence(self) -> List[Hashable]:
        return list(self._delivered)

    @property
    def _next_seqno(self) -> int:
        return len(self._order_log)

    def tob_cast(self, key: Hashable, payload: Any) -> None:
        """Forward the message to the sequencer for global ordering."""
        self.node.send_component(
            self.sequencer_pid, self.tag, ("propose", key, payload)
        )
        if self.telemetry:
            self._m_casts.inc()
            if isinstance(key, tuple):
                # Dot-keyed messages (every replica request, including
                # migration barriers — those are invoked as ops) join the
                # op's trace; any other key is counted only.
                self.telemetry.op_span(
                    self.node.now, self.node.pid, "tob.cast", key,
                    "tob.cast", "root",
                )
        if self.trace is not None:
            self.trace.record(self.node.now, self.node.pid, "tob.cast", key=key)

    def stop(self) -> None:
        """No periodic activity to stop in this engine."""

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _on_message(self, sender: int, message: Tuple) -> None:
        kind = message[0]
        if kind == "propose":
            self._sequencer_handle_propose(message[1], message[2])
        elif kind == "order":
            self._endpoint_handle_order(message[1], message[2], message[3])
        elif kind == "replay":
            self._sequencer_handle_replay(sender, message[1])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown sequencer-TOB message {kind!r}")

    def _sequencer_handle_propose(self, key: Hashable, payload: Any) -> None:
        if self.node.pid != self.sequencer_pid:
            # A stale proposal addressed to a former sequencer; ignore.
            return
        if key in self._ordered_keys:
            return
        self._ordered_keys.add(key)
        seqno = self._next_seqno
        self._order_log.append((key, payload))
        if self.store is not None:
            self.store.log(f"{self.tag}.order").append((key, payload))
        self.node.broadcast_component(
            self.tag, ("order", seqno, key, payload), include_self=True
        )

    def _sequencer_handle_replay(self, sender: int, from_seqno: int) -> None:
        """Re-send the assignment suffix a recovered endpoint is missing."""
        if self.node.pid != self.sequencer_pid:
            return
        for seqno in range(from_seqno, len(self._order_log)):
            key, payload = self._order_log[seqno]
            self.node.send_component(sender, self.tag, ("order", seqno, key, payload))

    def _endpoint_handle_order(self, seqno: int, key: Hashable, payload: Any) -> None:
        if seqno < self._next_to_deliver:
            return
        self._holdback[seqno] = (key, payload)
        while self._next_to_deliver in self._holdback:
            ordered_key, ordered_payload = self._holdback.pop(self._next_to_deliver)
            self._next_to_deliver += 1
            self._delivered.append(ordered_key)
            if self.store is not None:
                self.store.log(f"{self.tag}.delivered").append(ordered_key)
            if self.telemetry:
                self._m_delivers.inc()
                if (
                    isinstance(ordered_key, tuple)
                    and ordered_key[0] == self.node.pid
                ):
                    # One delivery span per op, at its origin endpoint —
                    # mirrors the origin-only commit span upstairs.
                    self.telemetry.op_span(
                        self.node.now,
                        self.node.pid,
                        "tob.deliver",
                        ordered_key,
                        "tob.deliver",
                        "tob.cast",
                        seqno=self._next_to_deliver - 1,
                    )
            if self.trace is not None:
                self.trace.record(
                    self.node.now,
                    self.node.pid,
                    "tob.deliver",
                    key=ordered_key,
                    seqno=self._next_to_deliver - 1,
                )
            self._deliver(ordered_key, ordered_payload)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _reload(self) -> None:
        self._order_log = list(self.store.log(f"{self.tag}.order").records())
        self._ordered_keys = {key for key, _ in self._order_log}
        self._delivered = list(self.store.log(f"{self.tag}.delivered").records())
        self._next_to_deliver = len(self._delivered)
        self._holdback = {}

    def _on_node_recover(self) -> None:
        """Reload the durable prefix and pull the missing order suffix.

        Without a store the in-memory state survived (the seed's transient
        pause); the replay request is still sent because ``order``
        broadcasts during the downtime are gone either way.
        """
        if self.store is not None:
            self._reload()
        else:
            self._holdback = {}
        if self.node.pid != self.sequencer_pid:
            self.node.send_component(
                self.sequencer_pid, self.tag, ("replay", self._next_to_deliver)
            )
        else:
            # The sequencer replays its own assignment log to itself: an
            # ``order`` self-broadcast in flight at crash time is lost like
            # any other message. Deferred one step so the other components'
            # recovery hooks finish before deliveries start.
            self.node.set_timer(0.0, self._self_replay, label="seqtob.selfreplay")

    def _self_replay(self) -> None:
        for seqno in range(self._next_to_deliver, len(self._order_log)):
            key, payload = self._order_log[seqno]
            self._endpoint_handle_order(seqno, key, payload)
