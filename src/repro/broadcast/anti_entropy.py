"""Pairwise anti-entropy dissemination — how the 1995 Bayou actually spread
writes.

The PODC'19 paper models dissemination as Reliable Broadcast; the original
Bayou system instead ran periodic *anti-entropy sessions*: a replica picks a
peer, the two compare version vectors, and the one that is ahead ships the
missing updates. This module implements that substrate as a drop-in
alternative to :class:`~repro.broadcast.reliable.ReliableBroadcast` (select
it with ``BayouConfig(dissemination="anti_entropy")``).

Semantics:

- each replica keeps a log of the requests it knows, indexed by origin
  replica and per-origin sequence number (the dot), summarised by a
  **version vector** ``vv[origin] = highest contiguous event number seen``;
- every ``sync_interval`` a replica sends ``("pull", vv)`` to the next peer
  in round-robin order; the peer responds with every logged request the
  vector is missing;
- delivery is in-order per origin (dots are contiguous per replica), so the
  vector summary is exact.

Compared to eager RB this trades latency for bandwidth: updates propagate
in O(diameter × interval) instead of one hop, but each update crosses each
link at most once per sync instead of n² relays. The
``tests/test_anti_entropy.py`` suite checks the same delivery contract RB
satisfies (everything reaches everyone, exactly once, partitions heal), and
the dissemination benchmark compares message counts.

Batching: a sync session already ships the whole missing log suffix in one
``push`` message. When the host provides a ``deliver_batch`` callback, the
endpoint also *delivers* that suffix as one batch — every newly contiguous
request handed over in a single call — so a Bayou replica can insert all of
them into its tentative order and recompute its execution schedule once
(:meth:`BayouReplica.on_rb_deliver_batch`) instead of once per request.
Without ``deliver_batch`` each request is delivered individually, exactly
the seed behaviour; both paths produce identical replica state.

Delivery-order invariant either way: per-origin by contiguous event number,
origins in the order the pushing peer enumerated them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.net.node import RoutingNode
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core → broadcast)
    from repro.core.durability import DurableStore

_TAG = "antientropy"

DeliverFn = Callable[[Hashable, Any], None]
DeliverBatchFn = Callable[[List[Tuple[Hashable, Any]]], None]


class AntiEntropy:
    """Per-node endpoint of the pull-based anti-entropy protocol.

    API-compatible with :class:`ReliableBroadcast`: ``rb_cast(key,
    payload)`` where ``key`` must be a dot ``(origin, event_no)`` with
    per-origin event numbers starting at 1 and contiguous — exactly what
    Bayou's ``invoke`` produces.
    """

    def __init__(
        self,
        node: RoutingNode,
        deliver: DeliverFn,
        *,
        deliver_batch: Optional[DeliverBatchFn] = None,
        sync_interval: float = 2.0,
        deliver_own: bool = False,
        trace: Optional[TraceLog] = None,
        store: Optional["DurableStore"] = None,
        tag: str = _TAG,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.node = node
        self._deliver = deliver
        self._deliver_batch = deliver_batch
        self._deliver_own = deliver_own
        self.sync_interval = sync_interval
        self.trace = trace
        #: Volume counters only: anti-entropy ships whole log suffixes, so
        #: per-op spans here would be noise — sync traffic is not op history.
        self.telemetry = telemetry
        if telemetry is not None:
            self._m_syncs = telemetry.counter("repro_ae_syncs")
            self._m_shipped = telemetry.counter("repro_ae_updates_shipped")
            self._m_delivered = telemetry.counter("repro_ae_updates_delivered")
        self.store = store
        self.tag = tag
        #: origin -> {event_no: payload} for everything we know.
        self._log: Dict[int, Dict[int, Any]] = {}
        #: origin -> highest contiguous event number delivered here.
        self._version_vector: Dict[int, int] = {}
        #: peer -> the version vector it most recently reported.
        self._peer_vector_cache: Dict[int, Dict[int, int]] = {}
        self._next_peer_offset = 1
        self._stopped = False
        self._timer_armed = False
        node.register_component(tag, self._on_message)
        node.register_crash_hooks(on_recover=self._on_node_recover)
        if store is not None and len(store.log(f"{tag}.log")):
            # A pre-existing durable log (e.g. a JSON-lines directory from a
            # previous operating-system process) seeds the endpoint.
            self._reload()

    # ------------------------------------------------------------------
    # RB-compatible API
    # ------------------------------------------------------------------
    @property
    def delivered_keys(self):
        """All dots delivered (or originated) at this node."""
        return {
            (origin, number)
            for origin, numbers in self._log.items()
            for number in numbers
        }

    def version_vector(self) -> Dict[int, int]:
        """A copy of the current version vector (diagnostics/tests)."""
        return dict(self._version_vector)

    def rb_cast(self, key: Tuple[int, int], payload: Any) -> None:
        """Record a locally originated request; it spreads via syncs."""
        origin, number = key
        if origin != self.node.pid:
            raise ValueError(
                f"rb_cast of foreign dot {key!r} on replica {self.node.pid}"
            )
        self._absorb(key, payload)  # own origin: logged, never re-delivered
        if self._deliver_own:
            self._deliver(key, payload)
        self._arm_timer()

    def stop(self) -> None:
        """Stop periodic syncing so the simulation can quiesce."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Log plumbing
    # ------------------------------------------------------------------
    def _absorb(self, key: Tuple[int, int], payload: Any) -> List[Tuple[Hashable, Any]]:
        """Log ``(key, payload)``; return newly contiguous foreign requests."""
        origin, number = key
        log = self._log.setdefault(origin, {})
        if number in log:
            return []
        log[number] = payload
        if self.store is not None:
            # Write-ahead, non-contiguous entries included: the version
            # vector is recomputed from the log at recovery, so everything
            # absorbed must be reloadable.
            self.store.log(f"{self.tag}.log").append((key, payload))
        # Advance the contiguous frontier, collecting in per-origin order.
        new_frontier = self._version_vector.get(origin, 0)
        ready: List[Tuple[Hashable, Any]] = []
        while new_frontier + 1 in log:
            new_frontier += 1
            if origin != self.node.pid:
                # Local requests were handled at rb_cast time.
                ready.append(((origin, new_frontier), log[new_frontier]))
        self._version_vector[origin] = new_frontier
        return ready

    def _dispatch(self, items: List[Tuple[Hashable, Any]]) -> None:
        """Deliver ``items`` — in one batch when the host supports it."""
        if not items:
            return
        if self.telemetry:
            self._m_delivered.inc(len(items))
        if self.trace is not None:
            for key, _ in items:
                self.trace.record(
                    self.node.now, self.node.pid, "ae.deliver", key=key
                )
        if self._deliver_batch is not None:
            self._deliver_batch(items)
        else:
            for key, payload in items:
                self._deliver(key, payload)

    # ------------------------------------------------------------------
    # Sync protocol
    # ------------------------------------------------------------------
    def _arm_timer(self) -> None:
        if self._timer_armed or self._stopped:
            return
        self._timer_armed = True
        # ``resurrect=True`` keeps the ``_timer_armed`` flag truthful across
        # a crash: a sync tick coming due while the node is down is
        # *suppressed* (not cancelled) and re-armed at recovery, so the
        # one-timer-in-flight invariant this flag encodes still holds — the
        # pre-fix behaviour left the flag stuck True with no timer behind
        # it, and a recovered replica never synced again.
        self.node.set_timer(
            self.sync_interval, self._sync, label="ae.sync", resurrect=True
        )

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _reload(self) -> None:
        """Rebuild the log and version vector from stable storage."""
        self._log = {}
        self._version_vector = {}
        for key, payload in self.store.log(f"{self.tag}.log").records():
            origin, number = key
            self._log.setdefault(origin, {})[number] = payload
        for origin, numbers in self._log.items():
            frontier = 0
            while frontier + 1 in numbers:
                frontier += 1
            self._version_vector[origin] = frontier

    def _on_node_recover(self) -> None:
        """Reboot: reload durable state, drop peer knowledge, resume pulls.

        Peer vector caches are *volatile* by design — while we were down,
        peers optimistically recorded pushes we never received, and we may
        have stale knowledge of them. Forgetting both sides' caches makes
        the recovered node pull every peer again (initial-discovery rule in
        :meth:`_has_unsynced_state`), which is exactly the re-announce +
        catch-up the write log in stable storage exists for.
        """
        if self.store is not None:
            self._reload()
        self._peer_vector_cache = {}
        # Re-announce: one immediate pull to *every* peer. This both
        # advertises our true (reloaded) vector — correcting any optimistic
        # cache a peer built from pushes we never received — and triggers
        # push-backs of everything we missed, even from peers the
        # round-robin loop would only reach several intervals from now.
        if not self._stopped:
            for peer in range(self.node.n_processes):
                if peer != self.node.pid:
                    self.node.send_component(
                        peer, self.tag, ("pull", dict(self._version_vector))
                    )
        if not self._timer_armed:
            # A suppressed sync tick resurrects itself; if the loop was idle
            # at crash time, restart it so downtime gaps keep being pulled.
            self._arm_timer()

    def _sync(self) -> None:
        self._timer_armed = False
        if self._stopped:
            return
        n = self.node.n_processes
        if n > 1:
            peer = (self.node.pid + self._next_peer_offset) % n
            self._next_peer_offset = self._next_peer_offset % (n - 1) + 1
            if peer != self.node.pid:
                if self.telemetry:
                    self._m_syncs.inc()
                self.node.send_component(
                    peer, self.tag, ("pull", dict(self._version_vector))
                )
        if self._has_unsynced_state():
            self._arm_timer()

    def _has_unsynced_state(self) -> bool:
        """Keep syncing while some peer may lack something we have.

        We track, per peer, the last version vector it reported (updated
        optimistically when we push to it). Quiescence: once every peer's
        known vector dominates ours, nothing re-arms and the simulation
        drains naturally. Peers never heard from keep us syncing as long as
        we hold any data (initial discovery).
        """
        ours = self._version_vector
        for peer, vector in self._peer_vector_cache.items():
            for origin, frontier in ours.items():
                if vector.get(origin, 0) < frontier:
                    return True
        n = self.node.n_processes
        known = set(self._peer_vector_cache)
        if any(ours.values()) and len(known) < n - 1:
            return True
        return False

    def _missing_updates(self, their_vector: Dict[int, int]):
        """Every delivered update the peer's vector lacks, plus the merged
        vector the peer will hold after absorbing them."""
        updates = []
        merged = dict(their_vector)
        for origin, frontier in self._version_vector.items():
            log = self._log.get(origin, {})
            start = their_vector.get(origin, 0)
            for number in range(start + 1, frontier + 1):
                updates.append(((origin, number), log[number]))
                merged[origin] = number
        return updates, merged

    def _offer(self, peer: int, their_vector: Dict[int, int], *, reply_always: bool) -> None:
        """Push whatever the peer is missing; remember what they will know."""
        updates, merged = self._missing_updates(their_vector)
        self._peer_vector_cache[peer] = merged
        if updates and self.telemetry:
            self._m_shipped.inc(len(updates))
        if updates or reply_always:
            self.node.send_component(
                peer, self.tag, ("push", (updates, dict(self._version_vector)))
            )

    def _on_message(self, sender: int, message: Tuple) -> None:
        kind, payload = message
        if kind == "pull":
            # Always reply (even with no updates) so the puller learns our
            # vector — knowledge must flow for the protocol to terminate.
            self._offer(sender, dict(payload), reply_always=True)
        elif kind == "push":
            updates, their_vector = payload
            ready: List[Tuple[Hashable, Any]] = []
            for key, update_payload in updates:
                ready.extend(self._absorb(tuple(key), update_payload))
            self._dispatch(ready)
            # If *we* now hold something the pusher lacks, push back once.
            self._offer(sender, dict(their_vector), reply_always=False)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown anti-entropy message {kind!r}")
        if self._has_unsynced_state():
            self._arm_timer()
