"""Eager reliable broadcast (RB).

Implements the classic eager algorithm from Guerraoui & Rodrigues: on first
delivery of a message, relay it to everyone else before delivering locally.
This gives *uniform* reliability under crash-stop faults: if any correct
process delivers a message, every correct process eventually delivers it —
even if the original sender crashed mid-broadcast. Combined with the
network's buffer-across-partitions behaviour, RB-cast messages reach every
replica in the sender's partition immediately and the rest after healing,
exactly the dissemination behaviour Section 2.1 of the paper describes.

Deduplication is by an application-supplied hashable ``key`` (Bayou uses the
request ``dot``), so a payload re-broadcast by relays is delivered once.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional, Set, Tuple

from repro.net.node import RoutingNode
from repro.sim.trace import TraceLog

DeliverFn = Callable[[Hashable, Any], None]

_TAG = "rb"


class ReliableBroadcast:
    """Per-node reliable broadcast endpoint.

    Parameters
    ----------
    node:
        The hosting :class:`RoutingNode`.
    deliver:
        Callback invoked exactly once per message key, as ``deliver(key,
        payload)``. Local delivery of a node's own broadcast is *not*
        performed here; Bayou simulates immediate local RB-delivery inside
        ``invoke`` (Algorithm 1, line 14), so the endpoint marks the key as
        delivered without invoking the callback for the sender.
    deliver_own:
        If True (default False), the endpoint also invokes ``deliver`` for
        locally broadcast messages (after the relay), which generic users of
        RB outside Bayou want.
    """

    def __init__(
        self,
        node: RoutingNode,
        deliver: DeliverFn,
        *,
        deliver_own: bool = False,
        trace: Optional[TraceLog] = None,
        tag: str = _TAG,
    ) -> None:
        self.node = node
        self._deliver = deliver
        self._deliver_own = deliver_own
        self._delivered: Set[Hashable] = set()
        self.trace = trace
        self.tag = tag
        node.register_component(tag, self._on_message)

    @property
    def delivered_keys(self) -> Set[Hashable]:
        """The set of message keys delivered (or locally originated) so far."""
        return set(self._delivered)

    def rb_cast(self, key: Hashable, payload: Any) -> None:
        """Broadcast ``payload`` reliably under ``key``."""
        if key in self._delivered:
            return
        self._delivered.add(key)
        self.node.broadcast_component(self.tag, (key, payload))
        if self.trace is not None:
            self.trace.record(self.node.sim.now, self.node.pid, "rb.cast", key=key)
        if self._deliver_own:
            self._deliver(key, payload)

    def _on_message(self, sender: int, message: Tuple[Hashable, Any]) -> None:
        key, payload = message
        if key in self._delivered:
            return
        self._delivered.add(key)
        # Relay before delivering: uniform reliability despite sender crashes.
        self.node.broadcast_component(self.tag, (key, payload))
        if self.trace is not None:
            self.trace.record(
                self.node.sim.now, self.node.pid, "rb.deliver", key=key, sender=sender
            )
        self._deliver(key, payload)
