"""Eager reliable broadcast (RB).

Implements the classic eager algorithm from Guerraoui & Rodrigues: on first
delivery of a message, relay it to everyone else before delivering locally.
This gives *uniform* reliability under crash-stop faults: if any correct
process delivers a message, every correct process eventually delivers it —
even if the original sender crashed mid-broadcast. Combined with the
network's buffer-across-partitions behaviour, RB-cast messages reach every
replica in the sender's partition immediately and the rest after healing,
exactly the dissemination behaviour Section 2.1 of the paper describes.

Deduplication is by an application-supplied hashable ``key`` (Bayou uses the
request ``dot``), so a payload re-broadcast by relays is delivered once.

Crash–recovery (this repository's extension): eager RB alone cannot bring a
*recovered* process up to date — relays sent during its downtime were
silently lost, and nothing re-sends them. With a
:class:`~repro.core.durability.DurableStore`, the endpoint keeps a durable
log of every ``(key, payload)`` it cast or delivered; on recovery it
reloads the log and runs one **recovery sync**: it broadcasts its key set,
peers push back everything it is missing (``repair``) and ask for anything
it holds that they lack (``want``). Repairs go through the normal
first-delivery path (relay included), so uniformity is preserved.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro.net.node import RoutingNode
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core → broadcast)
    from repro.core.durability import DurableStore

DeliverFn = Callable[[Hashable, Any], None]

_TAG = "rb"


class ReliableBroadcast:
    """Per-node reliable broadcast endpoint.

    Parameters
    ----------
    node:
        The hosting :class:`RoutingNode`.
    deliver:
        Callback invoked exactly once per message key, as ``deliver(key,
        payload)``. Local delivery of a node's own broadcast is *not*
        performed here; Bayou simulates immediate local RB-delivery inside
        ``invoke`` (Algorithm 1, line 14), so the endpoint marks the key as
        delivered without invoking the callback for the sender.
    deliver_own:
        If True (default False), the endpoint also invokes ``deliver`` for
        locally broadcast messages (after the relay), which generic users of
        RB outside Bayou want.
    store:
        Optional stable storage; enables the recovery sync described in the
        module docstring.
    """

    def __init__(
        self,
        node: RoutingNode,
        deliver: DeliverFn,
        *,
        deliver_own: bool = False,
        trace: Optional[TraceLog] = None,
        store: Optional["DurableStore"] = None,
        tag: str = _TAG,
    ) -> None:
        self.node = node
        self._deliver = deliver
        self._deliver_own = deliver_own
        #: key -> payload for everything cast or delivered here.
        self._log: Dict[Hashable, Any] = {}
        self.trace = trace
        self.store = store
        self.tag = tag
        node.register_component(tag, self._on_message)
        node.register_crash_hooks(on_recover=self._on_node_recover)
        if store is not None:
            self._reload()

    @property
    def delivered_keys(self) -> Set[Hashable]:
        """The set of message keys delivered (or locally originated) so far."""
        return set(self._log)

    def rb_cast(self, key: Hashable, payload: Any) -> None:
        """Broadcast ``payload`` reliably under ``key``."""
        if key in self._log:
            return
        self._absorb(key, payload)
        self.node.broadcast_component(self.tag, ("cast", key, payload))
        if self.trace is not None:
            self.trace.record(self.node.now, self.node.pid, "rb.cast", key=key)
        if self._deliver_own:
            self._deliver(key, payload)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _on_message(self, sender: int, message: Tuple) -> None:
        kind = message[0]
        if kind == "cast":
            self._handle_cast(sender, message[1], message[2])
        elif kind == "sync":
            self._handle_sync(sender, message[1])
        elif kind == "want":
            self._handle_want(sender, message[1])
        elif kind == "repair":
            for key, payload in message[1]:
                self._handle_cast(sender, key, payload)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown RB message {kind!r}")

    def _handle_cast(self, sender: int, key: Hashable, payload: Any) -> None:
        if key in self._log:
            return
        self._absorb(key, payload)
        # Relay before delivering: uniform reliability despite sender crashes.
        self.node.broadcast_component(self.tag, ("cast", key, payload))
        if self.trace is not None:
            self.trace.record(
                self.node.now, self.node.pid, "rb.deliver", key=key, sender=sender
            )
        self._deliver(key, payload)

    def _absorb(self, key: Hashable, payload: Any) -> None:
        self._log[key] = payload
        if self.store is not None:
            self.store.log(f"{self.tag}.log").append((key, payload))

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _reload(self) -> None:
        self._log = {
            key: payload
            for key, payload in self.store.log(f"{self.tag}.log").records()
        }

    def _on_node_recover(self) -> None:
        """Reload the durable log and re-announce for catch-up.

        Without a store this is the seed behaviour (in-memory state kept);
        the sync round still runs, because messages relayed during the
        downtime are lost either way.
        """
        if self.store is not None:
            self._reload()
        self.announce_recovery()

    def announce_recovery(self) -> None:
        """Broadcast our key set so peers repair us (and we repair them)."""
        self.node.broadcast_component(self.tag, ("sync", sorted(self._log, key=repr)))
        if self.trace is not None:
            self.trace.record(
                self.node.now, self.node.pid, "rb.sync", known=len(self._log)
            )

    def _handle_sync(self, sender: int, keys: List[Hashable]) -> None:
        known = set(keys)
        missing_there = [
            (key, payload) for key, payload in self._log.items() if key not in known
        ]
        if missing_there:
            self.node.send_component(sender, self.tag, ("repair", missing_there))
        missing_here = [key for key in keys if key not in self._log]
        if missing_here:
            self.node.send_component(sender, self.tag, ("want", missing_here))

    def _handle_want(self, sender: int, keys: List[Hashable]) -> None:
        available = [(key, self._log[key]) for key in keys if key in self._log]
        if available:
            self.node.send_component(sender, self.tag, ("repair", available))
