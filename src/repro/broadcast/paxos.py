"""Batched, pipelined Multi-Paxos Total Order Broadcast.

A quorum-based TOB engine, as footnoted in Section 2.3 of the paper: "TOB
... can be implemented in a non-blocking fashion through e.g., quorum-based
protocols such as Paxos". Every node plays all three roles:

- **proposer**: the node currently trusted as leader by Ω drains pending
  client payloads into consecutive consensus instances;
- **acceptor**: classic promised/accepted single-decree state per instance;
- **learner**: decided instances are delivered in instance order.

The seed engine paid one full consensus round (and ~3n messages) per
operation. This engine amortizes and overlaps that cost while keeping the
delivered history bit-identical for any seeded schedule:

- **Batching** — the leader drains its submission queue into a single
  instance whose value is a :class:`Batch` of ``(key, payload)`` entries
  (up to ``max_batch``), delivered in order within the batch. A zero-delay
  *flush* timer coalesces same-instant submissions, so light-load latency
  is unchanged (a lone submission still proposes at its arrival time).
- **Proactive prepares** — a stable leader holds its phase-1 quorum over an
  open-ended instance window (the seed did this too), and additionally
  asserts leadership the moment Ω trusts it — at startup via a zero-delay
  kick and on demand via :meth:`prewarm` — instead of waiting a full drive
  interval. Steady-state values skip 1A/1B and go straight to 2A;
  re-prepare happens only on leader change or NACK.
- **Slim 1B payloads** — acceptors prune per-instance state below their
  delivery frontier and report that frontier as a *decided watermark* in
  1B, so a new leader receives only live accepted suffixes instead of full
  instance maps. The leader never NOOP-fills below a reported watermark
  (those instances are decided elsewhere; it fetches them via catch-up),
  and acceptors answer 2A for an instance they know decided with a repair
  instead of a vote.
- **Pipelining with dual 2B multicast** — up to ``max_inflight`` instances
  may have outstanding 2A rounds; acceptors multicast 2B to *everyone*
  (learners and proposer alike), each node counts votes and learns
  decisions locally one message delay earlier, and the separate decide
  broadcast disappears. ``dual_2b=False`` restores the seed's unicast-2B +
  decide-broadcast pattern.
- **Rate-limited batched catch-up** — a lagging node asks one rotating peer
  for its missing decided suffix; responders coalesce the suffix into a
  single repair message but token-bucket the instances they ship
  (``catchup_rate``/``catchup_burst``, at most ``catchup_batch`` per
  response), so a recovering replica cannot storm the cluster. Gap NOOPs
  proposed by a new leader are likewise capped (``max_gap`` concurrent).

``max_batch=1, max_inflight=None, dual_2b=False`` reproduces the seed
engine's message pattern exactly; the delivered sequence is identical in
either mode because both drain the same FIFO submission queue at the same
leader.

Liveness requires a majority of responsive acceptors and an eventually
accurate Ω — i.e. the paper's *stable runs*. Under a lasting partition a
minority component keeps retrying without ever deciding: the paper's
*asynchronous runs*, in which strong operations block.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    Hashable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.broadcast.failure_detector import OmegaFailureDetector
from repro.broadcast.total_order import (
    DeliverBatchFn,
    DeliverFn,
    TotalOrderBroadcast,
)
from repro.core.durability import register_codec
from repro.net.node import RoutingNode
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core → broadcast)
    from repro.core.durability import DurableStore

_TAG = "paxos"

Ballot = Tuple[int, int]

#: Sentinel proposed into gap instances; never delivered to the application.
NOOP = ("__paxos_noop__", None)


@dataclass(frozen=True)
class Batch:
    """One instance's value: an ordered run of ``(key, payload)`` entries.

    Deciding a batch decides every entry, in list order — the unit of
    consensus amortization. Old durable logs hold bare ``(key, payload)``
    pairs; :func:`as_value` wraps them into singleton batches on replay.
    """

    entries: Tuple[Tuple[Hashable, Any], ...]

    def keys(self) -> Tuple[Hashable, ...]:
        return tuple(key for key, _ in self.entries)


# Batched values cross both durable logs and (on the real-socket backend)
# wire frames; one codec registration covers both paths.
register_codec(
    "~paxb",
    Batch,
    lambda b: list(b.entries),
    lambda entries: Batch(tuple(entries)),
)


def as_value(raw: Any) -> Any:
    """Normalise a logged/replayed instance value to ``Batch`` | ``NOOP``.

    Pre-batching logs recorded one bare ``(key, payload)`` pair per decided
    instance; mixed logs (old prefix, batched suffix) therefore replay
    through here record by record.
    """
    if raw is None or isinstance(raw, Batch):
        return raw
    pair = tuple(raw)
    if pair == NOOP:
        return NOOP
    return Batch((pair,))


def value_keys(value: Any) -> Tuple[Hashable, ...]:
    """The client keys carried by an instance value (none for NOOP)."""
    if isinstance(value, Batch):
        return value.keys()
    return ()


@dataclass
class AcceptorInstance:
    """Single-decree acceptor state for one consensus instance."""

    promised: Ballot = (-1, -1)
    accepted_ballot: Optional[Ballot] = None
    accepted_value: Optional[Any] = None


@dataclass
class ProposerInstance:
    """Leader-side bookkeeping for one in-flight instance.

    ``decided`` is only used in classic (non-dual-2B) mode, marking the
    window between the majority ack and the decide broadcast arriving back;
    dual-2B proposals are popped outright when the vote tally decides.
    """

    ballot: Ballot
    value: Any
    acks: Set[int] = field(default_factory=set)
    decided: bool = False


class PaxosTOB(TotalOrderBroadcast):
    """Per-node endpoint of batched, pipelined Multi-Paxos TOB."""

    def __init__(
        self,
        node: RoutingNode,
        deliver: DeliverFn,
        omega: OmegaFailureDetector,
        *,
        retry_interval: float = 15.0,
        max_batch: int = 32,
        max_inflight: Optional[int] = 8,
        dual_2b: bool = True,
        max_gap: Optional[int] = None,
        catchup_batch: int = 64,
        catchup_rate: float = 32.0,
        catchup_burst: float = 64.0,
        deliver_batch: Optional[DeliverBatchFn] = None,
        trace: Optional[TraceLog] = None,
        store: Optional["DurableStore"] = None,
        tag: str = _TAG,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.node = node
        self._deliver = deliver
        self._deliver_batch = deliver_batch
        self.omega = omega
        self.retry_interval = retry_interval
        self.max_batch = max(1, max_batch)
        self.max_inflight = max_inflight
        self.dual_2b = dual_2b
        self.max_gap = max_gap if max_gap is not None else max_inflight
        self.catchup_batch = max(1, catchup_batch)
        self.catchup_rate = catchup_rate
        self.catchup_burst = catchup_burst
        self.trace = trace
        self.telemetry = telemetry
        if telemetry is not None:
            self._m_casts = telemetry.counter("repro_tob_casts", engine="paxos")
            self._m_delivers = telemetry.counter(
                "repro_tob_delivers", engine="paxos"
            )
            self._m_batch = telemetry.histogram("repro_paxos_batch_size")
            self._m_rounds = telemetry.histogram("repro_paxos_rounds_per_op")
            self._m_inflight = telemetry.gauge("repro_paxos_inflight")
        self.store = store
        self.tag = tag
        self.n = node.n_processes
        self.majority = self.n // 2 + 1

        # Client-facing submission state. ``_pending`` holds every key
        # awaiting a decision (for retransmission); ``_queue`` is the
        # leader-side FIFO of keys not yet inside an in-flight proposal —
        # its drain order *is* the delivered order, which is why batched
        # and seed-mode histories are bit-identical.
        self._pending: Dict[Hashable, Any] = {}
        self._queue: Deque[Hashable] = deque()
        self._inflight_keys: Set[Hashable] = set()
        self._known_keys: Set[Hashable] = set()

        # Acceptor state. ``_baseline_promise`` is the promise that applies
        # to instances for which no explicit state exists yet (a global
        # phase 1 covers all instances from some point on). Entries below
        # the delivery frontier are pruned — the slim-1B invariant.
        self._acceptor: Dict[int, AcceptorInstance] = {}
        self._baseline_promise: Ballot = (-1, -1)
        self._max_round_seen = 0

        # Leader state. ``_proposals`` holds only undecided instances.
        self._is_leader = False
        self._ballot: Optional[Ballot] = None
        self._phase1_acks: Dict[int, Dict[int, Tuple[Optional[Ballot], Any]]] = {}
        self._phase1_from: Set[int] = set()
        self._phase1_complete = False
        self._phase1_first_instance = 0
        #: Highest decided watermark reported by the phase-1 quorum: every
        #: instance below it is decided somewhere; never NOOP-fill there.
        self._floor = 0
        self._proposals: Dict[int, ProposerInstance] = {}
        self._next_instance = 0

        # Learner state. A key can be decided in two instances when
        # leadership churns mid-proposal; learners deliver it only once
        # (standard duplicate-command handling in Multi-Paxos SMR).
        # ``_votes`` is the dual-2B tally: instance → ballot → voters.
        self._decided: Dict[int, Any] = {}
        self._decided_keys: Set[Hashable] = set()
        self._votes: Dict[int, Dict[Ballot, Set[int]]] = {}
        self._next_deliver = 0
        self._delivered: List[Hashable] = []
        self._delivered_keys: Set[Hashable] = set()

        # Catch-up responder token bucket and requester rotation.
        self._bucket = float(catchup_burst)
        self._bucket_stamp = node.now
        self._catchup_peer = node.pid

        self._stopped = False
        self._drive_armed = False
        self._drive_timer = None
        self._flush_armed = False

        node.register_component(tag, self._on_message)
        node.register_crash_hooks(on_recover=self._on_node_recover)
        omega.on_leader_change = self._on_leader_change
        if store is not None and (
            store.get(f"{tag}.meta") is not None or len(store.log(f"{tag}.decided"))
        ):
            self._reload()
        # Proactive prepare: Ω computes its initial leader before this
        # engine hooks the change callback, so without this kick the first
        # leader would only assert itself a full retry_interval after work
        # arrived (the dominant term of the E13 migration dip).
        node.set_timer(0.0, self._startup_kick, label="paxos.prewarm")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def delivered_sequence(self) -> List[Hashable]:
        return list(self._delivered)

    def tob_cast(self, key: Hashable, payload: Any) -> None:
        """Submit ``payload`` under ``key`` for total ordering."""
        if key in self._known_keys:
            return
        self._known_keys.add(key)
        self._pending[key] = payload
        self._queue.append(key)
        if self.telemetry:
            self._m_casts.inc()
            if isinstance(key, tuple):
                self.telemetry.op_span(
                    self.node.now, self.node.pid, "tob.cast", key,
                    "tob.cast", "root",
                )
        if self.trace is not None:
            self.trace.record(self.node.now, self.node.pid, "paxos.cast", key=key)
        leader = self.omega.leader()
        if leader == self.node.pid:
            self._arm_flush()
        else:
            self.node.send_component(leader, self.tag, ("submit", key, payload))
        self._ensure_driving()

    def prewarm(self) -> None:
        """Run phase 1 now if Ω trusts this node — ahead of any traffic."""
        if self._stopped or self.node.crashed:
            return
        self._maybe_lead()

    def stop(self) -> None:
        """Stop the drive timer (the hosting harness also stops Ω)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Leadership
    # ------------------------------------------------------------------
    def _startup_kick(self) -> None:
        if self._stopped or self.node.crashed:
            return
        self._maybe_lead()

    def _maybe_lead(self) -> None:
        if not self._is_leader and self.omega.leader() == self.node.pid:
            self._become_leader()

    def _on_leader_change(self, leader: int) -> None:
        if leader == self.node.pid:
            self._become_leader()
        else:
            self._is_leader = False
            self._forward_pending()

    def _become_leader(self) -> None:
        self._is_leader = True
        self._phase1_complete = False
        self._phase1_acks = {}
        self._phase1_from = set()
        self._proposals = {}
        self._floor = self._next_deliver
        self._inflight_keys = set()
        self._queue = deque(
            key for key in self._pending if key not in self._decided_keys
        )
        round_number = self._max_round_seen + 1
        self._max_round_seen = round_number
        self._persist_meta()  # a recovered leader must never reuse a ballot
        self._ballot = (round_number, self.node.pid)
        self._phase1_first_instance = self._next_deliver
        self.node.broadcast_component(
            self.tag,
            ("p1a", self._ballot, self._phase1_first_instance),
            include_self=True,
        )
        if self.trace is not None:
            self.trace.record(
                self.node.now, self.node.pid, "paxos.phase1", ballot=self._ballot
            )
        self._ensure_driving()

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _on_message(self, sender: int, message: Tuple) -> None:
        kind = message[0]
        handler = {
            "p1a": self._handle_p1a,
            "p1b": self._handle_p1b,
            "p2a": self._handle_p2a,
            "p2b": self._handle_p2b,
            "nack": self._handle_nack,
            "decide": self._handle_decide,
            "submit": self._handle_submit,
            "status": self._handle_status,
            "repair": self._handle_repair,
        }.get(kind)
        if handler is None:  # pragma: no cover - defensive
            raise ValueError(f"unknown paxos message {kind!r}")
        handler(sender, message[1:])

    # --- stable storage ------------------------------------------------
    def _persist_meta(self) -> None:
        if self.store is not None:
            self.store.put(
                f"{self.tag}.meta",
                {
                    "max_round_seen": self._max_round_seen,
                    "baseline_promise": self._baseline_promise,
                },
            )

    def _persist_acceptor(self, instances) -> None:
        """Durably record the touched acceptor instances (the classic
        Paxos rule: a promise or acceptance must hit stable storage before
        the reply leaves, or a recovered acceptor could break chosen
        values). Each write is an O(1)-per-instance append; reload applies
        the log last-write-wins."""
        if self.store is None:
            return
        log = self.store.log(f"{self.tag}.acc")
        for instance in instances:
            state = self._acceptor[instance]
            log.append(
                (instance, state.promised, state.accepted_ballot, state.accepted_value)
            )
        self._persist_meta()

    # --- acceptor ------------------------------------------------------
    def _handle_p1a(self, sender: int, args: Tuple) -> None:
        ballot, first_instance = args
        self._max_round_seen = max(self._max_round_seen, ballot[0])
        relevant = [
            state
            for instance, state in self._acceptor.items()
            if instance >= first_instance
        ]
        highest_promise = max(
            [self._baseline_promise] + [state.promised for state in relevant]
        )
        if highest_promise > ballot:
            self.node.send_component(
                sender, self.tag, ("nack", ballot, highest_promise)
            )
            return
        # Slim 1B: report only the live accepted suffix (state below our
        # delivery frontier was pruned at delivery) plus the frontier
        # itself as a decided watermark; repair the proposer's missing
        # decided prefix separately instead of replaying it through 1B.
        accepted: Dict[int, Tuple[Ballot, Any]] = {}
        touched = []
        for instance, state in self._acceptor.items():
            if instance < first_instance:
                continue
            state.promised = ballot
            touched.append(instance)
            if state.accepted_ballot is not None:
                accepted[instance] = (state.accepted_ballot, state.accepted_value)
        self._baseline_promise = ballot
        self._persist_acceptor(touched)
        self.node.send_component(
            sender, self.tag, ("p1b", ballot, accepted, self._next_deliver)
        )
        if first_instance < self._next_deliver:
            self._send_repairs(sender, first_instance)

    def _acceptor_state(self, instance: int) -> AcceptorInstance:
        state = self._acceptor.get(instance)
        if state is None:
            state = AcceptorInstance(promised=self._baseline_promise)
            self._acceptor[instance] = state
        return state

    def _handle_p2a(self, sender: int, args: Tuple) -> None:
        ballot, instance, value = args
        self._max_round_seen = max(self._max_round_seen, ballot[0])
        if instance in self._decided:
            # Known decided (and possibly pruned): vote would be useless or
            # unsafe to synthesize — answer with the decision itself.
            self.node.send_component(
                sender, self.tag, ("repair", {instance: self._decided[instance]})
            )
            return
        state = self._acceptor_state(instance)
        if ballot >= state.promised:
            state.promised = ballot
            state.accepted_ballot = ballot
            state.accepted_value = value
            self._persist_acceptor([instance])
            if self.dual_2b:
                # Dual 2B multicast: learners and proposer alike count the
                # votes, so decisions land one message delay earlier and
                # the decide broadcast disappears.
                self.node.broadcast_component(
                    self.tag, ("p2b", ballot, instance), include_self=True
                )
                self._tally_vote(instance, ballot, self.node.pid)
            else:
                self.node.send_component(sender, self.tag, ("p2b", ballot, instance))
        else:
            self.node.send_component(
                sender, self.tag, ("nack", ballot, state.promised)
            )

    def _handle_nack(self, sender: int, args: Tuple) -> None:
        """A rejected ballot: escalate past the promise that beat us.

        Without this, a leader whose acceptors promised a higher ballot (a
        deposed rival's phase 1 arriving late, e.g. after a partition heals)
        would retransmit the same stale ballot forever.
        """
        ballot, promised = args
        self._max_round_seen = max(self._max_round_seen, promised[0])
        if (
            self._is_leader
            and ballot == self._ballot
            and self.omega.leader() == self.node.pid
        ):
            self._become_leader()

    # --- proposer ------------------------------------------------------
    def _handle_p1b(self, sender: int, args: Tuple) -> None:
        ballot, accepted, watermark = args
        if not self._is_leader or ballot != self._ballot or self._phase1_complete:
            return
        self._phase1_from.add(sender)
        self._floor = max(self._floor, watermark)
        for instance, (acc_ballot, acc_value) in accepted.items():
            per_instance = self._phase1_acks.setdefault(instance, {})
            per_instance[sender] = (acc_ballot, acc_value)
        if len(self._phase1_from) >= self.majority:
            self._complete_phase1()

    def _complete_phase1(self) -> None:
        self._phase1_complete = True
        # Re-propose the highest-ballot accepted value per reported
        # instance at or above the quorum's decided watermark; instances
        # below it are decided elsewhere and arrive via catch-up, never by
        # re-proposal (the slim-1B safety rule).
        reported = [i for i in self._phase1_acks if i >= self._floor]
        max_reported = max(reported) if reported else self._floor - 1
        self._next_instance = max(self._next_instance, self._floor)
        for instance in sorted(reported):
            if instance in self._decided:
                continue
            votes = self._phase1_acks[instance]
            _, value = max(votes.values(), key=lambda v: v[0])
            self._propose(instance, value)
        self._next_instance = max(self._next_instance, max_reported + 1)
        if self._next_deliver < self._floor:
            self._request_catchup()
        self._fill_gaps()
        self._drain_pending()

    def _inflight(self) -> int:
        return sum(1 for p in self._proposals.values() if not p.decided)

    def _propose(self, instance: int, value: Any) -> None:
        assert self._ballot is not None
        self._proposals[instance] = ProposerInstance(ballot=self._ballot, value=value)
        if self.telemetry:
            if isinstance(value, Batch):
                self._m_batch.observe(len(value.entries))
            self._m_inflight.set(self._inflight())
        self.node.broadcast_component(
            self.tag, ("p2a", self._ballot, instance, value), include_self=True
        )

    def _drain_pending(self) -> None:
        """Drain queued keys into batched proposals, up to the pipeline cap.

        FIFO drain order is the total order: every entry is appended in
        submission-arrival order regardless of ``max_batch``/``max_inflight``,
        so any knob setting yields the same delivered sequence.
        """
        if not (self._is_leader and self._phase1_complete):
            return
        while self._queue and (
            self.max_inflight is None or self._inflight() < self.max_inflight
        ):
            entries: List[Tuple[Hashable, Any]] = []
            while self._queue and len(entries) < self.max_batch:
                key = self._queue.popleft()
                if (
                    key not in self._pending
                    or key in self._inflight_keys
                    or key in self._decided_keys
                ):
                    continue
                entries.append((key, self._pending[key]))
                self._inflight_keys.add(key)
            if not entries:
                break
            instance = self._next_instance
            self._next_instance += 1
            self._propose(instance, Batch(tuple(entries)))

    def _fill_gaps(self) -> None:
        """Propose NOOP for undecided instances below the decided frontier.

        Leadership churn can leave holes (an instance whose only proposal
        died with its ballot) beneath instances that did decide; the current
        leader plugs them so delivery can progress. Phase-1-discovered
        accepted values, if any, were already re-proposed, so NOOP here can
        never overwrite a possibly-chosen value: an instance with a chosen
        value has it accepted at a majority, which phase 1 must intersect —
        and instances below the quorum watermark (``_floor``), where
        acceptors may have pruned their evidence, are never filled at all;
        they are fetched via catch-up. At most ``max_gap`` NOOPs are in
        flight at once (the drive re-arms until every hole is plugged), so
        a leader change over a long gap cannot storm the cluster.
        """
        assert self._is_leader and self._phase1_complete
        if not self._decided:
            return
        frontier = max(self._decided)
        budget = None
        if self.max_gap is not None:
            gaps_inflight = sum(
                1 for p in self._proposals.values() if p.value == NOOP
            )
            budget = self.max_gap - gaps_inflight
            if budget <= 0:
                return
        for instance in range(max(self._next_deliver, self._floor), frontier):
            if instance in self._decided or instance in self._proposals:
                continue
            self._propose(instance, NOOP)
            if budget is not None:
                budget -= 1
                if budget <= 0:
                    return

    def _tally_vote(self, instance: int, ballot: Ballot, voter: int) -> None:
        if instance in self._decided:
            return
        votes = self._votes.setdefault(instance, {}).setdefault(ballot, set())
        votes.add(voter)
        if len(votes) >= self.majority:
            self._learn_from_votes(instance, ballot)

    def _learn_from_votes(self, instance: int, ballot: Ballot) -> None:
        """Dual-2B learning: a majority voted ``ballot`` — find its value.

        The proposer has it in its proposal record; an acceptor that voted
        has it in its accepted state. A node with neither (its own 2A still
        in flight) simply waits: the next vote or its own acceptance
        re-runs the tally, and catch-up repairs any remainder.
        """
        value = None
        proposal = self._proposals.get(instance)
        if proposal is not None and proposal.ballot == ballot:
            value = proposal.value
        else:
            state = self._acceptor.get(instance)
            if state is not None and state.accepted_ballot == ballot:
                value = state.accepted_value
        if value is None:
            return
        self._record_decided(instance, value)
        self._deliver_ready()
        self._drain_pending()
        self._ensure_driving()

    def _handle_p2b(self, sender: int, args: Tuple) -> None:
        ballot, instance = args
        if self.dual_2b:
            self._tally_vote(instance, ballot, sender)
            return
        proposal = self._proposals.get(instance)
        if proposal is None or proposal.ballot != ballot or proposal.decided:
            return
        proposal.acks.add(sender)
        if len(proposal.acks) >= self.majority:
            proposal.decided = True
            self.node.broadcast_component(
                self.tag, ("decide", instance, proposal.value), include_self=True
            )

    # --- learner -------------------------------------------------------
    def _record_decided(self, instance: int, value: Any) -> None:
        """Learn a decision: in memory, durably, and off the pending queue."""
        if instance in self._decided:
            return
        self._decided[instance] = value
        if self.store is not None:
            self.store.log(f"{self.tag}.decided").append((instance, value))
        self._votes.pop(instance, None)
        proposal = self._proposals.pop(instance, None)
        if proposal is not None:
            if self.telemetry and isinstance(value, Batch):
                self._m_rounds.observe(1.0 / len(value.entries))
                self._m_inflight.set(self._inflight())
            if proposal.value != value:
                # Another leader decided this instance differently; our
                # entries are not decided — requeue them for a fresh slot.
                for key in value_keys(proposal.value):
                    if key in self._inflight_keys:
                        self._inflight_keys.discard(key)
                        if key in self._pending and key not in self._decided_keys:
                            self._queue.append(key)
        for key in value_keys(value):
            self._decided_keys.add(key)
            self._pending.pop(key, None)
            self._inflight_keys.discard(key)

    def _handle_decide(self, sender: int, args: Tuple) -> None:
        instance, value = args
        if instance in self._decided:
            return
        self._record_decided(instance, value)
        self._deliver_ready()
        self._drain_pending()
        self._ensure_driving()

    def _deliver_ready(self, *, notify: bool = True) -> None:
        """Advance the delivery frontier over contiguous decided instances.

        ``notify=False`` rebuilds the learner bookkeeping without invoking
        the application callback or tracing — the recovery reload path,
        where everything contiguous was already consumed (and durably
        committed) by the hosting replica before the crash.

        Delivery also prunes acceptor state for the consumed instances —
        the slim-1B invariant that keeps 1B payloads proportional to the
        live suffix instead of history.
        """
        ready: List[Tuple[Hashable, Any]] = []
        while self._next_deliver in self._decided:
            value = self._decided[self._next_deliver]
            instance = self._next_deliver
            self._next_deliver += 1
            self._acceptor.pop(instance, None)
            self._votes.pop(instance, None)
            if not isinstance(value, Batch):
                continue  # NOOP gap filler
            for key, payload in value.entries:
                if key in self._delivered_keys:
                    continue  # duplicate decision of a re-proposed key
                self._delivered_keys.add(key)
                self._delivered.append(key)
                if not notify:
                    continue
                if self.telemetry:
                    self._m_delivers.inc()
                    if isinstance(key, tuple) and key[0] == self.node.pid:
                        # Origin-only, like the sequencer engine: one
                        # delivery span per op regardless of cluster size.
                        self.telemetry.op_span(
                            self.node.now,
                            self.node.pid,
                            "tob.deliver",
                            key,
                            "tob.deliver",
                            "tob.cast",
                            seqno=instance,
                        )
                if self.trace is not None:
                    self.trace.record(
                        self.node.now,
                        self.node.pid,
                        "tob.deliver",
                        key=key,
                        seqno=instance,
                    )
                ready.append((key, payload))
        if not ready:
            return
        if self._deliver_batch is not None and len(ready) > 1:
            self._deliver_batch(ready)
        else:
            for key, payload in ready:
                self._deliver(key, payload)

    # --- submissions ---------------------------------------------------
    def _handle_submit(self, sender: int, args: Tuple) -> None:
        key, payload = args
        if key in self._decided_keys or key in self._delivered_keys:
            return
        if key not in self._known_keys:
            self._known_keys.add(key)
            self._pending[key] = payload
            self._queue.append(key)
        self._arm_flush()
        self._ensure_driving()

    def _forward_pending(self) -> None:
        """Send pending submissions to the node currently trusted as leader."""
        leader = self.omega.leader()
        if leader == self.node.pid:
            self._arm_flush()
            return
        for key, payload in self._pending.items():
            self.node.send_component(leader, self.tag, ("submit", key, payload))

    # --- flush: same-instant submission coalescing ---------------------
    def _arm_flush(self) -> None:
        """Drain one simulation event later (still zero simulated delay).

        Every submission that lands at the same instant joins the same
        drain, so a burst becomes a few full batches instead of a train of
        singleton proposals — without adding latency for a lone submission.
        """
        if self._flush_armed or self._stopped:
            return
        self._flush_armed = True
        self.node.set_timer(0.0, self._flush, label="paxos.flush")

    def _flush(self) -> None:
        self._flush_armed = False
        if self._stopped or self.node.crashed:
            return
        self._maybe_lead()
        if self._is_leader and self._phase1_complete:
            self._drain_pending()
        self._ensure_driving()

    # --- catch-up: rate-limited batched repair -------------------------
    def _request_catchup(self) -> None:
        """Ask one rotating peer for our missing decided suffix."""
        if self.n <= 1:
            return
        peer = (self._catchup_peer + 1) % self.n
        if peer == self.node.pid:
            peer = (peer + 1) % self.n
        self._catchup_peer = peer
        self.node.send_component(peer, self.tag, ("status", self._next_deliver))

    def _catchup_take(self, want: int) -> int:
        """Token bucket: how many instances this response may carry."""
        now = self.node.now
        elapsed = max(0.0, now - self._bucket_stamp)
        self._bucket_stamp = now
        self._bucket = min(
            self.catchup_burst, self._bucket + elapsed * self.catchup_rate
        )
        take = min(want, self.catchup_batch, int(self._bucket))
        if take > 0:
            self._bucket -= take
        return take

    def _send_repairs(self, peer: int, their_next: int) -> None:
        missing = sorted(i for i in self._decided if i >= their_next)
        if not missing:
            return
        take = self._catchup_take(len(missing))
        if take <= 0:
            return
        repairs = {i: self._decided[i] for i in missing[:take]}
        self.node.send_component(peer, self.tag, ("repair", repairs))

    def _handle_status(self, sender: int, args: Tuple) -> None:
        (their_next,) = args
        self._send_repairs(sender, their_next)

    def _handle_repair(self, sender: int, args: Tuple) -> None:
        (repairs,) = args
        for instance in sorted(repairs):
            self._record_decided(instance, as_value(repairs[instance]))
        self._deliver_ready()
        self._drain_pending()
        self._ensure_driving()

    # ------------------------------------------------------------------
    # Drive timer: retransmission + anti-entropy
    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        if self._pending:
            return True
        if self._is_leader and self._proposals:
            return True
        if self._decided and self._next_deliver <= max(self._decided):
            return True
        if self._next_deliver < self._floor:
            return True
        return False

    def _ensure_driving(self) -> None:
        if self._drive_armed or self._stopped or not self._has_work():
            return
        self._drive_armed = True
        self._drive_timer = self.node.set_timer(
            self.retry_interval, self._drive, label="paxos.drive"
        )

    def _drive(self) -> None:
        self._drive_armed = False
        self._drive_timer = None
        if self._stopped or not self._has_work():
            return
        self._maybe_lead()
        if self._is_leader:
            if not self._phase1_complete:
                # Phase 1 stalled (lost messages / partition): retry it.
                self._become_leader()
            else:
                self._drain_pending()
                self._fill_gaps()
                for instance, proposal in self._proposals.items():
                    if proposal.decided:
                        continue
                    self.node.broadcast_component(
                        self.tag,
                        ("p2a", proposal.ballot, instance, proposal.value),
                        include_self=True,
                    )
        else:
            self._forward_pending()
        # Anti-entropy: ask one rotating peer for decided instances we might
        # be missing (a pending key may have been decided while we were
        # partitioned; the responder's token bucket bounds the repair).
        self._request_catchup()
        self._ensure_driving()

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _reload(self) -> None:
        """Reload the durable surface: acceptor state, meta, decided log.

        Learner bookkeeping (``_next_deliver``/``_delivered``) is rebuilt by
        walking the decided log from instance 0 *without* re-delivering —
        everything contiguous was delivered (and consumed by the hosting
        replica, which persists its own commit log) before the crash.
        Pre-batching logs (bare ``(key, payload)`` values) replay through
        :func:`as_value`, so an upgraded node recovers a mixed old/new log.
        """
        meta = self.store.get(f"{self.tag}.meta") or {}
        self._max_round_seen = meta.get("max_round_seen", 0)
        self._baseline_promise = tuple(meta.get("baseline_promise", (-1, -1)))
        self._acceptor = {}
        # Last write per instance wins (the log records every mutation).
        for record in self.store.log(f"{self.tag}.acc").records():
            instance, promised, accepted_ballot, accepted_value = record
            self._acceptor[instance] = AcceptorInstance(
                promised=tuple(promised),
                accepted_ballot=(
                    None if accepted_ballot is None else tuple(accepted_ballot)
                ),
                accepted_value=as_value(accepted_value),
            )
        self._decided = {
            instance: as_value(value)
            for instance, value in self.store.log(f"{self.tag}.decided").records()
        }
        self._decided_keys = set()
        for value in self._decided.values():
            self._decided_keys.update(value_keys(value))
        self._votes = {}
        self._next_deliver = 0
        self._delivered = []
        self._delivered_keys = set()
        self._deliver_ready(notify=False)
        self._known_keys = set(self._decided_keys)

    def _on_node_recover(self) -> None:
        """Reboot: reload stable state, drop the rest, catch up, re-lead.

        Volatile state — leadership, phase-1 bookkeeping, in-flight
        proposals, pending submissions — is discarded (the hosting replica
        re-announces its uncommitted requests after recovery). The node
        immediately asks every peer for decided instances it missed, and
        one simulation step later re-asserts leadership if Ω still (or
        again) trusts it.
        """
        if self._drive_timer is not None and self._drive_timer.pending:
            self._drive_timer.cancel()
        self._drive_timer = None
        self._drive_armed = False
        self._flush_armed = False
        self._is_leader = False
        self._ballot = None
        self._phase1_acks = {}
        self._phase1_from = set()
        self._phase1_complete = False
        self._floor = 0
        self._proposals = {}
        self._next_instance = 0
        self._votes = {}
        self._inflight_keys = set()
        self._bucket = float(self.catchup_burst)
        self._bucket_stamp = self.node.now
        if self.store is not None:
            # Pending submissions are volatile: the hosting replica re-casts
            # its uncommitted requests from its own write-ahead log. Without
            # a store the in-memory state survives (a transient pause, the
            # seed semantics), so pending work is kept.
            self._pending = {}
            self._reload()
        self._queue = deque(
            key for key in self._pending if key not in self._decided_keys
        )
        if self._stopped:
            return
        # Catch-up: learn every instance decided during the downtime.
        # Every peer is asked (downtime lag is the one place a single
        # rotating probe would be too slow); responders still token-bucket.
        for peer in range(self.n):
            if peer != self.node.pid:
                self.node.send_component(
                    peer, self.tag, ("status", self._next_deliver)
                )
        self.node.set_timer(0.0, self._post_recovery_kick, label="paxos.rekick")

    def _post_recovery_kick(self) -> None:
        if self._stopped or self.node.crashed:
            return
        self._maybe_lead()
        self._ensure_driving()
