"""Multi-Paxos Total Order Broadcast.

A faithful quorum-based TOB engine, as footnoted in Section 2.3 of the
paper: "TOB ... can be implemented in a non-blocking fashion through e.g.,
quorum-based protocols such as Paxos". Every node plays all three roles:

- **proposer**: the node currently trusted as leader by Ω assigns pending
  client payloads to consecutive consensus instances;
- **acceptor**: classic promised/accepted single-decree state per instance;
- **learner**: decided instances are delivered in instance order.

Key design points
------------------
- Ballots are ``(round, pid)`` pairs; a new leader picks a round higher than
  any it has seen and runs a single *global* phase 1 covering all instances
  from its first undecided one (standard Multi-Paxos).
- Gaps left by a deposed leader are filled with ``NOOP`` values which
  learners skip, preserving total order without blocking.
- Payloads are deduplicated by ``key``: a key is assigned to at most one
  instance (re-submissions after retransmission are absorbed), giving the
  at-most-once ordering the paper's TOB contract needs.
- A self-rearming *drive* timer retransmits unfinished work and anti-entropy
  status messages; it stays quiet when there is nothing to do, so stable
  runs quiesce naturally once all submissions are decided and delivered.
- Liveness requires a majority of responsive acceptors and an eventually
  accurate Ω — i.e. the paper's *stable runs*. Under a lasting partition a
  minority component keeps retrying without ever deciding: the paper's
  *asynchronous runs*, in which strong operations block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.broadcast.failure_detector import OmegaFailureDetector
from repro.broadcast.total_order import DeliverFn, TotalOrderBroadcast
from repro.net.node import RoutingNode
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core → broadcast)
    from repro.core.durability import DurableStore

_TAG = "paxos"

Ballot = Tuple[int, int]

#: Sentinel proposed into gap instances; never delivered to the application.
NOOP = ("__paxos_noop__", None)


@dataclass
class AcceptorInstance:
    """Single-decree acceptor state for one consensus instance."""

    promised: Ballot = (-1, -1)
    accepted_ballot: Optional[Ballot] = None
    accepted_value: Optional[Tuple[Hashable, Any]] = None


@dataclass
class ProposerInstance:
    """Leader-side bookkeeping for one in-flight instance."""

    ballot: Ballot
    value: Tuple[Hashable, Any]
    acks: Set[int] = field(default_factory=set)
    decided: bool = False


class PaxosTOB(TotalOrderBroadcast):
    """Per-node endpoint of Multi-Paxos total order broadcast."""

    def __init__(
        self,
        node: RoutingNode,
        deliver: DeliverFn,
        omega: OmegaFailureDetector,
        *,
        retry_interval: float = 15.0,
        trace: Optional[TraceLog] = None,
        store: Optional["DurableStore"] = None,
        tag: str = _TAG,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.node = node
        self._deliver = deliver
        self.omega = omega
        self.retry_interval = retry_interval
        self.trace = trace
        self.telemetry = telemetry
        if telemetry is not None:
            self._m_casts = telemetry.counter("repro_tob_casts", engine="paxos")
            self._m_delivers = telemetry.counter(
                "repro_tob_delivers", engine="paxos"
            )
        self.store = store
        self.tag = tag
        self.n = node.n_processes
        self.majority = self.n // 2 + 1

        # Client-facing submission state.
        self._pending: Dict[Hashable, Any] = {}
        self._known_keys: Set[Hashable] = set()

        # Acceptor state. ``_baseline_promise`` is the promise that applies
        # to instances for which no explicit state exists yet (a global
        # phase 1 covers all instances from some point on).
        self._acceptor: Dict[int, AcceptorInstance] = {}
        self._baseline_promise: Ballot = (-1, -1)
        self._max_round_seen = 0

        # Leader state.
        self._is_leader = False
        self._ballot: Optional[Ballot] = None
        self._phase1_acks: Dict[int, Dict[int, Tuple[Optional[Ballot], Any]]] = {}
        self._phase1_from: Set[int] = set()
        self._phase1_complete = False
        self._phase1_first_instance = 0
        self._proposals: Dict[int, ProposerInstance] = {}
        self._next_instance = 0

        # Learner state. A key can be decided in two instances when
        # leadership churns mid-proposal; learners deliver it only once
        # (standard duplicate-command handling in Multi-Paxos SMR).
        self._decided: Dict[int, Tuple[Hashable, Any]] = {}
        self._next_deliver = 0
        self._delivered: List[Hashable] = []
        self._delivered_keys: Set[Hashable] = set()

        self._stopped = False
        self._drive_armed = False
        self._drive_timer = None

        node.register_component(tag, self._on_message)
        node.register_crash_hooks(on_recover=self._on_node_recover)
        omega.on_leader_change = self._on_leader_change
        if store is not None and (
            store.get(f"{tag}.meta") is not None or len(store.log(f"{tag}.decided"))
        ):
            self._reload()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def delivered_sequence(self) -> List[Hashable]:
        return list(self._delivered)

    def tob_cast(self, key: Hashable, payload: Any) -> None:
        """Submit ``payload`` under ``key`` for total ordering."""
        if key in self._known_keys:
            return
        self._known_keys.add(key)
        self._pending[key] = payload
        if self.telemetry:
            self._m_casts.inc()
            if isinstance(key, tuple):
                self.telemetry.op_span(
                    self.node.now, self.node.pid, "tob.cast", key,
                    "tob.cast", "root",
                )
        if self.trace is not None:
            self.trace.record(self.node.now, self.node.pid, "paxos.cast", key=key)
        self._forward_pending()
        self._ensure_driving()

    def stop(self) -> None:
        """Stop the drive timer (the hosting harness also stops Ω)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Leadership
    # ------------------------------------------------------------------
    def _on_leader_change(self, leader: int) -> None:
        if leader == self.node.pid:
            self._become_leader()
        else:
            self._is_leader = False
            self._forward_pending()

    def _become_leader(self) -> None:
        self._is_leader = True
        self._phase1_complete = False
        self._phase1_acks = {}
        self._phase1_from = set()
        self._proposals = {}
        round_number = self._max_round_seen + 1
        self._max_round_seen = round_number
        self._persist_meta()  # a recovered leader must never reuse a ballot
        self._ballot = (round_number, self.node.pid)
        self._phase1_first_instance = self._next_deliver
        self.node.broadcast_component(
            self.tag,
            ("p1a", self._ballot, self._phase1_first_instance),
            include_self=True,
        )
        if self.trace is not None:
            self.trace.record(
                self.node.now, self.node.pid, "paxos.phase1", ballot=self._ballot
            )
        self._ensure_driving()

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _on_message(self, sender: int, message: Tuple) -> None:
        kind = message[0]
        handler = {
            "p1a": self._handle_p1a,
            "p1b": self._handle_p1b,
            "p2a": self._handle_p2a,
            "p2b": self._handle_p2b,
            "nack": self._handle_nack,
            "decide": self._handle_decide,
            "submit": self._handle_submit,
            "status": self._handle_status,
            "repair": self._handle_repair,
        }.get(kind)
        if handler is None:  # pragma: no cover - defensive
            raise ValueError(f"unknown paxos message {kind!r}")
        handler(sender, message[1:])

    # --- stable storage ------------------------------------------------
    def _persist_meta(self) -> None:
        if self.store is not None:
            self.store.put(
                f"{self.tag}.meta",
                {
                    "max_round_seen": self._max_round_seen,
                    "baseline_promise": self._baseline_promise,
                },
            )

    def _persist_acceptor(self, instances) -> None:
        """Durably record the touched acceptor instances (the classic
        Paxos rule: a promise or acceptance must hit stable storage before
        the reply leaves, or a recovered acceptor could break chosen
        values). Each write is an O(1)-per-instance append; reload applies
        the log last-write-wins."""
        if self.store is None:
            return
        log = self.store.log(f"{self.tag}.acc")
        for instance in instances:
            state = self._acceptor[instance]
            log.append(
                (instance, state.promised, state.accepted_ballot, state.accepted_value)
            )
        self._persist_meta()

    # --- acceptor ------------------------------------------------------
    def _handle_p1a(self, sender: int, args: Tuple) -> None:
        ballot, first_instance = args
        self._max_round_seen = max(self._max_round_seen, ballot[0])
        relevant = [
            state
            for instance, state in self._acceptor.items()
            if instance >= first_instance
        ]
        highest_promise = max(
            [self._baseline_promise] + [state.promised for state in relevant]
        )
        if highest_promise > ballot:
            self.node.send_component(
                sender, self.tag, ("nack", ballot, highest_promise)
            )
            return
        accepted: Dict[int, Tuple[Ballot, Tuple[Hashable, Any]]] = {}
        touched = []
        for instance, state in self._acceptor.items():
            if instance < first_instance:
                continue
            state.promised = ballot
            touched.append(instance)
            if state.accepted_ballot is not None:
                accepted[instance] = (state.accepted_ballot, state.accepted_value)
        self._baseline_promise = ballot
        self._persist_acceptor(touched)
        self.node.send_component(sender, self.tag, ("p1b", ballot, accepted))

    def _acceptor_state(self, instance: int) -> AcceptorInstance:
        state = self._acceptor.get(instance)
        if state is None:
            state = AcceptorInstance(promised=self._baseline_promise)
            self._acceptor[instance] = state
        return state

    def _handle_p2a(self, sender: int, args: Tuple) -> None:
        ballot, instance, value = args
        self._max_round_seen = max(self._max_round_seen, ballot[0])
        state = self._acceptor_state(instance)
        if ballot >= state.promised:
            state.promised = ballot
            state.accepted_ballot = ballot
            state.accepted_value = value
            self._persist_acceptor([instance])
            self.node.send_component(sender, self.tag, ("p2b", ballot, instance))
        else:
            self.node.send_component(
                sender, self.tag, ("nack", ballot, state.promised)
            )

    def _handle_nack(self, sender: int, args: Tuple) -> None:
        """A rejected ballot: escalate past the promise that beat us.

        Without this, a leader whose acceptors promised a higher ballot (a
        deposed rival's phase 1 arriving late, e.g. after a partition heals)
        would retransmit the same stale ballot forever.
        """
        ballot, promised = args
        self._max_round_seen = max(self._max_round_seen, promised[0])
        if (
            self._is_leader
            and ballot == self._ballot
            and self.omega.leader() == self.node.pid
        ):
            self._become_leader()

    # --- proposer ------------------------------------------------------
    def _handle_p1b(self, sender: int, args: Tuple) -> None:
        ballot, accepted = args
        if not self._is_leader or ballot != self._ballot or self._phase1_complete:
            return
        self._phase1_from.add(sender)
        for instance, (acc_ballot, acc_value) in accepted.items():
            per_instance = self._phase1_acks.setdefault(instance, {})
            per_instance[sender] = (acc_ballot, acc_value)
        if len(self._phase1_from) >= self.majority:
            self._complete_phase1()

    def _complete_phase1(self) -> None:
        self._phase1_complete = True
        # Re-propose the highest-ballot accepted value per reported instance;
        # fill holes with NOOP so the log stays contiguous.
        reported = [i for i in self._phase1_acks if i >= self._phase1_first_instance]
        max_reported = max(reported) if reported else self._phase1_first_instance - 1
        self._next_instance = max(self._next_instance, self._phase1_first_instance)
        for instance in range(self._phase1_first_instance, max_reported + 1):
            if instance in self._decided:
                continue
            votes = self._phase1_acks.get(instance, {})
            if votes:
                _, value = max(votes.values(), key=lambda v: v[0])
            else:
                value = NOOP
            self._propose(instance, value)
        self._next_instance = max(self._next_instance, max_reported + 1)
        self._assign_pending()

    def _propose(self, instance: int, value: Tuple[Hashable, Any]) -> None:
        assert self._ballot is not None
        self._proposals[instance] = ProposerInstance(ballot=self._ballot, value=value)
        self.node.broadcast_component(
            self.tag, ("p2a", self._ballot, instance, value), include_self=True
        )

    def _assign_pending(self) -> None:
        """Assign not-yet-proposed pending keys to fresh instances."""
        if not (self._is_leader and self._phase1_complete):
            return
        in_flight = {
            proposal.value[0]
            for proposal in self._proposals.values()
            if not proposal.decided
        }
        decided_keys = {key for key, _ in self._decided.values()}
        for key in list(self._pending):
            if key in decided_keys:
                del self._pending[key]
                continue
            if key in in_flight:
                continue
            instance = self._next_instance
            self._next_instance += 1
            self._propose(instance, (key, self._pending[key]))
            in_flight.add(key)

    def _fill_gaps(self) -> None:
        """Propose NOOP for undecided instances below the decided frontier.

        Leadership churn can leave holes (an instance whose only proposal
        died with its ballot) beneath instances that did decide; the current
        leader plugs them so delivery can progress. Phase-1-discovered
        accepted values, if any, were already re-proposed, so NOOP here can
        never overwrite a possibly-chosen value: an instance with a chosen
        value has it accepted at a majority, which phase 1 must intersect.
        """
        assert self._is_leader and self._phase1_complete
        if not self._decided:
            return
        frontier = max(self._decided)
        for instance in range(self._next_deliver, frontier):
            if instance in self._decided or instance in self._proposals:
                continue
            self._propose(instance, NOOP)

    def _handle_p2b(self, sender: int, args: Tuple) -> None:
        ballot, instance = args
        proposal = self._proposals.get(instance)
        if proposal is None or proposal.ballot != ballot or proposal.decided:
            return
        proposal.acks.add(sender)
        if len(proposal.acks) >= self.majority:
            proposal.decided = True
            self.node.broadcast_component(
                self.tag, ("decide", instance, proposal.value), include_self=True
            )

    # --- learner -------------------------------------------------------
    def _record_decided(self, instance: int, value: Tuple[Hashable, Any]) -> None:
        """Learn a decision: in memory, durably, and off the pending queue."""
        self._decided[instance] = value
        if self.store is not None:
            self.store.log(f"{self.tag}.decided").append((instance, value))
        self._pending.pop(value[0], None)

    def _handle_decide(self, sender: int, args: Tuple) -> None:
        instance, value = args
        if instance in self._decided:
            return
        self._record_decided(instance, value)
        self._deliver_ready()
        self._assign_pending()
        self._ensure_driving()

    def _deliver_ready(self, *, notify: bool = True) -> None:
        """Advance the delivery frontier over contiguous decided instances.

        ``notify=False`` rebuilds the learner bookkeeping without invoking
        the application callback or tracing — the recovery reload path,
        where everything contiguous was already consumed (and durably
        committed) by the hosting replica before the crash.
        """
        while self._next_deliver in self._decided:
            key, payload = self._decided[self._next_deliver]
            instance = self._next_deliver
            self._next_deliver += 1
            if (key, payload) == NOOP:
                continue
            if key in self._delivered_keys:
                continue  # duplicate decision of a re-proposed key
            self._delivered_keys.add(key)
            self._delivered.append(key)
            if not notify:
                continue
            if self.telemetry:
                self._m_delivers.inc()
                if isinstance(key, tuple) and key[0] == self.node.pid:
                    # Origin-only, like the sequencer engine: one delivery
                    # span per op regardless of cluster size.
                    self.telemetry.op_span(
                        self.node.now,
                        self.node.pid,
                        "tob.deliver",
                        key,
                        "tob.deliver",
                        "tob.cast",
                        seqno=instance,
                    )
            if self.trace is not None:
                self.trace.record(
                    self.node.now,
                    self.node.pid,
                    "tob.deliver",
                    key=key,
                    seqno=instance,
                )
            self._deliver(key, payload)

    # --- submissions and anti-entropy ----------------------------------
    def _handle_submit(self, sender: int, args: Tuple) -> None:
        key, payload = args
        if key in {k for k, _ in self._decided.values()}:
            return
        if key not in self._known_keys:
            self._known_keys.add(key)
            self._pending[key] = payload
        self._assign_pending()
        self._ensure_driving()

    def _handle_status(self, sender: int, args: Tuple) -> None:
        (their_next,) = args
        # Send any decided instances the peer is missing.
        repairs = {
            instance: value
            for instance, value in self._decided.items()
            if instance >= their_next
        }
        if repairs:
            self.node.send_component(sender, self.tag, ("repair", repairs))

    def _handle_repair(self, sender: int, args: Tuple) -> None:
        (repairs,) = args
        for instance, value in repairs.items():
            if instance not in self._decided:
                self._record_decided(instance, value)
        self._deliver_ready()
        self._ensure_driving()

    def _forward_pending(self) -> None:
        """Send pending submissions to the node currently trusted as leader."""
        leader = self.omega.leader()
        for key, payload in self._pending.items():
            if leader == self.node.pid:
                self._handle_submit(self.node.pid, (key, payload))
            else:
                self.node.send_component(leader, self.tag, ("submit", key, payload))

    # ------------------------------------------------------------------
    # Drive timer: retransmission + anti-entropy
    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        if self._pending:
            return True
        if self._is_leader and any(
            not proposal.decided for proposal in self._proposals.values()
        ):
            return True
        if self._decided and self._next_deliver <= max(self._decided):
            return True
        return False

    def _ensure_driving(self) -> None:
        if self._drive_armed or self._stopped or not self._has_work():
            return
        self._drive_armed = True
        self._drive_timer = self.node.set_timer(
            self.retry_interval, self._drive, label="paxos.drive"
        )

    def _drive(self) -> None:
        self._drive_armed = False
        self._drive_timer = None
        if self._stopped or not self._has_work():
            return
        if self.omega.leader() == self.node.pid and not self._is_leader:
            self._become_leader()
        if self._is_leader:
            if not self._phase1_complete:
                # Phase 1 stalled (lost messages / partition): retry it.
                self._become_leader()
            else:
                self._assign_pending()
                self._fill_gaps()
                for instance, proposal in self._proposals.items():
                    if not proposal.decided:
                        self.node.broadcast_component(
                            self.tag,
                            ("p2a", proposal.ballot, instance, proposal.value),
                            include_self=True,
                        )
        else:
            self._forward_pending()
        # Anti-entropy: ask peers for decided instances we might be missing.
        self.node.broadcast_component(self.tag, ("status", self._next_deliver))
        self._ensure_driving()

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _reload(self) -> None:
        """Reload the durable surface: acceptor state, meta, decided log.

        Learner bookkeeping (``_next_deliver``/``_delivered``) is rebuilt by
        walking the decided log from instance 0 *without* re-delivering —
        everything contiguous was delivered (and consumed by the hosting
        replica, which persists its own commit log) before the crash.
        """
        meta = self.store.get(f"{self.tag}.meta") or {}
        self._max_round_seen = meta.get("max_round_seen", 0)
        self._baseline_promise = tuple(meta.get("baseline_promise", (-1, -1)))
        self._acceptor = {}
        # Last write per instance wins (the log records every mutation).
        for record in self.store.log(f"{self.tag}.acc").records():
            instance, promised, accepted_ballot, accepted_value = record
            self._acceptor[instance] = AcceptorInstance(
                promised=tuple(promised),
                accepted_ballot=(
                    None if accepted_ballot is None else tuple(accepted_ballot)
                ),
                accepted_value=accepted_value,
            )
        self._decided = {
            instance: value
            for instance, value in self.store.log(f"{self.tag}.decided").records()
        }
        self._next_deliver = 0
        self._delivered = []
        self._delivered_keys = set()
        self._deliver_ready(notify=False)
        self._known_keys = {key for key, _ in self._decided.values()}

    def _on_node_recover(self) -> None:
        """Reboot: reload stable state, drop the rest, catch up, re-lead.

        Volatile state — leadership, phase-1 bookkeeping, in-flight
        proposals, pending submissions — is discarded (the hosting replica
        re-announces its uncommitted requests after recovery). The node
        immediately asks every peer for decided instances it missed, and
        one simulation step later re-asserts leadership if Ω still (or
        again) trusts it.
        """
        if self._drive_timer is not None and self._drive_timer.pending:
            self._drive_timer.cancel()
        self._drive_timer = None
        self._drive_armed = False
        self._is_leader = False
        self._ballot = None
        self._phase1_acks = {}
        self._phase1_from = set()
        self._phase1_complete = False
        self._proposals = {}
        self._next_instance = 0
        if self.store is not None:
            # Pending submissions are volatile: the hosting replica re-casts
            # its uncommitted requests from its own write-ahead log. Without
            # a store the in-memory state survives (a transient pause, the
            # seed semantics), so pending work is kept.
            self._pending = {}
            self._reload()
        if self._stopped:
            return
        # Catch-up: learn every instance decided during the downtime.
        self.node.broadcast_component(self.tag, ("status", self._next_deliver))
        self.node.set_timer(0.0, self._post_recovery_kick, label="paxos.rekick")

    def _post_recovery_kick(self) -> None:
        if self._stopped or self.node.crashed:
            return
        if self.omega.leader() == self.node.pid and not self._is_leader:
            self._become_leader()
        self._ensure_driving()
