"""The Ω failure detector.

Ω is the weakest failure detector for consensus (Chandra, Hadzilacos &
Toueg): eventually, all correct processes trust the same correct process as
leader. We implement it with heartbeats over the simulated network:

- every node broadcasts a heartbeat each ``heartbeat_interval``;
- a node suspects a peer it has not heard from within ``timeout``;
- ``leader()`` is the smallest pid not currently suspected.

In the paper's *stable runs* (no partitions, bounded delays) the detector is
eventually accurate, so TOB makes progress. In *asynchronous runs* (lasting
partitions), nodes in different components elect different leaders and
consensus may never terminate — exactly the behaviour Theorem 3 relies on.

Heartbeat timers are real simulation events, so experiment harnesses call
:meth:`stop` when the workload is done to let the simulation quiesce.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.node import RoutingNode
from repro.sim.trace import TraceLog

_TAG = "omega"


class OmegaFailureDetector:
    """Heartbeat-based eventual leader election for one node."""

    def __init__(
        self,
        node: RoutingNode,
        *,
        heartbeat_interval: float = 5.0,
        timeout: float = 20.0,
        on_leader_change: Optional[Callable[[int], None]] = None,
        trace: Optional[TraceLog] = None,
        tag: str = _TAG,
    ) -> None:
        if timeout <= heartbeat_interval:
            raise ValueError("timeout must exceed heartbeat_interval")
        self.node = node
        self.heartbeat_interval = heartbeat_interval
        self.timeout = timeout
        self.on_leader_change = on_leader_change
        self.trace = trace
        self.tag = tag
        self._last_heard: Dict[int, float] = {
            pid: node.now for pid in range(node.n_processes)
        }
        self._stopped = False
        self._tick_timer = None
        self._current_leader = self._compute_leader()
        node.register_component(tag, self._on_heartbeat)
        node.register_crash_hooks(on_recover=self._on_node_recover)

    def start(self) -> None:
        """Begin emitting heartbeats and checking suspicions.

        The suspicion window opens *now*: every peer is credited with a
        fresh ``_last_heard`` so a detector started late (simulated time
        already past ``timeout``) gives everyone one timeout's grace
        instead of instantly suspecting the whole cluster and electing
        itself leader until the first heartbeat round straightens it out.
        """
        self._stopped = False
        now = self.node.now
        for pid in self._last_heard:
            self._last_heard[pid] = now
        self._tick()

    def stop(self) -> None:
        """Stop all periodic activity so the simulation can quiesce."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped or self.node.crashed:
            # Crashed: leave no timer behind — recovery restarts the loop
            # through the node's on_recover hook (pre-fix, this early
            # return silently killed heartbeats forever, so a recovered
            # node stayed suspected and its own leader view went stale).
            return
        self.node.broadcast_component(self.tag, None)
        self._last_heard[self.node.pid] = self.node.now
        self._recheck_leader()
        self._tick_timer = self.node.set_timer(
            self.heartbeat_interval, self._tick, label="omega.tick"
        )

    def _on_node_recover(self) -> None:
        """Resume heartbeats after a crash–recovery, with a fresh window.

        ``_last_heard`` is volatile, so every peer is re-credited from the
        recovery instant (the same grace rule :meth:`start` applies). The
        heartbeat loop restarts one simulation step later: recovery hooks
        of the other components on this node (e.g. a Paxos engine reloading
        its acceptor state) may still be pending, and a leader-change
        callback must not fire into half-rebuilt state.
        """
        if self._stopped:
            return
        now = self.node.now
        for pid in self._last_heard:
            self._last_heard[pid] = now
        if self._tick_timer is not None and self._tick_timer.pending:
            self._tick_timer.cancel()
        self._tick_timer = None
        self.node.set_timer(0.0, self._tick, label="omega.restart")

    def _on_heartbeat(self, sender: int, _payload: None) -> None:
        self._last_heard[sender] = self.node.now
        self._recheck_leader()

    def suspected(self) -> List[int]:
        """Return the pids currently suspected of having crashed."""
        now = self.node.now
        return [
            pid
            for pid, heard in self._last_heard.items()
            if pid != self.node.pid and now - heard > self.timeout
        ]

    def _compute_leader(self) -> int:
        suspects = set(self.suspected())
        candidates = [
            pid for pid in range(self.node.n_processes) if pid not in suspects
        ]
        # Our own pid is never suspected, so candidates is never empty.
        return min(candidates)

    def _recheck_leader(self) -> None:
        new_leader = self._compute_leader()
        if new_leader != self._current_leader:
            self._current_leader = new_leader
            if self.trace is not None:
                self.trace.record(
                    self.node.now,
                    self.node.pid,
                    "omega.leader",
                    leader=new_leader,
                )
            if self.on_leader_change is not None:
                self.on_leader_change(new_leader)

    def leader(self) -> int:
        """The process currently trusted as leader by this node."""
        # Recompute lazily so time passing without messages is reflected.
        self._recheck_leader()
        return self._current_leader
