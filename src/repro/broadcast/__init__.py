"""Broadcast primitives: RB, Ω, and two Total Order Broadcast engines.

The paper replaces Bayou's primary with Total Order Broadcast (TOB), which
requires solving consensus and hence (in stable runs) a failure detector at
least as strong as Ω. This package provides:

- :class:`~repro.broadcast.reliable.ReliableBroadcast` — eager, uniform RB
  with relay-on-first-delivery, deduplicated by message key;
- :class:`~repro.broadcast.failure_detector.OmegaFailureDetector` — a
  heartbeat-based eventual leader oracle;
- :class:`~repro.broadcast.sequencer.SequencerTOB` — fixed-sequencer TOB
  (the simple reference engine);
- :class:`~repro.broadcast.paxos.PaxosTOB` — Multi-Paxos TOB whose liveness
  depends on Ω, demonstrating the quorum-based non-blocking behaviour from
  Section 2.3 of the paper.

Both TOB engines satisfy the paper's non-standard extra requirements
(Appendix A.2.1): FIFO order per sender, and "RB-delivered by a correct
replica ⇒ eventually TOB-delivered by all correct replicas" in stable runs
(realised by retransmission at the Bayou layer plus at-most-once ordering by
key inside the engines).
"""

from repro.broadcast.failure_detector import OmegaFailureDetector
from repro.broadcast.paxos import PaxosTOB
from repro.broadcast.reliable import ReliableBroadcast
from repro.broadcast.sequencer import SequencerTOB
from repro.broadcast.total_order import TotalOrderBroadcast

__all__ = [
    "OmegaFailureDetector",
    "PaxosTOB",
    "ReliableBroadcast",
    "SequencerTOB",
    "TotalOrderBroadcast",
]
