"""Total Order Broadcast (TOB) interface.

The paper's TOB contract (Section 2.1 and Appendix A.2.1):

1. **Total order**: all replicas TOB-deliver all TOB-delivered messages in
   the same order.
2. **Validity/agreement**: in stable runs, a message TOB-cast by a correct
   replica is eventually TOB-delivered by every correct replica.
3. **FIFO per sender**: TOB respects the order in which each replica
   TOB-casts messages.
4. If a message was both RB-cast and TOB-cast by some replica and RB-delivered
   by a correct replica, eventually all correct replicas TOB-deliver it.
   (Achieved jointly with the Bayou layer: replicas re-submit tentative,
   uncommitted requests; engines order each key at most once.)

Implementations: :class:`~repro.broadcast.sequencer.SequencerTOB` and
:class:`~repro.broadcast.paxos.PaxosTOB`. Both are exercised by the same
contract test-suite in ``tests/test_tob_contract.py``.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, List, Tuple

DeliverFn = Callable[[Hashable, Any], None]

#: Batch delivery: a contiguous run of ordered ``(key, payload)`` entries
#: handed over in one call. The contract is strictly *equivalent* to calling
#: the per-entry :data:`DeliverFn` once per entry in list order — engines may
#: use it to amortize per-delivery overhead, never to change semantics.
DeliverBatchFn = Callable[[List[Tuple[Hashable, Any]]], None]


class TotalOrderBroadcast:
    """Abstract per-node TOB endpoint."""

    def tob_cast(self, key: Hashable, payload: Any) -> None:
        """Submit ``payload`` (idempotently, by ``key``) for total ordering."""
        raise NotImplementedError

    def stop(self) -> None:
        """Stop periodic activity (retransmissions, heartbeats)."""
        raise NotImplementedError

    def prewarm(self) -> None:
        """Establish ordering capacity ahead of traffic, if the engine can.

        A leader-based engine uses this to run its phase-1 election *before*
        the first submission arrives (a migration prewarms the destination
        shard's engine while the barrier and transfer are still in flight).
        Engines with nothing to warm — the sequencer — inherit this no-op.
        """

    @property
    def delivered_sequence(self) -> list:
        """The keys TOB-delivered at this node, in delivery order."""
        raise NotImplementedError
