"""A purely eventually consistent store (Dynamo/Cassandra-style baseline).

One ordering method only: last-writer-wins by ``(timestamp, dot)``. Every
update is applied idempotently on arrival; there is no speculation, no
rollback and no re-execution, so clients can never observe two inconsistent
orderings — the reason, per Section 2.2, that "the majority of eventually
consistent systems … are free of this anomaly". The price is semantics:
operations must be *blind* register writes (or reads); order-sensitive
return values (putIfAbsent, guarded withdrawals) are unsupported, which is
the exact gap Bayou's strong operations fill.

All operations are weak; ``invoke(strong=True)`` raises.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.baselines.common import BaselineCluster
from repro.core.request import Dot, Req
from repro.datatypes.base import DataType, DbView, Operation
from repro.framework.history import WEAK
from repro.net.node import RoutingNode

_TAG = "ec"


class UnsupportedOperationError(ValueError):
    """Raised for operations an LWW store cannot express."""


class _LwwView(DbView):
    """A view over (timestamp-tagged) registers applying LWW on write."""

    def __init__(self, store: "_ECReplica", stamp: Tuple[float, Dot]) -> None:
        self._store = store
        self._stamp = stamp
        self.wrote: Dict[Hashable, Any] = {}
        self.read_any = False

    def read(self, register_id: Hashable) -> Any:
        self.read_any = True
        cell = self._store.registers.get(register_id)
        return cell[1] if cell is not None else None

    def write(self, register_id: Hashable, value: Any) -> None:
        self.wrote[register_id] = value
        cell = self._store.registers.get(register_id)
        if cell is None or cell[0] < self._stamp:
            self._store.registers[register_id] = (self._stamp, value)


class _ECReplica:
    """One replica: a map of LWW registers plus the applied-update log."""

    def __init__(self, node: RoutingNode, cluster: "ECStoreCluster") -> None:
        self.node = node
        self.cluster = cluster
        #: register -> ((timestamp, dot), value)
        self.registers: Dict[Hashable, Tuple[Tuple[float, Dot], Any]] = {}
        #: applied updating requests, for perceived traces (kept req-sorted).
        self.applied: List[Req] = []
        self.applied_dots = set()
        node.register_component(_TAG, self._on_message)

    def apply(self, req: Req) -> Any:
        """Execute ``req`` against the LWW registers; returns the response."""
        view = _LwwView(self, (req.timestamp, req.dot))
        response = self.cluster.datatype.execute(req.op, view)
        if view.wrote and view.read_any:
            raise UnsupportedOperationError(
                f"{req.op!r} reads and writes; an LWW store supports only "
                "blind updates and reads (the paper's point about limited "
                "semantics of purely eventually consistent stores)"
            )
        if view.wrote and req.dot not in self.applied_dots:
            self.applied_dots.add(req.dot)
            position = len(self.applied)
            while position > 0 and req < self.applied[position - 1]:
                position -= 1
            self.applied.insert(position, req)
        return response

    def trace(self) -> Tuple[Dot, ...]:
        """Applied updates in LWW (request) order — the perceived trace."""
        return tuple(r.dot for r in self.applied)

    def _on_message(self, sender: int, req: Req) -> None:
        if req.dot in self.applied_dots:
            return
        self.apply(req)
        # Relay for uniform reliability, as in eager reliable broadcast.
        self.node.broadcast_component(_TAG, req)


class ECStoreCluster(BaselineCluster):
    """A cluster of LWW replicas with RB-style dissemination."""

    def __init__(
        self,
        datatype: DataType,
        n_replicas: int = 3,
        **kwargs: Any,
    ) -> None:
        super().__init__(datatype, n_replicas, **kwargs)
        self.replicas: List[_ECReplica] = []
        self._event_numbers = [0] * n_replicas
        for pid in range(n_replicas):
            node = RoutingNode(self.sim, self.network, pid, name=f"EC{pid}")
            self.replicas.append(_ECReplica(node, self))

    def invoke(self, pid: int, op: Operation, *, strong: bool = False) -> Req:
        """Apply locally, respond immediately, gossip the update."""
        if strong:
            raise UnsupportedOperationError(
                "an eventually consistent store has no strong operations"
            )
        self._event_numbers[pid] += 1
        req = Req(
            timestamp=self.clocks[pid].now(),
            dot=(pid, self._event_numbers[pid]),
            strong=False,
            op=op,
        )
        record = self._stage(req, WEAK, tob_cast=False)
        replica = self.replicas[pid]
        response = replica.apply(req)
        # Perceived trace: updates applied here, in LWW order, before us.
        trace = tuple(dot for dot in replica.trace() if dot != req.dot)
        self._record_response(req.dot, response, trace)
        if req.dot in replica.applied_dots:
            replica.node.broadcast_component(_TAG, req)
        return req

    def converged(self) -> bool:
        """All replicas hold identical register maps."""
        registers = [replica.registers for replica in self.replicas]
        return all(regs == registers[0] for regs in registers[1:])
