"""Shared plumbing for baseline clusters: staging, history construction.

Baselines mirror the relevant slice of :class:`repro.core.cluster.
BayouCluster`'s API (``invoke``/``schedule_invoke``/``run*``/
``build_history``/``converged``) so experiments can swap systems freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.request import Dot, Req
from repro.datatypes.base import DataType, Operation
from repro.framework.history import PENDING, History, HistoryEvent
from repro.net.faults import MessageFilter
from repro.net.network import FixedLatency, Network
from repro.net.partition import PartitionSchedule
from repro.sim.clock import DriftingClock
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@dataclass
class StagedRecord:
    """Mutable invocation record, frozen into a HistoryEvent at the end."""

    dot: Dot
    session: int
    op: Operation
    level: str
    timestamp: float
    invoke_time: float
    readonly: bool
    tob_cast: bool
    rval: Any = PENDING
    return_time: Optional[float] = None
    perceived: Optional[Tuple[Dot, ...]] = None
    responded: bool = False
    seq: int = 0


class BaselineCluster:
    """Base class wiring simulator + network and recording histories."""

    def __init__(
        self,
        datatype: DataType,
        n_replicas: int,
        *,
        message_delay: float = 1.0,
        partitions: Optional[PartitionSchedule] = None,
        filters: Optional[MessageFilter] = None,
        extra_processes: int = 0,
    ) -> None:
        self.datatype = datatype
        self.n_replicas = n_replicas
        self.sim = Simulator()
        self.trace = TraceLog()
        self.partitions = partitions or PartitionSchedule(
            n_replicas + extra_processes
        )
        self.filters = filters or MessageFilter()
        self.network = Network(
            self.sim,
            n_replicas + extra_processes,
            latency=FixedLatency(message_delay),
            partitions=self.partitions,
            filters=self.filters,
            trace=self.trace,
        )
        self.clocks = [
            DriftingClock(self.sim) for _ in range(n_replicas)
        ]
        self._staged: Dict[Dot, StagedRecord] = {}
        self._invocation_seq = 0
        self._horizon: Optional[float] = None

    # ------------------------------------------------------------------
    # Staging helpers used by subclasses
    # ------------------------------------------------------------------
    def _stage(
        self,
        req: Req,
        level: str,
        *,
        tob_cast: bool,
    ) -> StagedRecord:
        self._invocation_seq += 1
        record = StagedRecord(
            dot=req.dot,
            session=req.dot[0],
            op=req.op,
            level=level,
            timestamp=req.timestamp,
            invoke_time=self.sim.now,
            readonly=self.datatype.is_readonly(req.op),
            tob_cast=tob_cast,
            seq=self._invocation_seq,
        )
        self._staged[req.dot] = record
        return record

    def _record_response(
        self, dot: Dot, response: Any, perceived: Tuple[Dot, ...]
    ) -> None:
        record = self._staged[dot]
        if record.responded:
            return
        record.responded = True
        record.rval = response
        record.return_time = self.sim.now
        record.perceived = perceived

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def run_until_quiescent(self) -> float:
        return self.sim.run_until_quiescent()

    def schedule_invoke(
        self, at: float, pid: int, op: Operation, *, strong: bool = False
    ) -> None:
        self.sim.schedule_at(
            at,
            lambda: self.invoke(pid, op, strong=strong),
            label=f"invoke {pid} {op}",
        )

    def invoke(self, pid: int, op: Operation, *, strong: bool = False):
        raise NotImplementedError

    def mark_horizon(self) -> float:
        """Record the stabilisation horizon for EV/CPar checks."""
        self._horizon = self.sim.now
        return self._horizon

    # ------------------------------------------------------------------
    # History
    # ------------------------------------------------------------------
    def _tob_order(self) -> List[Dot]:
        """Subclasses with a total order override this."""
        return []

    def build_history(self, *, well_formed: bool = True) -> History:
        tob_index = {dot: i for i, dot in enumerate(self._tob_order())}
        events = []
        for record in self._staged.values():
            events.append(
                HistoryEvent(
                    eid=record.dot,
                    session=record.session,
                    op=record.op,
                    level=record.level,
                    invoke_time=record.invoke_time,
                    return_time=record.return_time,
                    rval=record.rval if record.responded else PENDING,
                    timestamp=record.timestamp,
                    readonly=record.readonly,
                    tob_cast=record.tob_cast,
                    tob_no=tob_index.get(record.dot),
                    perceived_trace=record.perceived,
                    seq=record.seq,
                )
            )
        return History(
            events, self.datatype, horizon=self._horizon, well_formed=well_formed
        )
