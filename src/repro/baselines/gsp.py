"""The Global Sequence Protocol (GSP) baseline [Burckhardt et al., ECOOP'15].

Clients keep a *committed prefix* received from the cloud plus their *own*
pending operations; an operation executes immediately against
``committed · own_pending`` and responds. The cloud (here: a dedicated
sequencer process) establishes the global sequence; receiving it may roll
back and re-execute the client's pending suffix.

Two properties matter for the paper's Section 6 discussion:

- a client never observes *another* client's operation before the cloud has
  ordered it, so no two clients can disagree on the relative order of
  operations either of them has seen — **no temporary operation
  reordering** (the ranks of observed events never fluctuate, because new
  committed operations are only ever *inserted* relative to unobserved
  ones);
- when the cloud is unreachable, clients stop observing each other entirely
  — **no mutual-visibility progress** (EV fails during the outage), which
  is exactly why Theorem 1 does not apply to GSP.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.common import BaselineCluster
from repro.core.request import Dot, Req
from repro.datatypes.base import DataType, Operation, PlainDb
from repro.framework.history import WEAK
from repro.net.node import RoutingNode

_TAG = "gsp"


class _GSPClient:
    """One GSP client: committed prefix + own pending suffix."""

    def __init__(self, node: RoutingNode, cluster: "GSPCluster", cloud_pid: int) -> None:
        self.node = node
        self.cluster = cluster
        self.cloud_pid = cloud_pid
        self.committed: List[Req] = []
        self.committed_dots: set = set()
        self.pending: List[Req] = []
        node.register_component(_TAG, self._on_message)

    def local_sequence(self) -> List[Req]:
        """The client's current view: committed · own pending."""
        return self.committed + self.pending

    def submit(self, req: Req) -> Any:
        """Execute against the local view, respond, and send to the cloud."""
        trace = tuple(r.dot for r in self.local_sequence())
        db = PlainDb()
        for prior in self.local_sequence():
            self.cluster.datatype.execute(prior.op, db)
        response = self.cluster.datatype.execute(req.op, db)
        self.pending.append(req)
        self.node.send_component(self.cloud_pid, _TAG, ("submit", req))
        return response, trace

    def _on_message(self, sender: int, message: Tuple) -> None:
        kind, payload = message
        if kind == "commit":
            req = payload
            if req.dot in self.committed_dots:
                return
            self.committed.append(req)
            self.committed_dots.add(req.dot)
            self.pending = [r for r in self.pending if r.dot != req.dot]


class _GSPCloud:
    """The cloud: a total-order service for client submissions."""

    def __init__(self, node: RoutingNode, n_clients: int) -> None:
        self.node = node
        self.n_clients = n_clients
        self.sequence: List[Req] = []
        self.seen: set = set()
        node.register_component(_TAG, self._on_message)

    def _on_message(self, sender: int, message: Tuple) -> None:
        kind, payload = message
        if kind == "submit":
            req = payload
            if req.dot in self.seen:
                return
            self.seen.add(req.dot)
            self.sequence.append(req)
            for pid in range(self.n_clients):
                self.node.send_component(pid, _TAG, ("commit", req))


class GSPCluster(BaselineCluster):
    """GSP clients around a cloud sequencer (process id ``n_replicas``)."""

    def __init__(
        self,
        datatype: DataType,
        n_replicas: int = 3,
        **kwargs: Any,
    ) -> None:
        super().__init__(datatype, n_replicas, extra_processes=1, **kwargs)
        self.cloud_pid = n_replicas
        cloud_node = RoutingNode(
            self.sim, self.network, self.cloud_pid, name="cloud"
        )
        self.cloud = _GSPCloud(cloud_node, n_replicas)
        self.clients: List[_GSPClient] = []
        self._event_numbers = [0] * n_replicas
        for pid in range(n_replicas):
            node = RoutingNode(self.sim, self.network, pid, name=f"GSP{pid}")
            self.clients.append(_GSPClient(node, self, self.cloud_pid))

    def invoke(self, pid: int, op: Operation, *, strong: bool = False) -> Req:
        """GSP operations are weak: immediate local response, cloud ordering."""
        if strong:
            raise ValueError(
                "GSP has no strong operations; its prefix is totally ordered "
                "but clients never wait for it"
            )
        self._event_numbers[pid] += 1
        req = Req(
            timestamp=self.clocks[pid].now(),
            dot=(pid, self._event_numbers[pid]),
            strong=False,
            op=op,
        )
        self._stage(req, WEAK, tob_cast=True)
        response, trace = self.clients[pid].submit(req)
        self._record_response(req.dot, response, trace)
        return req

    def _tob_order(self) -> List[Dot]:
        return [req.dot for req in self.cloud.sequence]

    def converged(self) -> bool:
        """All clients committed the full cloud sequence, nothing pending."""
        target = [req.dot for req in self.cloud.sequence]
        for client in self.clients:
            if [r.dot for r in client.committed] != target or client.pending:
                return False
        return True
