"""State machine replication (the strongly consistent baseline).

Every operation — there is no weak/strong distinction — is TOB-cast and
executed by every replica in the TOB order; the origin replica returns the
response computed at that committed execution. This yields sequential
consistency for *all* operations (indeed linearizability, given TOB), with
the classic cost the paper opens with: no response can be produced while
consensus is blocked, e.g. during a partition that isolates the sequencer
or breaks the quorum.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.common import BaselineCluster
from repro.broadcast.sequencer import SequencerTOB
from repro.core.request import Dot, Req
from repro.core.state_object import StateObject
from repro.datatypes.base import DataType, Operation
from repro.framework.history import STRONG
from repro.net.node import RoutingNode


class _SMRReplica:
    """A deterministic state machine fed by TOB."""

    def __init__(
        self, node: RoutingNode, cluster: "SMRCluster", sequencer_pid: int
    ) -> None:
        self.node = node
        self.cluster = cluster
        self.state = StateObject(cluster.datatype)
        self.log: List[Req] = []
        self.tob = SequencerTOB(
            node, self._on_deliver, sequencer_pid=sequencer_pid
        )

    def submit(self, req: Req) -> None:
        self.tob.tob_cast(req.dot, req)

    def _on_deliver(self, key: Dot, req: Req) -> None:
        trace = tuple(r.dot for r in self.log)
        response = self.state.execute(req)
        self.log.append(req)
        if req.dot[0] == self.node.pid:
            self.cluster._record_response(req.dot, response, trace)


class SMRCluster(BaselineCluster):
    """All-strong state machine replication over sequencer TOB."""

    def __init__(
        self,
        datatype: DataType,
        n_replicas: int = 3,
        *,
        sequencer_pid: int = 0,
        **kwargs: Any,
    ) -> None:
        super().__init__(datatype, n_replicas, **kwargs)
        self.replicas: List[_SMRReplica] = []
        self._event_numbers = [0] * n_replicas
        for pid in range(n_replicas):
            node = RoutingNode(self.sim, self.network, pid, name=f"SMR{pid}")
            self.replicas.append(_SMRReplica(node, self, sequencer_pid))

    def invoke(self, pid: int, op: Operation, *, strong: bool = True) -> Req:
        """Submit ``op``; the response arrives when TOB commits it here."""
        self._event_numbers[pid] += 1
        req = Req(
            timestamp=self.clocks[pid].now(),
            dot=(pid, self._event_numbers[pid]),
            strong=True,
            op=op,
        )
        self._stage(req, STRONG, tob_cast=True)
        self.replicas[pid].submit(req)
        return req

    def _tob_order(self) -> List[Dot]:
        sequences = [replica.tob.delivered_sequence for replica in self.replicas]
        longest = max(sequences, key=len, default=[])
        for sequence in sequences:
            assert sequence == longest[: len(sequence)], "TOB order diverged"
        return longest

    def converged(self) -> bool:
        snapshots = [replica.state.snapshot() for replica in self.replicas]
        logs = [[r.dot for r in replica.log] for replica in self.replicas]
        return all(s == snapshots[0] for s in snapshots[1:]) and all(
            log == logs[0] for log in logs[1:]
        )
