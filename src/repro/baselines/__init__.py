"""Baseline systems the paper positions Bayou against.

- :class:`~repro.baselines.ec_store.ECStoreCluster` — a Dynamo/Cassandra-
  style eventually consistent store: one ordering method (timestamps / LWW),
  no speculation visible to clients, hence no temporary reordering — and,
  as the paper stresses, correspondingly limited semantics (blind writes).
- :class:`~repro.baselines.smr.SMRCluster` — state machine replication: all
  operations through TOB, strongly consistent, blocks under partitions.
- :class:`~repro.baselines.gsp.GSPCluster` — the Global Sequence Protocol
  [Burckhardt et al., ECOOP'15]: clients speculate only over their *own*
  pending operations on top of a cloud-established prefix; no inter-client
  tentative visibility, hence no temporary reordering, but no progress of
  mutual visibility when the cloud is unreachable (so Theorem 1 does not
  apply to it).

All baselines run on the same simulator/network substrate as Bayou and
produce framework-checkable histories, so the guarantee matrix (E7) and the
performance envelope (E8) compare protocols on equal footing.
"""

from repro.baselines.ec_store import ECStoreCluster
from repro.baselines.gsp import GSPCluster
from repro.baselines.smr import SMRCluster

__all__ = ["ECStoreCluster", "GSPCluster", "SMRCluster"]
