"""Execution runtimes: one protocol codebase, two substrates.

- :class:`Runtime` — the narrow seam (clock, timers, transport) every
  protocol component is written against;
- :class:`SimRuntime` — the deterministic discrete-event backend
  (bit-reproducible; all tests and formal checks run here);
- :class:`AsyncioRuntime` — asyncio over real TCP sockets between OS
  processes (wall-clock experiments, ``python -m repro serve``).

See ``docs/ARCHITECTURE.md`` ("Execution runtimes") for the contract each
backend does and does not provide.
"""

from repro.runtime.base import Runtime, RuntimeTimer, RuntimeTimeView
from repro.runtime.sim import SimRuntime
from repro.runtime.wire import FrameDecoder, WireError, decode_body, encode_frame

__all__ = [
    "FrameDecoder",
    "Runtime",
    "RuntimeTimeView",
    "RuntimeTimer",
    "SimRuntime",
    "WireError",
    "decode_body",
    "encode_frame",
]
