"""``python -m repro serve`` — one real Bayou replica over TCP.

This is the asyncio deployment of the *identical* protocol stack the
simulator runs: a :class:`~repro.net.node.RoutingNode` hosting the
dissemination endpoint (RB or anti-entropy), a TOB engine (sequencer or
Multi-Paxos with Ω) and a :class:`~repro.core.replica.BayouReplica` — all
constructed exactly as :class:`~repro.core.cluster.BayouCluster` builds
them, but over an :class:`~repro.runtime.asyncio_net.AsyncioRuntime`
instead of a :class:`~repro.runtime.sim.SimRuntime`. No protocol file
knows which one it got.

A cluster is described by a JSON spec file shared by all members::

    {"n_replicas": 3, "host": "127.0.0.1", "ports": [7701, 7702, 7703],
     "datatype": "kvstore", "tob_engine": "sequencer"}

Start each member in its own OS process::

    python -m repro serve --replica 0 --config cluster.json

Clients speak the framed RPC protocol on the replica's port (see
:class:`repro.runtime.launcher.RealtimeClient`): ``ping`` (health),
``invoke`` (submit an operation, optionally waiting for its tentative
response or its committed/stable fate), ``status`` (committed order,
backlog, state snapshot — what convergence checks read) and ``shutdown``.
``SIGTERM``/``SIGINT`` shut the process down cleanly (exit code 0).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.broadcast.anti_entropy import AntiEntropy
from repro.broadcast.failure_detector import OmegaFailureDetector
from repro.broadcast.paxos import PaxosTOB
from repro.broadcast.reliable import ReliableBroadcast
from repro.broadcast.sequencer import SequencerTOB
from repro.core.config import BayouConfig
from repro.core.durability import open_store
from repro.core.replica import BayouReplica
from repro.core.request import Dot, Req
from repro.datatypes import BankAccounts, Counter, KVStore, Register
from repro.net.node import RoutingNode
from repro.obs import Telemetry
from repro.runtime.asyncio_net import AsyncioRuntime
from repro.sim.clock import DriftingClock

#: Datatypes a real deployment can serve (name -> zero-arg factory).
DATATYPES = {
    "kvstore": KVStore,
    "counter": Counter,
    "bank": BankAccounts,
    "register": Register,
}


@dataclass
class ClusterSpec:
    """The shared description of one realtime deployment."""

    n_replicas: int = 3
    host: str = "127.0.0.1"
    ports: List[int] = field(default_factory=list)
    datatype: str = "kvstore"
    tob_engine: str = "sequencer"
    dissemination: str = "rb"
    sequencer_pid: int = 0
    #: Real seconds per internal replica step; 0 = as fast as the loop runs.
    exec_delay: float = 0.0
    ae_sync_interval: float = 0.05
    heartbeat_interval: float = 0.5
    failure_timeout: float = 2.0
    paxos_retry_interval: float = 1.0
    retransmit_interval: Optional[float] = None
    durability: str = "none"
    durability_dir: Optional[str] = None
    #: Arm the telemetry plane: causal op traces (propagated across TCP
    #: frames) and transport/engine instruments, read via the
    #: ``telemetry`` RPC verb.
    telemetry: bool = False

    def validate(self) -> None:
        if self.datatype not in DATATYPES:
            raise ValueError(
                f"unknown datatype {self.datatype!r}; "
                f"choose from {sorted(DATATYPES)}"
            )
        if len(self.ports) != self.n_replicas:
            raise ValueError(
                f"spec needs exactly n_replicas={self.n_replicas} ports, "
                f"got {len(self.ports)}"
            )
        self.to_config().validate()

    def to_config(self) -> BayouConfig:
        """The :class:`BayouConfig` equivalent of this spec.

        Perceived-trace capture and the diagnostic trace log are off: they
        exist for the formal framework's deterministic checks, and a real
        deployment pays their O(n²) memory for nothing.
        """
        return BayouConfig(
            n_replicas=self.n_replicas,
            exec_delay=self.exec_delay,
            tob_engine=self.tob_engine,
            sequencer_pid=self.sequencer_pid,
            dissemination=self.dissemination,
            ae_sync_interval=self.ae_sync_interval,
            heartbeat_interval=self.heartbeat_interval,
            failure_timeout=self.failure_timeout,
            paxos_retry_interval=self.paxos_retry_interval,
            retransmit_interval=self.retransmit_interval,
            durability=self.durability,
            durability_dir=self.durability_dir,
            record_perceived_traces=False,
            enable_trace=False,
            enable_telemetry=self.telemetry,
        )

    def peers(self) -> Dict[int, Tuple[str, int]]:
        return {pid: (self.host, self.ports[pid]) for pid in range(self.n_replicas)}

    def to_json(self) -> Dict[str, Any]:
        return {
            "n_replicas": self.n_replicas,
            "host": self.host,
            "ports": list(self.ports),
            "datatype": self.datatype,
            "tob_engine": self.tob_engine,
            "dissemination": self.dissemination,
            "sequencer_pid": self.sequencer_pid,
            "exec_delay": self.exec_delay,
            "ae_sync_interval": self.ae_sync_interval,
            "heartbeat_interval": self.heartbeat_interval,
            "failure_timeout": self.failure_timeout,
            "paxos_retry_interval": self.paxos_retry_interval,
            "retransmit_interval": self.retransmit_interval,
            "durability": self.durability,
            "durability_dir": self.durability_dir,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ClusterSpec":
        spec = cls(**data)
        spec.validate()
        return spec

    @classmethod
    def load(cls, path: str) -> "ClusterSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2)


class ReplicaServer:
    """One replica process: the full Bayou stack on an AsyncioRuntime."""

    def __init__(self, spec: ClusterSpec, pid: int) -> None:
        spec.validate()
        if not (0 <= pid < spec.n_replicas):
            raise ValueError(f"replica {pid} out of range 0..{spec.n_replicas - 1}")
        self.spec = spec
        self.pid = pid
        config = spec.to_config()
        #: Same plane as the simulator's, timestamped with wall-clock
        #: runtime seconds instead of sim time.
        self.telemetry: Optional[Telemetry] = (
            Telemetry() if spec.telemetry else None
        )
        self.runtime = AsyncioRuntime(
            pid, spec.peers(), telemetry=self.telemetry
        )
        self.node = RoutingNode(self.runtime, pid, name=f"rt-R{pid}")
        clock = DriftingClock(self.runtime.timeview)
        store = None
        if config.durability == "jsonl":
            root = config.durability_dir
            if root is None:
                raise ValueError("jsonl durability needs durability_dir in the spec")
            store = open_store("jsonl", directory=os.path.join(root, f"node{pid}"))
        elif config.durability != "none":
            store = open_store(config.durability)
        self.replica = BayouReplica(
            self.node,
            clock,
            DATATYPES[spec.datatype](),
            config,
            responder=self._on_response,
            store=store,
            telemetry=self.telemetry,
        )
        # Identical component wiring to BayouCluster._build, minus traces.
        self.omega: Optional[OmegaFailureDetector] = None
        if config.dissemination == "anti_entropy":
            self.replica.rb = AntiEntropy(
                self.node,
                self.replica.on_rb_deliver,
                deliver_batch=self.replica.on_rb_deliver_batch,
                sync_interval=config.ae_sync_interval,
                store=store,
                telemetry=self.telemetry,
            )
        else:
            self.replica.rb = ReliableBroadcast(
                self.node, self.replica.on_rb_deliver, store=store
            )
        if config.tob_engine == "sequencer":
            self.replica.tob = SequencerTOB(
                self.node,
                self.replica.on_tob_deliver,
                sequencer_pid=config.sequencer_pid,
                store=store,
                telemetry=self.telemetry,
            )
        else:
            self.omega = OmegaFailureDetector(
                self.node,
                heartbeat_interval=config.heartbeat_interval,
                timeout=config.failure_timeout,
            )
            self.replica.tob = PaxosTOB(
                self.node,
                self.replica.on_tob_deliver,
                self.omega,
                retry_interval=config.paxos_retry_interval,
                store=store,
                telemetry=self.telemetry,
            )
        self.replica.commit_listener = self._on_commit
        self.runtime.rpc_handler = self._handle_rpc
        #: dot -> futures resolved at first response / at commit.
        self._response_waiters: Dict[Dot, List[asyncio.Future]] = {}
        self._stable_waiters: Dict[Dot, List[asyncio.Future]] = {}
        self._responses: Dict[Dot, Any] = {}
        self._done: Optional[asyncio.Future] = None

    # ------------------------------------------------------------------
    # Replica plumbing
    # ------------------------------------------------------------------
    def _on_response(
        self, req: Req, response: Any, perceived: Tuple[Dot, ...], stable: bool
    ) -> None:
        self._responses[req.dot] = response
        if self.telemetry and req.dot[0] == self.pid:
            self.telemetry.op_span(
                self.runtime.now(), self.pid, "respond", req.dot,
                "respond", "root", stable=stable,
            )
        for future in self._response_waiters.pop(req.dot, []):
            if not future.done():
                future.set_result(response)

    def _on_commit(self, req: Req) -> None:
        if self.telemetry and req.dot[0] == self.pid:
            # Every served op is TOB-broadcast (base protocol), so its
            # stabilisation always hangs off the commit — the same edge
            # the simulator's cluster surface records for broadcast ops.
            self.telemetry.op_span(
                self.runtime.now(), self.pid, "stable", req.dot,
                "stable", "commit",
            )
        for future in self._stable_waiters.pop(req.dot, []):
            if not future.done():
                future.set_result(True)

    # ------------------------------------------------------------------
    # RPC surface
    # ------------------------------------------------------------------
    async def _handle_rpc(self, verb: str, args: Dict[str, Any]) -> Any:
        if verb == "ping":
            return {"pid": self.pid, "time": self.runtime.now(), "ok": True}
        if verb == "invoke":
            return await self._rpc_invoke(args)
        if verb == "status":
            return self._rpc_status()
        if verb == "telemetry":
            if self.telemetry is None:
                return {"enabled": False}
            return {
                "enabled": True,
                "spans": self.telemetry.spans_jsonable(),
                "metrics": self.telemetry.registry.snapshot(),
            }
        if verb == "shutdown":
            if self._done is not None and not self._done.done():
                self._done.set_result("rpc")
            return {"ok": True}
        raise ValueError(f"unknown RPC verb {verb!r}")

    async def _rpc_invoke(self, args: Dict[str, Any]) -> Dict[str, Any]:
        op = args["op"]
        strong = bool(args.get("strong", False))
        wait = args.get("wait", "response")
        if wait not in ("none", "response", "stable"):
            raise ValueError(f"unknown wait mode {wait!r}")
        loop = asyncio.get_running_loop()
        response_future: asyncio.Future = loop.create_future()
        stable_future: asyncio.Future = loop.create_future()
        req = self.replica.invoke(op, strong=strong)
        if self.telemetry:
            self.telemetry.op_span(
                self.runtime.now(), self.pid, "submit", req.dot,
                "submit", "root", strong=strong,
            )
        if req.dot in self._responses:
            response_future.set_result(self._responses[req.dot])
        else:
            self._response_waiters.setdefault(req.dot, []).append(response_future)
        if req.dot in self.replica._committed_dots:
            stable_future.set_result(True)
        else:
            self._stable_waiters.setdefault(req.dot, []).append(stable_future)
        reply: Dict[str, Any] = {"dot": req.dot, "timestamp": req.timestamp}
        if wait == "response":
            reply["value"] = await response_future
        elif wait == "stable":
            await stable_future
            reply["value"] = await response_future
            reply["stable"] = True
        return reply

    def _rpc_status(self) -> Dict[str, Any]:
        replica = self.replica
        return {
            "pid": self.pid,
            "committed": [req.dot for req in replica.committed],
            "tentative": [req.dot for req in replica.tentative],
            "backlog": replica.backlog,
            "executed": len(replica.executed),
            "state": replica.state.snapshot(),
            "curr_event_no": replica.curr_event_no,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.runtime.start()
        if self.omega is not None:
            self.runtime.spawn(self.omega.start, label="omega start")

    async def stop(self) -> None:
        self.replica.stop()
        if self.replica.tob is not None:
            self.replica.tob.stop()
        if isinstance(self.replica.rb, AntiEntropy):
            self.replica.rb.stop()
        if self.omega is not None:
            self.omega.stop()
        await self.runtime.stop()

    async def run_forever(self) -> str:
        """Serve until SIGTERM/SIGINT or a ``shutdown`` RPC; returns why."""
        loop = asyncio.get_running_loop()
        self._done = loop.create_future()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self._signal_shutdown, signal.Signals(signum).name
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await self.start()
        try:
            return await self._done
        finally:
            await self.stop()

    def _signal_shutdown(self, signame: str) -> None:
        if self._done is not None and not self._done.done():
            self._done.set_result(signame)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run one real Bayou replica: the identical protocol stack the "
            "simulator runs, over asyncio TCP between OS processes."
        ),
    )
    parser.add_argument(
        "--replica",
        type=int,
        required=True,
        metavar="N",
        help="which member of the cluster spec this process is (0-based)",
    )
    parser.add_argument(
        "--config",
        required=True,
        metavar="PATH",
        help="path to the shared cluster-spec JSON file",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    spec = ClusterSpec.load(args.config)
    server = ReplicaServer(spec, args.replica)
    host, port = spec.peers()[args.replica]
    print(
        f"replica {args.replica}/{spec.n_replicas} serving "
        f"{spec.datatype} on {host}:{port} "
        f"(tob={spec.tob_engine}, dissemination={spec.dissemination})",
        flush=True,
    )
    reason = asyncio.run(server.run_forever())
    print(f"replica {args.replica} shut down ({reason})", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
