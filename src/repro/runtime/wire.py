"""Wire codec for the asyncio backend: length-prefixed JSON frames.

Messages between real replica processes are encoded with the *same*
reversible tagged encoding the durability layer uses for stable storage
(:func:`repro.core.durability.to_jsonable` / :func:`from_jsonable`,
including every extension codec registered through ``register_codec``).
Anything a replica can persist it can also send, and both surfaces evolve
together: teaching the durability registry a new record type teaches the
wire automatically.

Framing is the classic 4-byte big-endian length prefix followed by a UTF-8
JSON body. :class:`FrameDecoder` is an incremental deframer: feed it
whatever ``bytes`` the socket produced — one frame, twenty frames, or a
single byte — and it yields each completed value exactly once, carrying
partial frames across calls. TCP guarantees a byte *stream*, not message
boundaries, so the decoder must (and does) survive frames split at every
possible offset; the hypothesis round-trip suite feeds frames byte by byte
to pin that down.

>>> decoder = FrameDecoder()
>>> data = encode_frame({"op": "put", "key": ("k", 1)})
>>> [decoder.feed(data[i:i + 1]) for i in range(len(data) - 1)] == [
...     [] for _ in range(len(data) - 1)]
True
>>> decoder.feed(data[-1:])
[{'op': 'put', 'key': ('k', 1)}]
"""

from __future__ import annotations

import json
import struct
from typing import Any, List

from repro.core.durability import DurabilityError, from_jsonable, to_jsonable

__all__ = ["FrameDecoder", "WireError", "decode_body", "encode_frame"]

_HEADER = struct.Struct(">I")

#: Refuse frames larger than this (64 MiB): a corrupt or hostile length
#: prefix must not make the decoder buffer unboundedly.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class WireError(DurabilityError):
    """A frame could not be encoded or decoded."""


def encode_frame(value: Any) -> bytes:
    """Encode ``value`` into one length-prefixed frame."""
    try:
        body = json.dumps(
            to_jsonable(value), separators=(",", ":"), ensure_ascii=False
        ).encode("utf-8")
    except (DurabilityError, TypeError, ValueError) as exc:
        raise WireError(f"unencodable wire value {value!r}: {exc}") from exc
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Any:
    """Decode one frame body (the bytes after the length prefix)."""
    try:
        return from_jsonable(json.loads(body.decode("utf-8")))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"undecodable frame body: {exc}") from exc


class FrameDecoder:
    """Incremental deframer over a TCP byte stream."""

    def __init__(self, *, max_frame: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max_frame = max_frame

    def feed(self, data: bytes) -> List[Any]:
        """Absorb ``data``; return every frame completed by it, in order."""
        self._buffer.extend(data)
        frames: List[Any] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self._max_frame:
                raise WireError(
                    f"frame length {length} exceeds max_frame={self._max_frame}"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            frames.append(decode_body(body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)
