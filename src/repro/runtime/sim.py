"""The deterministic backend: a thin adapter over ``Simulator`` + ``Network``.

``SimRuntime`` is a pure pass-through — every ``schedule`` lands on the
simulator's event queue exactly as a direct ``sim.schedule`` call would
(same sequence numbers, same tie-breaking), and every ``send`` goes through
the simulated network's latency/partition/filter machinery untouched. The
deterministic suite is therefore bit-identical whether components talk to
the simulator directly (the pre-runtime code) or through this adapter.

The :class:`~repro.net.network.Network` stops being a public dependency of
protocol code here: it is this backend's *delivery engine*, reached only
through the :class:`~repro.runtime.base.Runtime` surface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.runtime.base import Runtime, RuntimeTimer
from repro.sim.kernel import ScheduledEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process

# ScheduledEvent already satisfies the RuntimeTimer contract (cancel() +
# .cancelled) — make isinstance agree without subclassing it.
RuntimeTimer.register(ScheduledEvent)


class SimRuntime(Runtime):
    """Deterministic runtime over a :class:`Simulator` and its network.

    The ``network`` is optional: a bare ``SimRuntime(sim)`` supports
    clock + timers only, which is what a standalone
    :class:`~repro.sim.process.Process` constructed from a simulator
    (the legacy signature) needs.
    """

    def __init__(self, sim: "Simulator", network: Optional["Network"] = None) -> None:
        #: The underlying kernel; sim-only harness code (clusters,
        #: scenario builders) may reach through this, protocol code must not.
        self.sim = sim
        #: The delivery engine; ``None`` for timer-only runtimes.
        self.network = network

    def now(self) -> float:
        return self.sim.now

    def schedule(
        self, delay: float, callback: Callable[[], None], *, label: str = ""
    ) -> "ScheduledEvent":
        return self.sim.schedule(delay, callback, label=label)

    def send(self, sender: int, receiver: int, payload: Any) -> None:
        if self.network is None:
            raise RuntimeError("this SimRuntime has no network attached")
        self.network.send(sender, receiver, payload)

    def broadcast(
        self, sender: int, payload: Any, *, include_self: bool = False
    ) -> None:
        if self.network is None:
            raise RuntimeError("this SimRuntime has no network attached")
        self.network.broadcast(sender, payload, include_self=include_self)

    def register(self, process: "Process") -> None:
        if self.network is not None:
            self.network.register(process)

    @property
    def n_processes(self) -> int:
        if self.network is None:
            return 1
        return self.network.n_processes
