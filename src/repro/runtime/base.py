"""The execution-runtime seam.

Every protocol component in this repository — the Bayou replica, the
dissemination endpoints (RB, anti-entropy), the TOB engines (sequencer,
Multi-Paxos), the Ω failure detector — interacts with the outside world
through exactly four capabilities: reading a clock, arming timers, sending
point-to-point messages, and being delivered messages. :class:`Runtime`
names that contract. Code written against it runs unchanged on either
backend:

- :class:`~repro.runtime.sim.SimRuntime` — the deterministic discrete-event
  kernel (:class:`~repro.sim.kernel.Simulator` +
  :class:`~repro.net.network.Network`). Every test, experiment and formal
  check runs here; scheduling order is bit-reproducible.
- :class:`~repro.runtime.asyncio_net.AsyncioRuntime` — a real asyncio event
  loop; messages travel as length-prefixed JSON frames over TCP sockets
  between operating-system processes. Nothing is deterministic beyond what
  the protocols themselves guarantee; this is the backend that produces
  honest wall-clock throughput numbers (experiment E15).

The interface is deliberately narrow. ``now()`` is *the backend's* notion
of time (simulated units or seconds since runtime start) — protocol code
may compare and subtract these values but must not assume a unit.
``schedule`` returns a :class:`RuntimeTimer`, whose ``cancel()`` is the one
and only way to retire a pending callback; cancellation must be honoured by
every backend (see the ``ProcessTimer`` regression tests).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.process import Process


class RuntimeTimer(ABC):
    """Handle for a scheduled callback; the contract is ``cancel()``.

    A cancelled timer never runs its callback, on any backend. Backends
    may subclass or simply return any object with this surface (the sim
    backend returns its :class:`~repro.sim.kernel.ScheduledEvent`, which
    already conforms).
    """

    @abstractmethod
    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""

    @property
    def cancelled(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError


class Runtime(ABC):
    """Clock + timers + transport: everything a protocol process needs."""

    @abstractmethod
    def now(self) -> float:
        """The backend's current time (sim units or wall seconds)."""

    @abstractmethod
    def schedule(
        self, delay: float, callback: Callable[[], None], *, label: str = ""
    ) -> RuntimeTimer:
        """Run ``callback`` once, ``delay`` time units from now."""

    def spawn(
        self, callback: Callable[[], None], *, label: str = ""
    ) -> RuntimeTimer:
        """Run ``callback`` as soon as possible (a zero-delay schedule)."""
        return self.schedule(0.0, callback, label=label)

    @abstractmethod
    def send(self, sender: int, receiver: int, payload: Any) -> None:
        """Send ``payload`` from process ``sender`` to process ``receiver``.

        Best-effort FIFO per link; delivery invokes the receiving
        process's ``deliver(sender, payload)``. Payloads must survive the
        backend's codec — on the sim they pass by reference, on asyncio
        they round-trip through the durability codec registry
        (:mod:`repro.runtime.wire`), so anything a replica persists is
        also sendable.
        """

    def broadcast(
        self, sender: int, payload: Any, *, include_self: bool = False
    ) -> None:
        """Send ``payload`` to every process (optionally the sender too)."""
        for pid in range(self.n_processes):
            if pid == sender and not include_self:
                continue
            self.send(sender, pid, payload)

    @abstractmethod
    def register(self, process: "Process") -> None:
        """Attach a process so inbound messages reach ``process.deliver``."""

    @property
    @abstractmethod
    def n_processes(self) -> int:
        """Number of processes in the deployment (local + remote)."""

    @property
    def timeview(self) -> "RuntimeTimeView":
        """A ``Simulator``-shaped view of this runtime's clock.

        :class:`~repro.sim.clock.DriftingClock` reads time through an
        object exposing a ``.now`` *property*; this adapter lets the same
        clock code run over any runtime.
        """
        return RuntimeTimeView(self)


class RuntimeTimeView:
    """Adapter giving a :class:`Runtime` the ``.now`` property shape."""

    __slots__ = ("_runtime",)

    def __init__(self, runtime: Runtime) -> None:
        self._runtime = runtime

    @property
    def now(self) -> float:
        return self._runtime.now()
