"""Bring up and drive a localhost realtime cluster.

Two pieces, both synchronous (they live on the *client* side of the RPC
protocol, typically inside an experiment script or a test — no event loop
required):

- :class:`RealtimeClient` — one framed-RPC connection to one replica
  process. Blocking socket I/O; every call is request/reply on the same
  connection, so replies cannot interleave.
- :class:`RealtimeCluster` — spawns ``python -m repro serve`` once per
  replica, waits until every member answers a health ping, and offers the
  deployment-level operations an experiment needs: invoke anywhere, poll
  for convergence (identical committed order *and* state snapshot on every
  member), and shut everything down (SIGTERM first, SIGKILL as a last
  resort).

The framing and value encoding are exactly the runtime's wire format
(:mod:`repro.runtime.wire`), so operations constructed with the normal
datatype classmethods — ``KVStore.put("k", "v")`` — cross the wire intact.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from repro.runtime.serve import ClusterSpec
from repro.runtime.wire import FrameDecoder, WireError, encode_frame


def free_ports(count: int, host: str = "127.0.0.1") -> List[int]:
    """Reserve ``count`` distinct free TCP ports on ``host``.

    The sockets are held open while picking (so the kernel cannot hand the
    same port out twice) and closed just before returning; the usual small
    race with other processes is acceptable for localhost test clusters.
    """
    sockets: List[socket.socket] = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class RpcError(WireError):
    """The replica answered an RPC with an error instead of a value."""


class RealtimeClient:
    """A blocking framed-RPC client for one replica process."""

    def __init__(self, host: str, port: int, *, timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder()
        self._next_id = 0

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "RealtimeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def call(self, verb: str, args: Optional[Dict[str, Any]] = None) -> Any:
        """Issue one RPC and block for its reply value."""
        self._next_id += 1
        rpc_id = self._next_id
        frame = encode_frame(
            {"kind": "rpc", "id": rpc_id, "verb": verb, "args": args or {}}
        )
        self._sock.sendall(frame)
        while True:
            data = self._sock.recv(64 * 1024)
            if not data:
                raise ConnectionError(
                    f"replica at {self.host}:{self.port} closed the connection"
                )
            for reply in self._decoder.feed(data):
                if not isinstance(reply, dict) or reply.get("kind") != "reply":
                    raise WireError(f"unexpected frame {reply!r}")
                if reply.get("id") != rpc_id:
                    # One request in flight per connection, so ids match
                    # unless the stream is corrupt.
                    raise WireError(
                        f"reply id {reply.get('id')} != request id {rpc_id}"
                    )
                if "error" in reply:
                    raise RpcError(reply["error"])
                return reply.get("value")

    # Convenience verbs -------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def invoke(
        self, op: Any, *, strong: bool = False, wait: str = "response"
    ) -> Dict[str, Any]:
        return self.call("invoke", {"op": op, "strong": strong, "wait": wait})

    def status(self) -> Dict[str, Any]:
        return self.call("status")


class RealtimeCluster:
    """A 3-replica (by default) localhost deployment of real processes."""

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        *,
        startup_timeout: float = 15.0,
    ) -> None:
        if spec is None:
            spec = ClusterSpec()
        if not spec.ports:
            spec.ports = free_ports(spec.n_replicas, spec.host)
        spec.validate()
        self.spec = spec
        self.startup_timeout = startup_timeout
        self.procs: List[subprocess.Popen] = []
        self._clients: Dict[int, RealtimeClient] = {}
        self._config_path: Optional[str] = None

    # Lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Spawn all replica processes and wait for every health ping."""
        handle, self._config_path = tempfile.mkstemp(
            prefix="repro-realtime-", suffix=".json"
        )
        with os.fdopen(handle, "w", encoding="utf-8") as config_file:
            json.dump(self.spec.to_json(), config_file)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        for pid in range(self.spec.n_replicas):
            self.procs.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "serve",
                        "--replica",
                        str(pid),
                        "--config",
                        self._config_path,
                    ],
                    env=env,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                )
            )
        deadline = time.monotonic() + self.startup_timeout
        for pid in range(self.spec.n_replicas):
            self._await_ready(pid, deadline)

    def _await_ready(self, pid: int, deadline: float) -> None:
        host, port = self.spec.host, self.spec.ports[pid]
        while time.monotonic() < deadline:
            exit_code = self.procs[pid].poll()
            if exit_code is not None:
                output = ""
                if self.procs[pid].stdout is not None:
                    output = self.procs[pid].stdout.read().decode(
                        "utf-8", "replace"
                    )
                raise RuntimeError(
                    f"replica {pid} exited with code {exit_code} during "
                    f"startup:\n{output}"
                )
            try:
                client = RealtimeClient(host, port, timeout=2.0)
            except OSError:
                time.sleep(0.05)
                continue
            try:
                if client.ping().get("ok"):
                    self._clients[pid] = client
                    return
            except (OSError, WireError):
                client.close()
            time.sleep(0.05)
        raise TimeoutError(f"replica {pid} not ready within startup timeout")

    def client(self, pid: int) -> RealtimeClient:
        return self._clients[pid]

    def shutdown(self, *, timeout: float = 10.0) -> None:
        """Stop every replica: SIGTERM, then SIGKILL for stragglers."""
        for client in self._clients.values():
            client.close()
        self._clients.clear()
        for proc in self.procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout
        for proc in self.procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()
        self.procs = []
        if self._config_path is not None and os.path.exists(self._config_path):
            os.unlink(self._config_path)
            self._config_path = None

    def __enter__(self) -> "RealtimeCluster":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    # Deployment-level operations ---------------------------------------
    def invoke(
        self, pid: int, op: Any, *, strong: bool = False, wait: str = "response"
    ) -> Dict[str, Any]:
        return self.client(pid).invoke(op, strong=strong, wait=wait)

    def statuses(self) -> List[Dict[str, Any]]:
        return [
            self.client(pid).status() for pid in range(self.spec.n_replicas)
        ]

    def converged(self, *, expect_committed: Optional[int] = None) -> bool:
        """All replicas agree: same committed order, no backlog, same state."""
        statuses = self.statuses()
        first = statuses[0]
        if expect_committed is not None and any(
            len(status["committed"]) != expect_committed for status in statuses
        ):
            return False
        for status in statuses[1:]:
            if status["committed"] != first["committed"]:
                return False
            if status["state"] != first["state"]:
                return False
        if any(status["backlog"] for status in statuses):
            return False
        if any(status["tentative"] for status in statuses):
            return False
        return True

    def await_convergence(
        self,
        *,
        expect_committed: Optional[int] = None,
        timeout: float = 20.0,
        poll_interval: float = 0.05,
    ) -> List[Dict[str, Any]]:
        """Poll until :meth:`converged`; returns the final statuses."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.converged(expect_committed=expect_committed):
                return self.statuses()
            time.sleep(poll_interval)
        raise TimeoutError(
            "cluster did not converge within "
            f"{timeout:g}s: {self.statuses()!r}"
        )
