"""The real-socket backend: an asyncio event loop over TCP.

One :class:`AsyncioRuntime` lives in one operating-system process and hosts
(usually) one protocol process — a replica's :class:`RoutingNode` with its
full component stack. Peers are other OS processes reached over TCP;
messages travel as length-prefixed JSON frames (:mod:`repro.runtime.wire`),
so everything the durability codec registry can persist can also cross the
wire.

Coroutine structure (the 500lines crawler idiom — a small set of
long-lived tasks around queues, no thread anywhere):

- one **server task** accepts inbound connections; each connection gets a
  reader coroutine that deframes the byte stream and dispatches frames;
- one **link task per peer** owns the outbound connection: it dials (with
  retry/backoff — peers boot in arbitrary order), then drains that peer's
  outbound queue, writing frames in order. Per-link FIFO therefore holds,
  exactly like the simulated network's per-link FIFO floor;
- timers are plain ``loop.call_later`` handles behind the
  :class:`RuntimeTimer` contract.

What this backend does **not** provide: determinism. Delivery order across
links, timer interleavings and clock readings are whatever the OS gives
us. Protocol correctness must come from the protocols (that is the point);
reproducible experiments stay on :class:`~repro.runtime.sim.SimRuntime`.

Frames on the wire are dicts:

- ``{"kind": "msg", "sender": pid, "payload": ...}`` — protocol traffic,
  delivered to the registered process as ``deliver(sender, payload)``;
- ``{"kind": "rpc", "id": n, "verb": ..., "args": {...}}`` — a client
  request for the hosting harness (health pings, invokes, status probes);
  answered on the same connection with ``{"kind": "reply", "id": n, ...}``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.runtime.base import Runtime, RuntimeTimer
from repro.runtime.wire import FrameDecoder, WireError, encode_frame

#: An RPC handler: ``async def handle(verb, args) -> jsonable reply value``.
RpcHandler = Callable[[str, Dict[str, Any]], Awaitable[Any]]

#: Initial reconnect backoff; doubles up to the cap below.
_DIAL_BACKOFF = 0.05
_DIAL_BACKOFF_MAX = 1.0


class AsyncioTimer(RuntimeTimer):
    """``loop.call_later`` behind the runtime timer contract."""

    __slots__ = ("_handle", "_cancelled", "label")

    def __init__(self, handle: asyncio.TimerHandle, label: str) -> None:
        self._handle = handle
        self._cancelled = False
        self.label = label

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class _PeerLink:
    """Outbound queue + dialing task for one remote peer."""

    def __init__(self, pid: int, host: str, port: int) -> None:
        self.pid = pid
        self.host = host
        self.port = port
        self.queue: List[bytes] = []
        self.wakeup = asyncio.Event()
        self.task: Optional[asyncio.Task] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.sent_frames = 0


class AsyncioRuntime(Runtime):
    """A runtime whose transport is TCP between OS processes.

    Parameters
    ----------
    pid:
        The pid this OS process hosts.
    peers:
        ``pid -> (host, port)`` for *every* process in the deployment,
        including our own (that entry is where our server binds).
    """

    def __init__(
        self,
        pid: int,
        peers: Dict[int, Tuple[str, int]],
        *,
        telemetry: Optional[Any] = None,
    ) -> None:
        if pid not in peers:
            raise ValueError(f"own pid {pid} missing from peer map {sorted(peers)}")
        self.pid = pid
        self.peers = dict(peers)
        self._processes: Dict[int, Any] = {}
        self._links: Dict[int, _PeerLink] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._epoch: Optional[float] = None
        self._stopped = False
        self._conn_tasks: List[asyncio.Task] = []
        #: Harness hook answering ``rpc`` frames; ``None`` refuses them.
        self.rpc_handler: Optional[RpcHandler] = None
        # Transport counters (the sim network keeps the same ones).
        self.sent_count = 0
        self.delivered_count = 0
        #: An optional :class:`~repro.obs.Telemetry` plane. When armed,
        #: outbound frames carry the current trace context (old frames
        #: without the field decode exactly as before) and the transport
        #: exports frame/redial/queue-depth instruments.
        self.telemetry = telemetry
        if telemetry:
            self._m_sent = telemetry.counter(
                "repro_net_frames_sent", pid=pid
            )
            self._m_received = telemetry.counter(
                "repro_net_frames_received", pid=pid
            )
            self._m_redials = telemetry.counter("repro_net_redials", pid=pid)
            self._g_queue = telemetry.gauge("repro_net_queue_depth", pid=pid)

    # ------------------------------------------------------------------
    # Runtime surface
    # ------------------------------------------------------------------
    def _loop(self) -> asyncio.AbstractEventLoop:
        return asyncio.get_running_loop()

    def now(self) -> float:
        loop = self._loop()
        if self._epoch is None:
            self._epoch = loop.time()
        return loop.time() - self._epoch

    def schedule(
        self, delay: float, callback: Callable[[], None], *, label: str = ""
    ) -> AsyncioTimer:
        timer_box: List[AsyncioTimer] = []

        def guarded() -> None:
            if not timer_box[0].cancelled:
                callback()

        handle = self._loop().call_later(max(0.0, delay), guarded)
        timer = AsyncioTimer(handle, label)
        timer_box.append(timer)
        return timer

    def register(self, process: Any) -> None:
        self._processes[process.pid] = process

    @property
    def n_processes(self) -> int:
        return len(self.peers)

    def send(self, sender: int, receiver: int, payload: Any) -> None:
        self.sent_count += 1
        context = self.telemetry.current if self.telemetry else None
        if receiver == self.pid:
            # Loopback stays on the loop (never reentrant): protocol code
            # that sends to itself mid-handler sees the same "later" the
            # simulated network gives it. The trace context is captured
            # now and restored at delivery, like a remote frame's would be.
            self._loop().call_soon(
                self._deliver_traced, sender, payload, context
            )
            return
        if receiver not in self.peers:
            raise WireError(f"unknown receiver pid {receiver}")
        message: Dict[str, Any] = {
            "kind": "msg", "sender": sender, "payload": payload,
        }
        if context is not None:
            message["trace"] = context
        frame = encode_frame(message)
        link = self._link(receiver)
        link.queue.append(frame)
        link.wakeup.set()
        if self.telemetry:
            self._m_sent.inc()
            self._g_queue.set(
                sum(len(peer.queue) for peer in self._links.values())
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind our server socket; links dial lazily on first send."""
        host, port = self.peers[self.pid]
        self.now()  # pin the epoch to runtime start
        self._server = await asyncio.start_server(
            self._on_connection, host=host, port=port
        )

    @property
    def bound_port(self) -> int:
        """The actually bound server port (useful with port 0)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the server, all links and their tasks."""
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for link in self._links.values():
            link.wakeup.set()
            if link.task is not None:
                link.task.cancel()
            if link.writer is not None:
                link.writer.close()
        for task in self._conn_tasks:
            task.cancel()
        await asyncio.gather(
            *[l.task for l in self._links.values() if l.task is not None],
            *self._conn_tasks,
            return_exceptions=True,
        )

    # ------------------------------------------------------------------
    # Outbound links
    # ------------------------------------------------------------------
    def _link(self, receiver: int) -> _PeerLink:
        link = self._links.get(receiver)
        if link is None:
            host, port = self.peers[receiver]
            link = _PeerLink(receiver, host, port)
            self._links[receiver] = link
            link.task = self._loop().create_task(self._run_link(link))
        return link

    async def _run_link(self, link: _PeerLink) -> None:
        backoff = _DIAL_BACKOFF
        while not self._stopped:
            try:
                _, writer = await asyncio.open_connection(link.host, link.port)
            except OSError:
                if self.telemetry:
                    self._m_redials.inc()
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, _DIAL_BACKOFF_MAX)
                continue
            backoff = _DIAL_BACKOFF
            link.writer = writer
            try:
                while not self._stopped:
                    while link.queue:
                        frame = link.queue[0]
                        writer.write(frame)
                        await writer.drain()
                        # Popped only after a successful drain: a write
                        # error re-sends the frame on the next connection
                        # instead of silently dropping it.
                        link.queue.pop(0)
                        link.sent_frames += 1
                        if self.telemetry:
                            self._g_queue.set(
                                sum(
                                    len(peer.queue)
                                    for peer in self._links.values()
                                )
                            )
                    link.wakeup.clear()
                    await link.wakeup.wait()
            except (ConnectionError, OSError):
                if self.telemetry:
                    self._m_redials.inc()
                continue  # redial; unsent frames are still queued
            finally:
                link.writer = None
                writer.close()

    # ------------------------------------------------------------------
    # Inbound connections
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.append(task)
        decoder = FrameDecoder()
        try:
            while not self._stopped:
                data = await reader.read(64 * 1024)
                if not data:
                    return
                for frame in decoder.feed(data):
                    await self._dispatch(frame, writer)
        except (ConnectionError, OSError, asyncio.CancelledError):
            return
        finally:
            writer.close()
            if task is not None and task in self._conn_tasks:
                self._conn_tasks.remove(task)

    async def _dispatch(
        self, frame: Any, writer: asyncio.StreamWriter
    ) -> None:
        if not isinstance(frame, dict) or "kind" not in frame:
            raise WireError(f"malformed frame {frame!r}")
        kind = frame["kind"]
        if self.telemetry:
            self._m_received.inc()
        if kind == "msg":
            self._deliver_traced(
                frame["sender"], frame["payload"], frame.get("trace")
            )
        elif kind == "rpc":
            reply: Dict[str, Any] = {"kind": "reply", "id": frame.get("id")}
            if self.rpc_handler is None:
                reply["error"] = "no RPC handler registered"
            else:
                try:
                    reply["value"] = await self.rpc_handler(
                        frame.get("verb", ""), frame.get("args") or {}
                    )
                except Exception as exc:  # surfaced to the caller, not fatal
                    reply["error"] = f"{type(exc).__name__}: {exc}"
            writer.write(encode_frame(reply))
            await writer.drain()
        else:
            raise WireError(f"unknown frame kind {kind!r}")

    def _deliver_traced(self, sender: int, payload: Any, context: Any) -> None:
        """Deliver with the sender's trace context current, if one rode in."""
        if self.telemetry and context is not None:
            with self.telemetry.using(context):
                self._deliver_local(sender, payload)
        else:
            self._deliver_local(sender, payload)

    def _deliver_local(self, sender: int, payload: Any) -> None:
        process = self._processes.get(self.pid)
        if process is None:
            return
        self.delivered_count += 1
        process.deliver(sender, payload)
