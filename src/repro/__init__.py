"""repro — a full reproduction of "On mixing eventual and strong consistency:
Bayou revisited" (Kokociński, Kobus, Wojciechowski; PODC 2019).

Public API tour
---------------
Scenarios — declare an experiment, run it, assert on the result::

    from repro import Scenario, RList

    result = (
        Scenario(RList())
        .replicas(3)
        .protocol("modified")
        .invoke(1.0, 0, RList.append("a"), label="a")
        .invoke(2.0, 1, RList.duplicate(), strong=True, label="dup")
        .probes(RList.read)
        .checks(fec="weak", seq="strong")
        .run()
    )
    result.responses["dup"]          # the strong op's (final) answer
    result.check("fec:weak").ok      # Theorem 2, checked on this run
    result.converged                 # all replicas agree

Sessions — typed, futures-based clients over a live cluster::

    from repro import BayouCluster, BayouConfig, Counter

    cluster = BayouCluster(Counter(), BayouConfig(n_replicas=3))
    session = cluster.connect(0)
    future = session.increment(10)          # weak: OpFuture, queued
    confirm = session.strong.read()         # strong: final once responded
    cluster.run_until_quiescent()
    future.value, future.latency, future.stable

Each :class:`~repro.core.session.OpFuture` moves pending → responded →
stable; callbacks (``add_done_callback`` / ``add_stable_callback``) hook
both transitions. Data types declare their operations via descriptors, so
``session.increment`` and ``Counter.increment`` come from one registry.

Observability — arm a run and read back its causal traces and metrics::

    result = Scenario(Counter()).replicas(3).telemetry(True).run()
    result.telemetry.trees()          # span tree per op (trace id = dot)
    result.telemetry.registry.counter_total("repro_ops_submitted")
    result.telemetry.write_jsonl("telemetry.jsonl")   # python -m repro obs

Formal framework::

    from repro import build_abstract_execution, check_bec, check_fec, check_seq

    history = cluster.build_history()
    execution = build_abstract_execution(history)
    check_fec(execution, "weak")     # Theorem 2, checked on a real run
    check_bec(execution, "weak")     # fails when reordering occurred

Impossibility (Theorem 1)::

    from repro.framework.impossibility import prove_impossibility
    assert not prove_impossibility().satisfiable
"""

from repro.core.cluster import BayouCluster, MODIFIED, ORIGINAL
from repro.core.config import BayouConfig
from repro.core.durability import DurableStore, InMemoryStore, JsonLinesStore
from repro.core.modified_replica import ModifiedBayouReplica
from repro.core.replica import BayouReplica
from repro.core.request import Dot, Req
from repro.core.session import ClientSession, OpFuture, Session
from repro.core.state_object import StateObject
from repro.datatypes import (
    BankAccounts,
    Counter,
    DataType,
    KVStore,
    MeetingScheduler,
    Operation,
    Register,
    RList,
    SetType,
)
from repro.errors import (
    CrossShardError,
    DivergedOrderError,
    MigrationError,
    MigrationInProgress,
    PendingResponseError,
    ReplicaUnavailableError,
    ReproError,
    SessionProtocolError,
    UnknownOperationError,
)
from repro.net.faults import CrashSchedule
from repro.obs import Telemetry
from repro.framework.builder import build_abstract_execution
from repro.framework.guarantees import check_bec, check_fec, check_seq
from repro.framework.history import History, HistoryEvent, PENDING, STRONG, WEAK
from repro.scenario import LiveRun, RunResult, Scenario
from repro.shard import (
    HashPartitioner,
    Migration,
    RangePartitioner,
    Reassignment,
    ShardMap,
    ShardRouter,
    ShardedCluster,
    ShardedRunResult,
    VersionedShardMap,
)

__version__ = "2.0.0"

__all__ = [
    "BankAccounts",
    "BayouCluster",
    "BayouConfig",
    "BayouReplica",
    "ClientSession",
    "Counter",
    "CrashSchedule",
    "CrossShardError",
    "DataType",
    "DivergedOrderError",
    "Dot",
    "DurableStore",
    "HashPartitioner",
    "History",
    "HistoryEvent",
    "InMemoryStore",
    "JsonLinesStore",
    "KVStore",
    "LiveRun",
    "MODIFIED",
    "MeetingScheduler",
    "Migration",
    "MigrationError",
    "MigrationInProgress",
    "ModifiedBayouReplica",
    "ORIGINAL",
    "OpFuture",
    "Operation",
    "PENDING",
    "PendingResponseError",
    "RangePartitioner",
    "Reassignment",
    "Register",
    "ReplicaUnavailableError",
    "Req",
    "ReproError",
    "RList",
    "RunResult",
    "STRONG",
    "Scenario",
    "Session",
    "SessionProtocolError",
    "SetType",
    "ShardMap",
    "ShardRouter",
    "ShardedCluster",
    "ShardedRunResult",
    "StateObject",
    "Telemetry",
    "UnknownOperationError",
    "VersionedShardMap",
    "WEAK",
    "__version__",
    "build_abstract_execution",
    "check_bec",
    "check_fec",
    "check_seq",
]
