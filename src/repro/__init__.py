"""repro — a full reproduction of "On mixing eventual and strong consistency:
Bayou revisited" (Kokociński, Kobus, Wojciechowski; PODC 2019).

Public API tour
---------------
Protocol::

    from repro import BayouCluster, BayouConfig, RList

    cluster = BayouCluster(RList(), BayouConfig(n_replicas=3))
    cluster.invoke(0, RList.append("a"))                 # weak
    cluster.invoke(1, RList.duplicate(), strong=True)    # strong
    cluster.run_until_quiescent()

Formal framework::

    from repro import build_abstract_execution, check_bec, check_fec, check_seq

    history = cluster.build_history()
    execution = build_abstract_execution(history)
    check_fec(execution, "weak")     # Theorem 2, checked on a real run
    check_bec(execution, "weak")     # fails when reordering occurred

Impossibility (Theorem 1)::

    from repro.framework.impossibility import prove_impossibility
    assert not prove_impossibility().satisfiable
"""

from repro.core.cluster import BayouCluster, MODIFIED, ORIGINAL
from repro.core.client import ClientSession
from repro.core.config import BayouConfig
from repro.core.modified_replica import ModifiedBayouReplica
from repro.core.replica import BayouReplica
from repro.core.request import Dot, Req
from repro.core.state_object import StateObject
from repro.datatypes import (
    BankAccounts,
    Counter,
    KVStore,
    Operation,
    Register,
    RList,
    SetType,
)
from repro.framework.builder import build_abstract_execution
from repro.framework.guarantees import check_bec, check_fec, check_seq
from repro.framework.history import History, HistoryEvent, PENDING, STRONG, WEAK

__version__ = "1.0.0"

__all__ = [
    "BankAccounts",
    "BayouCluster",
    "BayouConfig",
    "BayouReplica",
    "ClientSession",
    "Counter",
    "Dot",
    "History",
    "HistoryEvent",
    "KVStore",
    "MODIFIED",
    "ModifiedBayouReplica",
    "ORIGINAL",
    "Operation",
    "PENDING",
    "Register",
    "Req",
    "RList",
    "STRONG",
    "SetType",
    "StateObject",
    "WEAK",
    "__version__",
    "build_abstract_execution",
    "check_bec",
    "check_fec",
    "check_seq",
]
