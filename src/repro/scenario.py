"""The fluent experiment facade: Scenario → LiveRun → RunResult.

Every experiment in this repository has the same shape: configure a
cluster (replicas, TOB engine, dissemination, clocks), inject faults
(partitions, targeted message delays), drive a workload (scripted
invocations, closed-loop sessions, or random profiles), run the simulation,
then freeze a history and check it against the paper's correctness
criteria. :class:`Scenario` captures that shape as a builder::

    result = (
        Scenario(RList())
        .replicas(2)
        .protocol("original")
        .exec_delay(1.5)
        .clock_drift(1, offset=-0.5)
        .tob_extra_delay(10.0)
        .invoke(1.0, 0, RList.append("a"), label="append_a")
        .invoke(10.0, 0, RList.append("x"), label="append_x")
        .invoke(10.2, 1, RList.duplicate(), strong=True, label="duplicate")
        .probes(RList.read)
        .checks(fec="weak", bec="weak", seq="strong")
        .run()
    )
    result.responses["append_x"]        # 'aax' — the paper's Figure 1
    result.check("bec:weak").ok         # False: temporary reordering

``run()`` compiles the builder to a :class:`~repro.core.cluster.BayouCluster`
(+ :class:`~repro.net.partition.PartitionSchedule`,
:class:`~repro.net.faults.MessageFilter`, client
:class:`~repro.core.session.Session` objects), runs to quiescence (or
stability, for the Paxos engine), issues horizon probes, and returns a
:class:`RunResult` bundling the history, the abstract execution, the
requested guarantee reports, convergence diagnostics and every labelled
:class:`~repro.core.session.OpFuture`.

For schedules that need mid-run observation (partition snapshots,
Theorem 3's asynchronous window), :meth:`Scenario.build` returns the
:class:`LiveRun` handle so the caller controls time, then calls
:meth:`LiveRun.finish` to get the same :class:`RunResult`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
    Union,
)

from repro.analysis.workload import (
    KEYED_PROFILES,
    PROFILES,
    RandomWorkload,
    ShiftingHotspotSampler,
    WorkloadProfile,
    make_sampler,
)
from repro.core.cluster import ORIGINAL, BayouCluster
from repro.core.config import BayouConfig
from repro.core.request import Dot
from repro.core.session import OpFuture, Session, resolve_operation
from repro.datatypes.base import DataType, Operation, PlainDb
from repro.errors import PendingResponseError, ReplicaUnavailableError
from repro.framework.builder import build_abstract_execution
from repro.framework.guarantees import check_bec, check_fec, check_seq
from repro.framework.history import History, STRONG, WEAK
from repro.framework.predicates import check_ncc
from repro.framework.session_guarantees import check_all_session_guarantees
from repro.net.faults import (
    CrashSchedule,
    FilterRule,
    MessageFilter,
    delay_tob_for_dot_rule,
    quarantine_dot_rule,
    tob_delay_rule,
)
from repro.net.partition import PartitionSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.scenario import ShardedLiveRun, ShardedRunResult


@dataclass
class _ScriptedOp:
    """One scheduled open-loop invocation."""

    at: float
    pid: int
    op: Operation
    strong: bool
    label: str


@dataclass
class _WorkloadSpec:
    profile: WorkloadProfile
    ops_per_session: int
    think_time: float
    seed: int
    sessions: Optional[int] = None


class ScenarioClient:
    """A closed-loop client script inside a :class:`Scenario`.

    Queues operations for one session; chainable, with typed sugar::

        alice = scenario.client(0, think_time=1.0)
        alice.append("w").read(label="ryw-read")    # typed, via the registry
        alice.weak(RList.append("w"))               # explicit op objects
        alice.strong(RList.read(), label="confirm")
    """

    def __init__(self, scenario: "Scenario", pid: int, think_time: float) -> None:
        self.scenario = scenario
        self.pid = pid
        self.think_time = think_time
        self.ops: List[Tuple[Operation, bool, Optional[str]]] = []

    def op(
        self, op: Operation, *, strong: bool = False, label: Optional[str] = None
    ) -> "ScenarioClient":
        """Queue ``op``; it runs after all earlier ops of this client."""
        self.ops.append((op, strong, label))
        if label is not None:
            self.scenario._claim_label(label)
        return self

    def weak(self, op: Operation, *, label: Optional[str] = None) -> "ScenarioClient":
        """Queue a weak (highly available, tentative) operation."""
        return self.op(op, strong=False, label=label)

    def strong(self, op: Operation, *, label: Optional[str] = None) -> "ScenarioClient":
        """Queue a strong (consensus-backed, final) operation."""
        return self.op(op, strong=True, label=label)

    def __getattr__(self, name: str):
        datatype = self.scenario._datatype
        if datatype is None or name.startswith("_"):
            raise AttributeError(name)
        constructor = resolve_operation(datatype, name)

        def bound(
            *args: Any, strong: bool = False, label: Optional[str] = None, **kwargs: Any
        ) -> "ScenarioClient":
            return self.op(constructor(*args, **kwargs), strong=strong, label=label)

        bound.__name__ = name
        return bound


class Scenario:
    """A fluent builder for one simulated Bayou experiment."""

    def __init__(self, datatype: Optional[DataType] = None, *, name: str = "") -> None:
        self.name = name
        self._datatype = datatype
        self._protocol = ORIGINAL
        self._config_kwargs: Dict[str, Any] = {}
        self._n_shards: Optional[int] = None
        self._partitioner: Optional[Any] = None
        self._clock_offsets: Dict[int, float] = {}
        self._clock_rates: Dict[int, float] = {}
        self._exec_overrides: Dict[int, float] = {}
        #: (kind, at, groups, shard) — shard is None outside sharded mode
        #: (and means "every shard" inside it).
        self._partition_events: List[Tuple[str, float, Any, Optional[int]]] = []
        #: (pid, at, recover_at, mode, shard).
        self._crash_plans: List[
            Tuple[int, float, Optional[float], Optional[str], Optional[int]]
        ] = []
        #: (builder, shard) — shard is None outside sharded mode (and
        #: means "every shard" inside it).
        self._filter_builders: List[
            Tuple[Callable[[MessageFilter], None], Optional[int]]
        ] = []
        #: (at, kind, params, pid, transfer_delay) resharding steps.
        self._reshardings: List[Tuple[float, str, Tuple[Any, ...], int, float]] = []
        #: PlacementController kwargs when autoscale() armed one.
        self._autoscale: Optional[Dict[str, Any]] = None
        self._scripted: List[_ScriptedOp] = []
        self._clients: List[ScenarioClient] = []
        self._workloads: List[_WorkloadSpec] = []
        self._hooks: List[Tuple[float, Callable[["LiveRun"], None]]] = []
        self._probe_op: Optional[Callable[[], Operation]] = None
        self._probe_spacing: Optional[float] = None
        self._checks: List[Tuple[str, Optional[str]]] = []
        self._labels: set = set()

    # ------------------------------------------------------------------
    # Substrate
    # ------------------------------------------------------------------
    def datatype(self, datatype: DataType) -> "Scenario":
        """Set the replicated data type the cluster serves."""
        self._datatype = datatype
        return self

    def replicas(self, n: int) -> "Scenario":
        """Set the number of replicas."""
        self._config_kwargs["n_replicas"] = n
        return self

    def protocol(self, protocol: str) -> "Scenario":
        """Choose ``"original"`` (Algorithm 1) or ``"modified"`` (Algorithm 2)."""
        self._protocol = protocol
        return self

    def shards(self, n: int, *, partitioner: Optional[Any] = None) -> "Scenario":
        """Deploy ``n`` independent Bayou shards over a partitioned keyspace.

        Each shard is a full cluster (``.replicas(k)`` replicas *per
        shard*) on one shared simulator; operations route to the shard
        owning their keys (``partitioner`` defaults to the stable
        :class:`~repro.shard.partitioner.HashPartitioner`). ``run()``
        then returns a :class:`~repro.shard.scenario.ShardedRunResult`.
        ``.partition()``/``.heal()``/``.crash()`` accept a ``shard=``
        scope in this mode.
        """
        if n < 1:
            raise ValueError(f"shards(n) needs n >= 1, got {n}")
        self._n_shards = n
        self._partitioner = partitioner
        return self

    def tob(self, engine: str, *, sequencer: Optional[int] = None) -> "Scenario":
        """Choose the TOB engine (``"sequencer"`` or ``"paxos"``)."""
        self._config_kwargs["tob_engine"] = engine
        if sequencer is not None:
            self._config_kwargs["sequencer_pid"] = sequencer
        return self

    def dissemination(
        self, kind: str, *, sync_interval: Optional[float] = None
    ) -> "Scenario":
        """Choose weak-update dissemination (``"rb"`` or ``"anti_entropy"``)."""
        self._config_kwargs["dissemination"] = kind
        if sync_interval is not None:
            self._config_kwargs["ae_sync_interval"] = sync_interval
        return self

    def exec_delay(
        self, delay: float, *, overrides: Optional[Dict[int, float]] = None
    ) -> "Scenario":
        """Set the per-step processing cost (and per-replica overrides)."""
        self._config_kwargs["exec_delay"] = delay
        if overrides:
            self._exec_overrides.update(overrides)
        return self

    def reorder(
        self,
        engine: str = "batched",
        *,
        checkpoint_interval: Optional[int] = None,
    ) -> "Scenario":
        """Choose the rollback/replay engine (``"stepwise"`` or ``"batched"``).

        ``checkpoint_interval`` enables periodic full-state checkpoints so
        the batched engine restores long divergent suffixes from the nearest
        checkpoint instead of unwinding the undo log request-by-request.
        See ``docs/PERFORMANCE.md`` for tuning guidance.
        """
        self._config_kwargs["reorder_engine"] = engine
        if checkpoint_interval is not None:
            self._config_kwargs["checkpoint_interval"] = checkpoint_interval
        return self

    def message_delay(
        self, delay: float, *, jitter: Optional[float] = None
    ) -> "Scenario":
        """Set the one-way network latency (uniform jitter optional).

        ``jitter`` is only written when passed, so it composes with jitter
        configured elsewhere in the chain instead of resetting it.
        """
        self._config_kwargs["message_delay"] = delay
        if jitter is not None:
            self._config_kwargs["latency_jitter"] = jitter
        return self

    def clock_drift(
        self, pid: int, *, offset: float = 0.0, rate: float = 1.0
    ) -> "Scenario":
        """Give replica ``pid`` a drifting local clock (Section 2.3).

        Always records both values, so a later call can reset an earlier
        drift back to the defaults (offset 0.0, rate 1.0).
        """
        self._clock_offsets[pid] = offset
        self._clock_rates[pid] = rate
        return self

    def seed(self, seed: int) -> "Scenario":
        """Master seed for every random stream."""
        self._config_kwargs["seed"] = seed
        return self

    def telemetry(
        self, enabled: bool = True, *, capacity: Optional[int] = None
    ) -> "Scenario":
        """Attach the unified telemetry plane (:class:`repro.obs.Telemetry`).

        Every op gets a causal span trace (submit → tob-propose → deliver
        → execute-tentative → commit → stable) and the protocol engines
        feed the online metrics registry; the result exposes both as
        :attr:`RunResult.telemetry`. ``capacity`` bounds the span ring
        (oldest dropped, drops counted). Instrumentation is append-only:
        the run's outcome is bit-identical with telemetry on or off.
        """
        self._config_kwargs["enable_telemetry"] = enabled
        if capacity is not None:
            self._config_kwargs["trace_capacity"] = capacity
        return self

    def tracelog(
        self, enabled: bool = True, *, capacity: Optional[int] = None
    ) -> "Scenario":
        """Configure the diagnostic :class:`~repro.sim.trace.TraceLog`.

        ``capacity`` turns it into a bounded ring (oldest entries evicted,
        evictions counted) — long runs keep a sliding window instead of
        accreting per-event records without bound. ``tracelog(False)``
        disables it entirely, as scale benchmarks do.
        """
        self._config_kwargs["enable_trace"] = enabled
        if capacity is not None:
            self._config_kwargs["trace_capacity"] = capacity
        return self

    def config(self, **overrides: Any) -> "Scenario":
        """Escape hatch: raw :class:`BayouConfig` field overrides."""
        self._config_kwargs.update(overrides)
        return self

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def partition(
        self,
        at: float,
        groups: Sequence[Sequence[int]],
        *,
        shard: Optional[int] = None,
    ) -> "Scenario":
        """Split the network into ``groups`` at time ``at``.

        In a sharded scenario ``shard`` scopes the split to one shard's
        internal network (shards are independent consensus groups, each
        with its own links); None partitions every shard identically.
        """
        self._partition_events.append(("split", at, groups, shard))
        return self

    def heal(self, at: float, *, shard: Optional[int] = None) -> "Scenario":
        """Restore full connectivity at time ``at`` (optionally one shard)."""
        self._partition_events.append(("heal", at, None, shard))
        return self

    def crash(
        self,
        pid: int,
        at: float,
        *,
        recover_at: Optional[float] = None,
        mode: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> "Scenario":
        """Crash replica ``pid`` at time ``at``.

        With ``recover_at`` the replica comes back (crash–recovery: every
        component reloads what it persisted to the configured
        :meth:`durability` backend and catches up with the survivors);
        without it the crash is permanent (the paper's crash-stop model).
        ``mode`` overrides the inferred :meth:`Process.crash` mode. In a
        sharded scenario ``shard`` names the shard whose replica ``pid``
        crashes (None: replica ``pid`` of *every* shard).
        """
        self._crash_plans.append((pid, at, recover_at, mode, shard))
        return self

    def durability(
        self, backend: str = "memory", *, directory: Optional[str] = None
    ) -> "Scenario":
        """Give every replica stable storage (``"memory"`` or ``"jsonl"``).

        Required for meaningful crash–recovery runs: without it a recovered
        replica resumes with whatever in-memory state happened to survive —
        a transient pause, not a crash. ``directory`` names the JSON-lines
        root for the ``"jsonl"`` backend.
        """
        self._config_kwargs["durability"] = backend
        if directory is not None:
            self._config_kwargs["durability_dir"] = directory
        return self

    def resharding(
        self,
        at: float,
        *,
        split: Optional[int] = None,
        merge: Optional[Tuple[int, int]] = None,
        move: Optional[Tuple[Any, Any, int]] = None,
        pid: int = 0,
        transfer_delay: float = 0.0,
    ) -> "Scenario":
        """Schedule a live resharding step at time ``at`` (sharded only).

        Exactly one of the three shapes:

        - ``split=src`` — spawn a fresh shard mid-run and hand it half of
          ``src``'s keys;
        - ``merge=(dst, src)`` — fold ``src``'s keys into ``dst`` and
          retire ``src``;
        - ``move=(lo, hi, dst)`` — hand the half-open key range
          ``[lo, hi)`` to ``dst``.

        Each step runs the full live-migration protocol (epoch barrier
        through the source TOB, committed-prefix snapshot + tentative
        suffix handoff, epoch activation) while the scenario's workloads
        keep running; ``transfer_delay`` models the data movement time.
        The resulting :class:`~repro.shard.migration.Migration` records
        land on the run (``live.migrations`` /
        :attr:`~repro.shard.scenario.ShardedRunResult.migrations`).
        """
        chosen = [name for name, value in (
            ("split", split), ("merge", merge), ("move", move)
        ) if value is not None]
        if len(chosen) != 1:
            raise ValueError(
                "resharding() needs exactly one of split=/merge=/move=, "
                f"got {chosen or 'none'}"
            )
        if split is not None:
            step = ("split", (split,))
        elif merge is not None:
            step = ("merge", tuple(merge))
            if len(step[1]) != 2:
                raise ValueError(
                    f"merge expects a (dst, src) pair, got {merge!r}"
                )
        else:
            step = ("move", tuple(move))
            if len(step[1]) != 3:
                raise ValueError(
                    f"move expects an (lo, hi, dst) triple, got {move!r}"
                )
        self._reshardings.append((at, step[0], step[1], pid, transfer_delay))
        return self

    def autoscale(
        self,
        policy: Any = "power-of-two",
        *,
        threshold: float = 1.5,
        cooldown: float = 6.0,
        interval: float = 2.0,
        **controller_kwargs: Any,
    ) -> "Scenario":
        """Attach an autonomous placement controller (sharded only).

        The :class:`~repro.shard.control.controller.PlacementController`
        runs as a sim-scheduled control loop over the deployment: each
        ``interval`` it reads the metrics plane (per-shard routed-op
        counters plus a hot-key sketch the router exports), and when the
        peak-to-mean load ratio crosses ``threshold`` it asks ``policy``
        (a :class:`~repro.shard.control.strategy.PlacementPolicy` or a
        registry name — ``"power-of-two"`` / ``"hot-key-isolation"``)
        for a move/isolate, executed through the live-migration
        protocol. ``cooldown`` rate-limits consecutive actions; further
        knobs (``hysteresis``, ``lookback``, ``decay``,
        ``transfer_delay``, ...) pass through to the controller. The
        controller lands on the result
        (:attr:`~repro.shard.scenario.ShardedRunResult.controller`).
        """
        self._autoscale = dict(
            policy=policy,
            threshold=threshold,
            cooldown=cooldown,
            interval=interval,
            **controller_kwargs,
        )
        return self

    def filter(
        self, rule: FilterRule, *, shard: Optional[int] = None
    ) -> "Scenario":
        """Install a raw message-filter rule (drop/delay by inspection).

        In a sharded scenario ``shard`` scopes the rule to one shard's
        network; None installs it on every shard. Rules may be stateful
        (e.g. "drop the first 3"): each shard compiles its *own*
        :class:`MessageFilter`, so per-rule state is per shard.
        """
        self._filter_builders.append((lambda filters: filters.add(rule), shard))
        return self

    def tob_extra_delay(
        self, extra: float, *, tag: str = "seqtob", shard: Optional[int] = None
    ) -> "Scenario":
        """Add ``extra`` latency to every TOB-engine message (slow consensus)."""
        return self.filter(tob_delay_rule(extra, tag=tag), shard=shard)

    def delay_tob_for_dot(
        self,
        dot: Dot,
        *,
        receiver: int,
        extra: float,
        tag: str = "seqtob",
        shard: Optional[int] = None,
    ) -> "Scenario":
        """Delay only TOB-engine messages about ``dot`` into ``receiver``.

        Used to steer the final order: e.g. hold a request's proposal back
        from the sequencer so later requests commit first. In sharded
        scenarios pass ``shard``: dots are per-cluster ``(pid, n)`` pairs,
        so the same dot exists independently in every shard.
        """
        return self.filter(
            delay_tob_for_dot_rule(dot, receiver=receiver, extra=extra, tag=tag),
            shard=shard,
        )

    def quarantine_dot(
        self,
        dot: Dot,
        *,
        receiver: int,
        extra: float,
        shard: Optional[int] = None,
    ) -> "Scenario":
        """Delay every message carrying ``dot`` into ``receiver``.

        Models the Theorem-1 adversary: a replica must not learn about an
        event (by any route — RB, relay, or TOB delivery) until late.
        """
        return self.filter(
            quarantine_dot_rule(dot, receiver=receiver, extra=extra), shard=shard
        )

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    def _claim_label(self, label: str) -> None:
        if label in self._labels:
            raise ValueError(f"duplicate scenario label {label!r}")
        self._labels.add(label)

    def invoke(
        self,
        at: float,
        pid: int,
        op: Operation,
        *,
        strong: bool = False,
        label: Optional[str] = None,
    ) -> "Scenario":
        """Schedule an open-loop invocation at absolute time ``at``."""
        if label is None:
            index = len(self._scripted)
            label = f"{op.name}#{index}"
            while label in self._labels:  # sidestep user-chosen "name#n" labels
                index += 1
                label = f"{op.name}#{index}"
        self._claim_label(label)
        self._scripted.append(_ScriptedOp(at, pid, op, strong, label))
        return self

    def client(self, pid: int, *, think_time: float = 0.0) -> ScenarioClient:
        """A closed-loop client script bound to replica ``pid``."""
        client = ScenarioClient(self, pid, think_time)
        self._clients.append(client)
        return client

    def workload(
        self,
        profile: Union[str, WorkloadProfile],
        *,
        ops_per_session: int = 10,
        think_time: float = 0.5,
        seed: int = 0,
        strong_probability: Optional[float] = None,
        keys: Optional[Sequence[Any]] = None,
        key_skew: str = "uniform",
        zipf_s: float = 1.1,
        hotspot_shift: Optional[Sequence[float]] = None,
        sessions: Optional[int] = None,
    ) -> "Scenario":
        """Drive a random closed-loop workload (one session per replica).

        ``keys``/``key_skew`` build a keyed profile (``"kv"``/``"bank"``
        only): operations draw their keys from ``keys`` under the named
        skew (``"uniform"`` or ``"zipf"`` with exponent ``zipf_s``) — the
        shared generator behind E12's sharded sweeps. ``hotspot_shift``
        lists simulated times at which the Zipf hot key *rotates* to the
        next key (a :class:`ShiftingHotspotSampler`; implies a Zipf skew
        and switches the workload to lazy per-response sampling — the
        moving-hotspot adversary E14's controller chases). ``sessions``
        overrides the client count (default: one per replica index).
        """
        if isinstance(profile, str):
            kwargs: Dict[str, Any] = {}
            if strong_probability is not None:
                kwargs["strong_probability"] = strong_probability
            if hotspot_shift is not None and keys is None:
                raise ValueError("hotspot_shift needs keys=[...] to rotate over")
            if keys is not None:
                if profile not in KEYED_PROFILES:
                    raise ValueError(
                        f"profile {profile!r} is not keyed; keys/key_skew "
                        f"apply to {sorted(KEYED_PROFILES)}"
                    )
                if hotspot_shift is not None:
                    kwargs["sampler"] = ShiftingHotspotSampler(
                        keys, hotspot_shift, s=zipf_s
                    )
                else:
                    kwargs["sampler"] = make_sampler(keys, key_skew, zipf_s=zipf_s)
            profile = PROFILES[profile](**kwargs)
        else:
            if keys is not None or hotspot_shift is not None:
                raise ValueError(
                    "keys/key_skew/hotspot_shift only apply to named "
                    "profiles; build the KeySampler into your "
                    "WorkloadProfile instead"
                )
            if strong_probability is not None:
                profile = dataclasses.replace(
                    profile, strong_probability=strong_probability
                )
        self._workloads.append(
            _WorkloadSpec(profile, ops_per_session, think_time, seed, sessions)
        )
        return self

    def at(self, time: float, hook: Callable[["LiveRun"], None]) -> "Scenario":
        """Run ``hook(live_run)`` at simulated time ``time`` (custom steps)."""
        self._hooks.append((time, hook))
        return self

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def probes(
        self,
        make_op: Callable[[], Operation],
        *,
        spacing: Optional[float] = None,
    ) -> "Scenario":
        """Issue post-stabilisation read probes (witnesses for EV/CPar)."""
        self._probe_op = make_op
        self._probe_spacing = spacing
        return self

    def checks(
        self,
        *,
        fec: Optional[str] = None,
        bec: Optional[str] = None,
        seq: Optional[str] = None,
        ncc: bool = False,
        session_guarantees: bool = False,
    ) -> "Scenario":
        """Select the guarantee reports :class:`RunResult` should carry.

        ``fec``/``bec``/``seq`` name the consistency level to check (e.g.
        ``fec="weak"``); ``ncc`` and ``session_guarantees`` are flags.
        """
        if fec is not None:
            self._checks.append(("fec", fec))
        if bec is not None:
            self._checks.append(("bec", bec))
        if seq is not None:
            self._checks.append(("seq", seq))
        if ncc:
            self._checks.append(("ncc", None))
        if session_guarantees:
            self._checks.append(("sessions", None))
        return self

    # ------------------------------------------------------------------
    # Compilation and running
    # ------------------------------------------------------------------
    def _compile_config(self) -> BayouConfig:
        kwargs = dict(self._config_kwargs)
        # Merge into copies: never mutate dicts the caller handed to
        # .config(), so one Scenario cannot bleed drift into another.
        for key, extra in (
            ("clock_offsets", self._clock_offsets),
            ("clock_rates", self._clock_rates),
            ("exec_delay_overrides", self._exec_overrides),
        ):
            if extra:
                merged = dict(kwargs.get(key, {}))
                merged.update(extra)
                kwargs[key] = merged
        return BayouConfig(**kwargs)

    def _compile_filters(
        self, shard: Optional[int] = None
    ) -> Optional[MessageFilter]:
        """A fresh MessageFilter for one deployment target.

        ``shard`` is None for unsharded builds (any shard-scoped rule is
        an error there); in sharded builds every shard gets its own
        instance carrying the unscoped rules plus its scoped ones, so
        stateful rules never share state across shards.
        """
        selected = []
        for build_filter, rule_shard in self._filter_builders:
            if shard is None and rule_shard is not None:
                raise ValueError(
                    "filter(..., shard=...) needs a sharded scenario "
                    "(call .shards(n) first)"
                )
            if rule_shard is None or rule_shard == shard:
                selected.append(build_filter)
        if not selected:
            return None
        filters = MessageFilter()
        for build_filter in selected:
            build_filter(filters)
        return filters

    def build(self) -> Union["LiveRun", "ShardedLiveRun"]:
        """Compile to a live cluster (or sharded deployment), scheduled."""
        if self._datatype is None:
            raise ValueError("Scenario needs a datatype (pass one or .datatype())")
        if self._n_shards is not None:
            return self._build_sharded()
        if self._reshardings:
            raise ValueError(
                "resharding(...) needs a sharded scenario (call .shards(n) "
                "first)"
            )
        if self._autoscale is not None:
            raise ValueError(
                "autoscale(...) needs a sharded scenario (call .shards(n) "
                "first)"
            )
        config = self._compile_config()

        partitions = None
        if self._partition_events:
            partitions = PartitionSchedule(config.n_replicas)
            for kind, at, groups, shard in self._partition_events:
                if shard is not None:
                    raise ValueError(
                        "partition(..., shard=...) needs a sharded scenario "
                        "(call .shards(n) first)"
                    )
                if kind == "split":
                    partitions.split(at, groups)
                else:
                    partitions.heal(at)

        crashes = None
        if self._crash_plans:
            crashes = CrashSchedule()
            for pid, at, recover_at, mode, shard in self._crash_plans:
                if shard is not None:
                    raise ValueError(
                        "crash(..., shard=...) needs a sharded scenario "
                        "(call .shards(n) first)"
                    )
                crashes.add(pid, at, recover_at, mode=mode)

        cluster = BayouCluster(
            self._datatype,
            config,
            protocol=self._protocol,
            partitions=partitions,
            filters=self._compile_filters(),
            crashes=crashes,
        )
        return LiveRun(self, cluster)

    def _build_sharded(self) -> "ShardedLiveRun":
        """Compile to N shards on one simulator, faults scoped per shard."""
        from repro.shard.deployment import ShardedCluster
        from repro.shard.scenario import ShardedLiveRun

        config = self._compile_config()
        n_shards = self._n_shards
        assert n_shards is not None

        partitions: Dict[int, PartitionSchedule] = {}
        for kind, at, groups, shard in self._partition_events:
            targets = range(n_shards) if shard is None else (shard,)
            for target in targets:
                schedule = partitions.setdefault(
                    target, PartitionSchedule(config.n_replicas)
                )
                if kind == "split":
                    schedule.split(at, groups)
                else:
                    schedule.heal(at)

        crashes: Dict[int, CrashSchedule] = {}
        for pid, at, recover_at, mode, shard in self._crash_plans:
            targets = range(n_shards) if shard is None else (shard,)
            for target in targets:
                crashes.setdefault(target, CrashSchedule()).add(
                    pid, at, recover_at, mode=mode
                )

        filters: Dict[int, MessageFilter] = {}
        for index in range(n_shards):
            compiled = self._compile_filters(index)
            if compiled is not None:
                filters[index] = compiled
        deployment = ShardedCluster(
            self._datatype,
            config,
            n_shards=n_shards,
            partitioner=self._partitioner,
            protocol=self._protocol,
            partitions=partitions or None,
            filters=filters or None,
            crashes=crashes or None,
        )
        return ShardedLiveRun(self, deployment)

    def run(
        self,
        *,
        until: Optional[float] = None,
        well_formed: bool = True,
        max_time: float = 100_000.0,
    ) -> "Union[RunResult, ShardedRunResult]":
        """Build, run to completion, probe, check — the one-call pipeline.

        With the Paxos engine the run goes through ``run_until_stable`` and
        an orderly shutdown; otherwise it runs to quiescence. ``until``
        caps the simulated time instead and yields a *snapshot*: probes and
        the engine shutdown are skipped so the clock never advances past
        the cap (for richer mid-run control prefer :meth:`build` +
        :class:`LiveRun`).
        """
        live = self.build()
        if until is not None:
            live.run(until=until)
        else:
            live.settle(max_time=max_time)
        return live.finish(
            well_formed=well_formed, max_time=max_time, settle=until is None
        )


class LiveRun:
    """A compiled, running scenario: the mid-flight control handle."""

    def __init__(self, scenario: Scenario, cluster: BayouCluster) -> None:
        self.scenario = scenario
        self.cluster = cluster
        #: label -> OpFuture for every labelled scripted/client operation.
        self.futures: Dict[str, OpFuture] = {}
        #: label -> simulated time of scripted invocations refused because
        #: their target replica was crashed (a crashed replica ceases all
        #: communication; the rest of the run proceeds normally).
        self.refused: Dict[str, float] = {}
        #: Sessions of the scripted clients, in declaration order (a pid
        #: may appear more than once).
        self.sessions: List[Session] = []
        self.workloads: List[RandomWorkload] = []
        self._schedule_everything()

    # -- wiring --------------------------------------------------------
    def _schedule_everything(self) -> None:
        for scripted in self.scenario._scripted:
            self.cluster.sim.schedule_at(
                scripted.at,
                lambda s=scripted: self._fire_scripted(s),
                label=f"scenario invoke R{scripted.pid} {scripted.op}",
            )
        for client in self.scenario._clients:
            session = self.cluster.connect(
                client.pid, think_time=client.think_time
            )
            self.sessions.append(session)
            for op, strong, op_label in client.ops:
                future = session.submit(op, strong=strong)
                if op_label is not None:
                    self.futures[op_label] = future
        for spec in self.scenario._workloads:
            workload = RandomWorkload(
                self.cluster,
                spec.profile,
                ops_per_session=spec.ops_per_session,
                think_time=spec.think_time,
                seed=spec.seed,
                sessions=spec.sessions,
            )
            workload.start()
            self.workloads.append(workload)
        for time, hook in self.scenario._hooks:
            self.cluster.sim.schedule_at(
                time, lambda h=hook: h(self), label="scenario hook"
            )

    # -- driving -------------------------------------------------------
    @property
    def now(self) -> float:
        return self.cluster.sim.now

    def submit(
        self,
        pid: int,
        op: Operation,
        *,
        strong: bool = False,
        label: Optional[str] = None,
    ) -> OpFuture:
        """Invoke right now (open loop); labelled futures land in the result.

        Rejects labels already recorded *or* declared on the scenario, so a
        collision with a scripted/client label that has not fired yet is
        caught at the call site, not later inside the event loop.
        """
        if label is not None and (
            label in self.futures or label in self.scenario._labels
        ):
            raise ValueError(f"duplicate scenario label {label!r}")
        future = self.cluster.submit(pid, op, strong=strong)
        if label is not None:
            self.futures[label] = future
        return future

    def _fire_scripted(self, scripted: _ScriptedOp) -> None:
        """Run one declared invocation (its label was claimed at declaration).

        An invocation scripted into a crash window is *refused*, not fatal:
        the client could not reach the crashed replica, which is a run
        observation (recorded in :attr:`refused`), not a harness error.
        """
        try:
            self.futures[scripted.label] = self.cluster.submit(
                scripted.pid, scripted.op, strong=scripted.strong
            )
        except ReplicaUnavailableError:
            self.refused[scripted.label] = self.cluster.sim.now

    def run(self, until: Optional[float] = None) -> None:
        self.cluster.run(until=until)

    def run_until_quiescent(self) -> float:
        return self.cluster.run_until_quiescent()

    def run_until_stable(self, **kwargs: Any) -> bool:
        return self.cluster.run_until_stable(**kwargs)

    def settle(self, *, max_time: float = 100_000.0) -> None:
        """Run until the workload is done, whatever the TOB engine.

        The sequencer engine quiesces naturally; the Paxos engine keeps
        heartbeat/retry timers alive forever, so it is driven to a stable
        state bounded by ``max_time`` instead.
        """
        if self.cluster.config.tob_engine == "paxos":
            self.cluster.run_until_stable(max_time=max_time)
        else:
            self.cluster.run_until_quiescent()

    def shutdown(self) -> None:
        self.cluster.shutdown()

    def converged(self) -> bool:
        return self.cluster.converged()

    def history(self, *, well_formed: bool = True) -> History:
        """Freeze the current staged records into a checkable history."""
        return self.cluster.build_history(well_formed=well_formed)

    # -- finishing -----------------------------------------------------
    def add_probes(self, *, max_time: float = 100_000.0) -> None:
        """Issue the configured horizon probes and run them to completion."""
        if self.scenario._probe_op is None:
            return
        self.cluster.add_horizon_probes(
            self.scenario._probe_op, spacing=self.scenario._probe_spacing
        )
        self.settle(max_time=max_time)

    def finish(
        self,
        *,
        well_formed: bool = True,
        max_time: float = 100_000.0,
        settle: bool = True,
    ) -> "RunResult":
        """Probe, freeze the history, run the configured checks.

        With ``settle`` (the default) this is terminal: probes are issued
        and, for Paxos runs, the engine's perpetual timers are shut down so
        the simulation can drain. ``settle=False`` freezes a snapshot at
        the current simulated time instead, advancing nothing.
        """
        if settle:
            self.add_probes(max_time=max_time)
            if self.cluster.config.tob_engine == "paxos":
                self.shutdown()
                self.cluster.run_until_quiescent()
        history = self.history(well_formed=well_formed)
        execution = build_abstract_execution(history)
        checks: Dict[str, Any] = {}
        session_guarantees: Optional[Dict[str, Any]] = None
        for kind, level in self.scenario._checks:
            if kind == "fec":
                checks[f"fec:{level}"] = check_fec(execution, level)
            elif kind == "bec":
                checks[f"bec:{level}"] = check_bec(execution, level)
            elif kind == "seq":
                checks[f"seq:{level}"] = check_seq(execution, level)
            elif kind == "ncc":
                checks["ncc"] = check_ncc(execution)
            elif kind == "sessions":
                session_guarantees = check_all_session_guarantees(execution)
        return RunResult(
            name=self.scenario.name,
            protocol=self.cluster.protocol,
            cluster=self.cluster,
            history=history,
            execution=execution,
            futures=dict(self.futures),
            checks=checks,
            session_guarantees=session_guarantees,
            convergence=self.cluster.convergence_report(),
            refused=dict(self.refused),
        )


@dataclass
class RunResult:
    """Everything one scenario run produced, structured for assertions."""

    name: str
    protocol: str
    cluster: BayouCluster = field(repr=False)
    history: History = field(repr=False)
    execution: Any = field(repr=False)
    futures: Dict[str, OpFuture] = field(repr=False)
    checks: Dict[str, Any] = field(repr=False)
    session_guarantees: Optional[Dict[str, Any]] = field(repr=False)
    convergence: Dict[str, Any] = field(repr=False)
    #: label -> time of scripted invocations refused at a crashed replica.
    refused: Dict[str, float] = field(repr=False, default_factory=dict)

    # -- responses -----------------------------------------------------
    @property
    def responses(self) -> Dict[str, Any]:
        """label -> response value (∇ for operations still pending)."""
        return {label: future.rval for label, future in self.futures.items()}

    def future(self, label: str) -> OpFuture:
        return self.futures[label]

    def _invoked_dot(self, label: str):
        future = self.futures[label]
        if future.dot is None:
            raise PendingResponseError(
                f"operation {label!r} was never invoked — the run was "
                "snapshotted before its session reached it"
            )
        return future.dot

    def event(self, label: str):
        """The :class:`HistoryEvent` of a labelled operation."""
        return self.history.event(self._invoked_dot(label))

    def sub_history(self, labels: Sequence[str]) -> History:
        """A history restricted to the labelled events (for the search)."""
        eids = {self._invoked_dot(label) for label in labels}
        return History(
            [event for event in self.history.events if event.eid in eids],
            self.history.datatype,
        )

    # -- verdicts ------------------------------------------------------
    @property
    def converged(self) -> bool:
        return bool(self.convergence["converged"])

    def check(self, name: str) -> Any:
        """A requested guarantee report, e.g. ``check("fec:weak")``."""
        return self.checks[name]

    def ok(self, name: str) -> bool:
        return bool(self.checks[name].ok)

    # -- state and metrics ---------------------------------------------
    def query(self, op: Operation) -> Any:
        """Execute a read-only ``op`` against replica 0's converged state."""
        snapshot = PlainDb(self.cluster.replicas[0].state.snapshot())
        return self.history.datatype.execute(op, snapshot)

    def latencies(
        self, level: Optional[str] = None, *, session: Optional[int] = None
    ) -> List[float]:
        """Response latencies from the history (optionally filtered)."""
        samples = []
        for event in self.history.events:
            if event.return_time is None:
                continue
            if level is not None and event.level != level:
                continue
            if session is not None and event.session != session:
                continue
            samples.append(event.return_time - event.invoke_time)
        return samples

    @property
    def weak_latencies(self) -> List[float]:
        return self.latencies(WEAK)

    @property
    def strong_latencies(self) -> List[float]:
        return self.latencies(STRONG)

    # -- telemetry -----------------------------------------------------
    @property
    def telemetry(self):
        """The run's telemetry plane (``None`` unless ``.telemetry()``)."""
        return self.cluster.telemetry

    def op_timestamps(self) -> Dict[str, Dict[str, Optional[float]]]:
        """label -> submit/invoke/response/stable times of labelled ops."""
        return {
            label: future.timestamps()
            for label, future in self.futures.items()
        }

    def commit_latencies(self) -> List[float]:
        """Stable-minus-invoke times of every labelled op that stabilised."""
        return [
            future.commit_latency
            for future in self.futures.values()
            if future.commit_latency is not None
        ]

    def weak_staleness(self) -> List[float]:
        """Stable-minus-response times of labelled weak ops (how long each
        tentative response floated before its position became final)."""
        return [
            future.staleness
            for future in self.futures.values()
            if not future.strong and future.staleness is not None
        ]
