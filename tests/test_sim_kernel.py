"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for name in "abcde":
        sim.schedule(1.0, lambda n=name: order.append(n))
    sim.run()
    assert order == list("abcde")


def test_zero_delay_runs_after_current_callback():
    sim = Simulator()
    order = []

    def outer():
        sim.schedule(0.0, lambda: order.append("inner"))
        order.append("outer")

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]


def test_now_advances_with_events():
    sim = Simulator()
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.schedule(4.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [1.5, 4.0]
    assert sim.now == 4.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    hits = []
    sim.schedule_at(5.0, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [5.0]


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancelled_event_is_skipped():
    sim = Simulator()
    hits = []
    event = sim.schedule(1.0, lambda: hits.append("cancelled"))
    sim.schedule(2.0, lambda: hits.append("kept"))
    event.cancel()
    sim.run()
    assert hits == ["kept"]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, lambda: hits.append(1))
    sim.schedule(10.0, lambda: hits.append(10))
    sim.run(until=5.0)
    assert hits == [1]
    assert sim.now == 5.0
    sim.run()
    assert hits == [1, 10]


def test_run_until_includes_boundary_events():
    sim = Simulator()
    hits = []
    sim.schedule(5.0, lambda: hits.append("boundary"))
    sim.run(until=5.0)
    assert hits == ["boundary"]


def test_run_until_quiescent_returns_final_time():
    sim = Simulator()
    sim.schedule(2.0, lambda: sim.schedule(3.0, lambda: None))
    assert sim.run_until_quiescent() == 5.0


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_executed_and_pending_counters():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.step()
    assert sim.executed_events == 1
    assert sim.pending_events == 1


def test_max_events_guards_livelock():
    sim = Simulator(max_events=100)

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run()


def test_advance_to_refuses_skipping_events():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.advance_to(2.0)


def test_advance_to_moves_time():
    sim = Simulator()
    sim.advance_to(7.0)
    assert sim.now == 7.0
    with pytest.raises(SimulationError):
        sim.advance_to(6.0)


def test_deterministic_event_interleaving():
    """Two identical simulations execute identical schedules."""

    def build():
        sim = Simulator()
        log = []

        def chain(depth):
            log.append((sim.now, depth))
            if depth < 5:
                sim.schedule(0.5 * depth + 0.1, lambda: chain(depth + 1))

        sim.schedule(1.0, lambda: chain(0))
        sim.schedule(1.0, lambda: chain(100))
        sim.run()
        return log

    assert build() == build()
